//! Example 1 of the paper: *explaining traffic fatalities*.
//!
//! An analyst has a table of daily traffic incidents per zip code and
//! wants to discover, inside an open-data portal of hundreds of datasets,
//! which other datasets (a) join with theirs and (b) contain a column
//! correlated with the incident counts — a **join-correlation query**
//! (Definition 1).
//!
//! ```text
//! cargo run --release --example traffic_fatalities
//! ```

use join_correlation::datagen::{generate_open_data, OpenDataConfig};
use join_correlation::index::{engine, QueryOptions, SketchIndex};
use join_correlation::sketches::{SketchBuilder, SketchConfig};
use join_correlation::table::{ColumnPair, Table};

fn main() {
    // A simulated open-data portal (the paper uses a 2019 crawl of NYC
    // Open Data; see DESIGN.md for the substitution rationale).
    let portal = generate_open_data(&OpenDataConfig {
        tables: 150,
        ..OpenDataConfig::nyc(2021)
    });
    println!("portal: {} datasets", portal.len());

    // Index every ⟨key, numeric⟩ column pair of every dataset. This is
    // the offline step: one sketch per column pair, one pass per table.
    let builder = SketchBuilder::new(SketchConfig::with_size(256));
    let mut index = SketchIndex::new();
    let mut indexed_pairs = 0usize;
    for table in &portal {
        for pair in table.column_pairs() {
            index.insert(builder.build(&pair)).expect("uniform hasher");
            indexed_pairs += 1;
        }
    }
    println!(
        "indexed {indexed_pairs} column pairs ({} distinct keys)",
        index.distinct_keys()
    );

    // The analyst's own table: we pick a portal dataset to play the role
    // of the fatalities table so that joinable candidates exist.
    let query_table: &Table = &portal[7];
    let query_pair: ColumnPair = query_table
        .column_pairs()
        .into_iter()
        .next()
        .expect("query table has a column pair");
    println!(
        "\nquery: column '{}' of '{}' joined on '{}'",
        query_pair.value_name, query_pair.table, query_pair.key_name
    );

    // Online: one sketch build + one index query.
    let query_sketch = builder.build(&query_pair);
    let results = engine::top_k_join_correlation(
        &index,
        &query_sketch,
        &QueryOptions {
            overlap_candidates: 100,
            k: 10,
            ..QueryOptions::default()
        },
    );

    println!("\ntop-10 candidate columns by |estimated correlation|:");
    println!(
        "{:<28} {:>8} {:>8} {:>10}",
        "column", "overlap", "n", "estimate"
    );
    for r in &results {
        println!(
            "{:<28} {:>8} {:>8} {:>10}",
            r.id,
            r.overlap,
            r.sample_size,
            r.estimate
                .map_or_else(|| "-".to_string(), |e| format!("{e:+.3}")),
        );
    }
    println!(
        "\nEvery number above was computed from sketches alone — none of \
         the {} candidate joins was executed.",
        indexed_pairs
    );
}
