//! Quickstart: estimate the correlation between two columns of two
//! unjoined tables — without executing the join.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use join_correlation::sketches::{join_sketches, SketchBuilder, SketchConfig};
use join_correlation::stats::CorrelationEstimator;
use join_correlation::table::{exact_join, Aggregation, Table};

fn main() {
    // Two small CSV datasets sharing a `day` join key. In a real system
    // these would be two files from a data lake that have never been
    // joined.
    let bikes = Table::from_csv(
        "citibike",
        "day,active_bikes\n\
         2021-01-04,1200\n2021-01-05,1350\n2021-01-06,900\n\
         2021-01-07,1500\n2021-01-08,1480\n2021-01-09,700\n\
         2021-01-10,650\n2021-01-11,1400\n2021-01-12,1380\n\
         2021-01-13,1450\n2021-01-14,1300\n2021-01-15,800\n",
    )
    .expect("valid CSV");

    let accidents = Table::from_csv(
        "accidents",
        "day,crashes\n\
         2021-01-04,30\n2021-01-05,34\n2021-01-06,22\n\
         2021-01-07,37\n2021-01-08,36\n2021-01-09,18\n\
         2021-01-10,17\n2021-01-11,35\n2021-01-12,33\n\
         2021-01-13,36\n2021-01-14,31\n2021-01-15,20\n",
    )
    .expect("valid CSV");

    // 1. Extract the ⟨key, numeric⟩ column pairs.
    let bikes_pair = bikes
        .column_pair("day", "active_bikes")
        .expect("columns exist");
    let accidents_pair = accidents
        .column_pair("day", "crashes")
        .expect("columns exist");

    // 2. Build one correlation sketch per column pair. In production these
    //    are built offline, once per column pair, and stored in an index.
    let builder = SketchBuilder::new(SketchConfig::with_size(256));
    let sketch_bikes = builder.build(&bikes_pair);
    let sketch_accidents = builder.build(&accidents_pair);

    // 3. Join the *sketches* (not the tables) and estimate.
    let sample = join_sketches(&sketch_bikes, &sketch_accidents).expect("same hasher");
    let estimate = sample
        .estimate(CorrelationEstimator::Pearson)
        .expect("non-degenerate sample");

    // Compare with the ground truth this toy example can afford.
    let joined = exact_join(&bikes_pair, &accidents_pair, Aggregation::Mean);
    let truth = join_correlation::stats::pearson(&joined.x, &joined.y).expect("non-degenerate");

    println!(
        "join sample reconstructed from sketches: {} rows",
        sample.len()
    );
    println!("estimated correlation : {estimate:+.4}");
    println!("exact correlation     : {truth:+.4}");
    println!(
        "Hoeffding 95% interval: [{:+.3}, {:+.3}]",
        sample.hoeffding_ci(0.05).expect("sample non-empty").low,
        sample.hoeffding_ci(0.05).expect("sample non-empty").high
    );

    assert!(
        (estimate - truth).abs() < 1e-9,
        "tables this small are sketched exactly"
    );
    println!("\nMore active bikes — more crashes: the Vision Zero example of the paper's intro.");
}
