//! Persisting and searching a sketch corpus: build sketches for a
//! simulated data lake, serialize them to JSON (the offline indexing
//! artifact), reload, and serve interactive top-k join-correlation
//! queries — the deployment shape sketched in paper Sections 1 and 5.5.
//!
//! ```text
//! cargo run --release --example index_search
//! ```

use std::time::Instant;

use join_correlation::datagen::{generate_open_data, split_corpus, OpenDataConfig};
use join_correlation::index::{engine, QueryOptions, SketchIndex};
use join_correlation::sketches::{CorrelationSketch, SketchBuilder, SketchConfig};

fn main() {
    let tables = generate_open_data(&OpenDataConfig {
        tables: 120,
        ..OpenDataConfig::nyc(7)
    });
    let split = split_corpus(&tables, 0.2, 7);
    let builder = SketchBuilder::new(SketchConfig::with_size(512));

    // --- Offline: sketch every corpus column pair and persist. ---
    let t0 = Instant::now();
    let serialized: Vec<String> = split
        .corpus
        .iter()
        .map(|p| builder.build(p).to_json().expect("serializable"))
        .collect();
    let bytes: usize = serialized.iter().map(String::len).sum();
    println!(
        "offline: sketched + serialized {} column pairs in {:.1} ms ({:.1} KiB total)",
        serialized.len(),
        t0.elapsed().as_secs_f64() * 1e3,
        bytes as f64 / 1024.0
    );

    // --- Startup: load the persisted sketches into the inverted index. ---
    let t0 = Instant::now();
    let mut index = SketchIndex::new();
    for json in &serialized {
        let sketch = CorrelationSketch::from_json(json).expect("round-trip");
        index.insert(sketch).expect("uniform hasher");
    }
    println!(
        "startup: loaded {} sketches ({} distinct keys) in {:.1} ms",
        index.len(),
        index.distinct_keys(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    // --- Online: serve queries. ---
    let opts = QueryOptions {
        overlap_candidates: 100,
        k: 5,
        ..QueryOptions::default()
    };
    let mut latencies = Vec::new();
    for q in split.queries.iter().take(20) {
        let t0 = Instant::now();
        let q_sketch = builder.build(q);
        let results = engine::top_k_join_correlation(&index, &q_sketch, &opts);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        latencies.push(ms);
        if let Some(top) = results.first() {
            println!(
                "query {:<26} -> best match {:<26} (r^ = {}, n = {}) in {:.2} ms",
                q.id(),
                top.id,
                top.estimate
                    .map_or_else(|| "-".into(), |e| format!("{e:+.2}")),
                top.sample_size,
                ms
            );
        }
    }
    latencies.sort_by(f64::total_cmp);
    if !latencies.is_empty() {
        println!(
            "\nquery latency: median {:.2} ms, max {:.2} ms — the interactive \
             regime the paper reports (94% of queries under 100 ms).",
            latencies[latencies.len() / 2],
            latencies[latencies.len() - 1]
        );
    }
}
