//! Production-shaped ingestion: data arrives in shards, each shard is
//! sketched incrementally (push API), shard sketches are merged, and the
//! corpus is sketched in parallel — all while staying bit-identical to a
//! single-pass build.
//!
//! ```text
//! cargo run --release --example partitioned_ingest
//! ```

use join_correlation::sketches::{
    build_sketches_parallel, join_sketches, merge_partition_sketches, SketchBuilder, SketchConfig,
    StreamingSketchBuilder,
};
use join_correlation::stats::CorrelationEstimator;
use join_correlation::table::{Aggregation, ColumnPair};

fn main() {
    // A "sensor" table too large to sketch in one place: four shards of
    // (station, reading-count) rows. Count is decomposable, so shard
    // sketches merge exactly.
    let config = SketchConfig::with_size(256).aggregation(Aggregation::Count);
    let shard_rows = |s: usize| -> Vec<(String, f64)> {
        (0..50_000)
            .map(|i| {
                let station = (i * 7 + s * 13) % 9_000;
                (format!("station-{station}"), 1.0)
            })
            .collect()
    };

    // 1. Incremental (push-based) sketching per shard — the shape of a
    //    streaming ingestion pipeline.
    let mut shard_sketches = Vec::new();
    for s in 0..4 {
        let mut builder = StreamingSketchBuilder::new("sensors/station/events", config);
        for (k, v) in shard_rows(s) {
            builder.push(&k, v);
        }
        println!(
            "shard {s}: {} rows pushed, {} tuples retained",
            builder.rows_scanned(),
            builder.len()
        );
        shard_sketches.push(builder.finish());
    }

    // 2. Merge the shard sketches (exact for decomposable aggregations).
    let merged = shard_sketches
        .into_iter()
        .reduce(|a, b| merge_partition_sketches(&a, &b).expect("same config, decomposable"))
        .expect("at least one shard");

    // Cross-check against a single pass over the concatenated shards.
    let mut all_keys = Vec::new();
    let mut all_vals = Vec::new();
    for s in 0..4 {
        for (k, v) in shard_rows(s) {
            all_keys.push(k);
            all_vals.push(v);
        }
    }
    let whole = ColumnPair::new("sensors", "station", "events", all_keys, all_vals);
    let single_pass = SketchBuilder::new(config).build(&whole);
    assert_eq!(merged.entries(), single_pass.entries());
    println!(
        "\nmerged sketch == single-pass sketch over {} rows ({} tuples)",
        merged.rows_scanned(),
        merged.len()
    );

    // 3. Parallel corpus sketching for the rest of the lake.
    let corpus: Vec<ColumnPair> = (0..64)
        .map(|t| {
            ColumnPair::new(
                format!("table{t}"),
                "station",
                "metric",
                (0..8_000)
                    .map(|i| format!("station-{}", (i + t * 31) % 9_000))
                    .collect(),
                (0..8_000)
                    .map(|i| ((i + t) as f64 * 0.11).sin() * 5.0)
                    .collect(),
            )
        })
        .collect();
    let t0 = std::time::Instant::now();
    let serial = build_sketches_parallel(&corpus, SketchConfig::with_size(256), 1);
    let t_serial = t0.elapsed();
    let t0 = std::time::Instant::now();
    let parallel = build_sketches_parallel(&corpus, SketchConfig::with_size(256), 8);
    let t_parallel = t0.elapsed();
    assert_eq!(serial, parallel);
    println!(
        "parallel corpus sketching: {} pairs in {:.0} ms (serial {:.0} ms, identical output)",
        corpus.len(),
        t_parallel.as_secs_f64() * 1e3,
        t_serial.as_secs_f64() * 1e3,
    );

    // 4. The merged sketch is a first-class citizen: join it against a
    //    corpus sketch and estimate.
    let sample = join_sketches(&merged, &parallel[0]).expect("same hasher");
    println!(
        "\nmerged-shard sketch ⨝ corpus sketch: {} shared stations, r^ = {}",
        sample.len(),
        sample
            .estimate(CorrelationEstimator::Pearson)
            .map_or_else(|e| format!("({e})"), |r| format!("{r:+.3}"))
    );
}
