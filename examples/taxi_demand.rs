//! Example 2 of the paper: *improving taxi demand models*.
//!
//! A data scientist holds an hourly taxi-pickups table and hunts for
//! augmentation features. This example shows the **risk-aware scoring**
//! of paper Section 4: a tiny accidentally-overlapping table can produce
//! a spuriously perfect correlation estimate; the `rp*cih` scorer
//! (Hoeffding-CI penalization) demotes it while plain `rp` is fooled.
//!
//! ```text
//! cargo run --release --example taxi_demand
//! ```

use join_correlation::datagen::Dist;
use join_correlation::ranking::{extract_features, score_candidates, ScoringFunction};
use join_correlation::sketches::{SketchBuilder, SketchConfig};
use join_correlation::table::ColumnPair;

fn day_keys(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| format!("2021-{:03}-{:02}h", i / 24, i % 24))
        .collect()
}

fn main() {
    let mut d = Dist::seeded(42);
    let hours = 4_000usize;
    let keys = day_keys(hours);

    // Latent demand drives pickups and (inversely) precipitation.
    let demand: Vec<f64> = (0..hours)
        .map(|i| 10.0 + 3.0 * ((i % 24) as f64 / 24.0 * std::f64::consts::TAU).sin() + d.normal())
        .collect();

    let taxi = ColumnPair::new(
        "taxi",
        "hour",
        "pickups",
        keys.clone(),
        demand
            .iter()
            .map(|&v| (20.0 * v + 5.0 * d.normal()).max(0.0))
            .collect(),
    );

    // Candidate 1: weather — genuinely correlated, decent overlap.
    let weather = ColumnPair::new(
        "weather",
        "hour",
        "precipitation",
        keys.iter().step_by(2).cloned().collect(),
        demand
            .iter()
            .step_by(2)
            .map(|&v| (-0.9 * v + 15.0 + 0.8 * d.normal()).max(0.0))
            .collect(),
    );

    // Candidate 2: a 4-row "events" table whose keys happen to be ones
    // the taxi sketch retains (in a big corpus some tiny table always
    // does, "simply by chance" — Section 4). Its values are monotone in
    // the taxi pickups at those hours, so its 4-point estimate is ≈ 1.
    let hasher = join_correlation::hashing::TupleHasher::default();
    let mut by_unit: Vec<usize> = (0..hours).collect();
    by_unit.sort_by(|&a, &b| {
        use join_correlation::hashing::KeyHasher as _;
        hasher
            .g(keys[a].as_bytes())
            .1
            .total_cmp(&hasher.g(keys[b].as_bytes()).1)
    });
    let mut lucky_idx: Vec<usize> = by_unit[..4].to_vec();
    lucky_idx.sort_by(|&a, &b| taxi.values[a].total_cmp(&taxi.values[b]));
    let events = ColumnPair::new(
        "events",
        "hour",
        "attendance",
        lucky_idx.iter().map(|&i| keys[i].clone()).collect(),
        (1..=lucky_idx.len())
            .map(|rank| 1000.0 * rank as f64)
            .collect(),
    );

    // Candidate 3: an unrelated sensor with full overlap.
    let sensor = ColumnPair::new(
        "sensor",
        "hour",
        "co2",
        keys.clone(),
        (0..hours).map(|_| 400.0 + 20.0 * d.normal()).collect(),
    );

    let builder = SketchBuilder::new(SketchConfig::with_size(256));
    let q_sketch = builder.build(&taxi);
    let candidates = [&weather, &events, &sensor];
    let features: Vec<_> = candidates
        .iter()
        .map(|c| extract_features(&q_sketch, &builder.build(c), Some((&taxi, c)), 7))
        .collect();

    println!("candidate features (n = sketch-join sample size):");
    for f in &features {
        println!(
            "  {:<22} n={:<5} r_p={:<8} hfd_ci_len={:.3}",
            f.id,
            f.sample_size,
            f.rp.map_or_else(|| "-".into(), |r| format!("{r:+.3}")),
            f.hfd_ci_length.unwrap_or(f64::NAN),
        );
    }

    for scorer in [ScoringFunction::Rp, ScoringFunction::RpCih] {
        let scores = score_candidates(&features, scorer);
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        println!("\nranking under {}:", scorer.name());
        for (rank, &i) in order.iter().enumerate() {
            println!(
                "  {}. {:<22} score={:.3}",
                rank + 1,
                features[i].id,
                scores[i]
            );
        }
    }

    println!(
        "\nThe tiny 'events' table pairs 4 points monotonically and fools \
         the raw estimate; the Hoeffding-penalized scorer puts the \
         genuinely predictive weather column first (paper Section 4)."
    );
}
