//! Tour of the correlation estimators and KMV statistics a single pair of
//! sketches supports (paper Sections 3.3 and 5.3): Pearson, Spearman,
//! RIN, Qn, PM1 bootstrap, mutual information, distinct values, join
//! cardinality, Jaccard similarity and containment.
//!
//! ```text
//! cargo run --release --example estimator_tour
//! ```

use join_correlation::datagen::Dist;
use join_correlation::sketches::{
    containment_estimate, distinct_value_estimate, intersection_estimate, jaccard_estimate,
    join_sketches, mutual_info, union_estimate, SketchBuilder, SketchConfig,
};
use join_correlation::stats::CorrelationEstimator;
use join_correlation::table::{exact_join, Aggregation, ColumnPair};

fn main() {
    let mut d = Dist::seeded(7);
    let n = 30_000usize;

    // A monotone-but-nonlinear relationship with heavy-tailed noise:
    // exactly the regime where the estimators disagree.
    let keys: Vec<String> = (0..n).map(|i| format!("id-{i}")).collect();
    let latent: Vec<f64> = (0..n).map(|_| d.normal()).collect();
    let tx = ColumnPair::new("tx", "id", "x", keys.clone(), latent.clone());
    let ty = ColumnPair::new(
        "ty",
        "id",
        "y",
        keys.iter().take(2 * n / 3).cloned().collect(),
        latent
            .iter()
            .take(2 * n / 3)
            .map(|&z| (1.5 * z).exp() + 0.2 * d.normal().abs())
            .collect(),
    );

    let builder = SketchBuilder::new(SketchConfig::with_size(1024));
    let (sx, sy) = (builder.build(&tx), builder.build(&ty));
    let sample = join_sketches(&sx, &sy).expect("same hasher");
    let joined = exact_join(&tx, &ty, Aggregation::Mean);

    println!(
        "tables: {} and {} rows; exact join = {} rows; sketch join sample = {} rows\n",
        tx.len(),
        ty.len(),
        joined.len(),
        sample.len()
    );

    println!("{:<10} {:>10} {:>10}", "estimator", "sketch", "exact");
    for est in CorrelationEstimator::EXTENDED {
        let sketch_est = sample.estimate(est);
        // Distance correlation is O(n²) time *and* memory; evaluate the
        // "exact" reference on a prefix rather than the full 20k join.
        let cap = if est == CorrelationEstimator::DistanceCorrelation {
            4_000.min(joined.x.len())
        } else {
            joined.x.len()
        };
        let exact = est.population_target(&joined.x[..cap], &joined.y[..cap]);
        println!(
            "{:<10} {:>10} {:>10}",
            est.name(),
            sketch_est.map_or_else(|e| format!("({e})"), |r| format!("{r:+.3}")),
            exact.map_or_else(|e| format!("({e})"), |r| format!("{r:+.3}")),
        );
    }
    println!(
        "\nPearson is dragged below the rank estimators by the exponential \
         tail; Spearman/RIN see the monotone link (paper Section 2.2)."
    );

    let mi = mutual_info::join_sample_mutual_information(&sample);
    println!(
        "\nmutual information (plug-in, nats): {}",
        mi.map_or_else(|| "-".into(), |v| format!("{v:.3}"))
    );

    println!("\nKMV statistics from the same sketches:");
    println!(
        "  distinct keys of X : est {:>10.0}   true {:>8}",
        distinct_value_estimate(&sx),
        tx.distinct_keys()
    );
    println!(
        "  distinct keys of Y : est {:>10.0}   true {:>8}",
        distinct_value_estimate(&sy),
        ty.distinct_keys()
    );
    println!(
        "  union |Kx u Ky|    : est {:>10.0}   true {:>8}",
        union_estimate(&sx, &sy).unwrap(),
        n
    );
    println!(
        "  join size |Kx n Ky|: est {:>10.0}   true {:>8}",
        intersection_estimate(&sx, &sy).unwrap(),
        joined.len()
    );
    println!(
        "  jaccard similarity : est {:>10.3}   true {:>8.3}",
        jaccard_estimate(&sx, &sy).unwrap(),
        joined.len() as f64 / n as f64
    );
    println!(
        "  containment Y in X : est {:>10.3}   true {:>8.3}",
        containment_estimate(&sy, &sx).unwrap(),
        1.0
    );
}
