//! End-to-end integration: corpus generation → sketching → indexing →
//! top-k join-correlation queries → validation against exact joins.

use join_correlation::datagen::{generate_open_data, split_corpus, OpenDataConfig};
use join_correlation::index::{engine, QueryOptions, SketchIndex};
use join_correlation::sketches::{SketchBuilder, SketchConfig};
use join_correlation::stats::pearson;
use join_correlation::table::{exact_join, Aggregation, ColumnPair, Table};

fn corpus() -> Vec<Table> {
    generate_open_data(&OpenDataConfig {
        tables: 60,
        min_rows: 80,
        max_rows: 600,
        ..OpenDataConfig::nyc(0xe2e)
    })
}

#[test]
fn pipeline_estimates_match_ground_truth_for_large_joins() {
    let tables = corpus();
    let split = split_corpus(&tables, 0.2, 1);
    let builder = SketchBuilder::new(SketchConfig::with_size(256));

    let mut index = SketchIndex::new();
    for pair in &split.corpus {
        index.insert(builder.build(pair)).unwrap();
    }

    let mut checked = 0usize;
    for q in split.queries.iter().take(10) {
        let q_sketch = builder.build(q);
        let results = engine::top_k_join_correlation(
            &index,
            &q_sketch,
            &QueryOptions {
                overlap_candidates: 50,
                k: 20,
                ..QueryOptions::default()
            },
        );
        for r in results {
            if r.sample_size < 60 {
                continue;
            }
            let cand: &ColumnPair = split
                .corpus
                .iter()
                .find(|p| p.id() == r.id)
                .expect("result id resolves to a corpus pair");
            let joined = exact_join(q, cand, Aggregation::Mean);
            let Ok(truth) = pearson(&joined.x, &joined.y) else {
                continue;
            };
            let est = r.estimate.expect("large sample has an estimate");
            assert!(
                (est - truth).abs() < 0.35,
                "query {} cand {}: est {est:.3} vs truth {truth:.3} (n={})",
                q.id(),
                r.id,
                r.sample_size
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 10,
        "too few large-sample results validated: {checked}"
    );
}

#[test]
fn index_retrieval_agrees_with_exact_overlap_ordering() {
    let tables = corpus();
    let pairs: Vec<ColumnPair> = tables.iter().flat_map(|t| t.column_pairs()).collect();
    let builder = SketchBuilder::new(SketchConfig::with_size(512));

    let mut index = SketchIndex::new();
    for p in pairs.iter().skip(1) {
        index.insert(builder.build(p)).unwrap();
    }
    let q = &pairs[0];
    let q_sketch = builder.build(q);
    let hits = index.overlap_candidates(&q_sketch, 10);

    // Sketch-overlap ordering should broadly track exact key overlap:
    // the top sketch-overlap hit must be within the top-5 exact overlaps.
    if let Some(&(best_doc, _)) = hits.first() {
        let best = index.get(best_doc).unwrap().id();
        let mut exact: Vec<(String, usize)> = pairs
            .iter()
            .skip(1)
            .map(|p| (p.id(), join_correlation::table::key_overlap(q, p)))
            .collect();
        exact.sort_by_key(|e| std::cmp::Reverse(e.1));
        let top5: Vec<&str> = exact.iter().take(5).map(|(id, _)| id.as_str()).collect();
        assert!(
            top5.contains(&best),
            "sketch-overlap best {best} not in exact top-5 {top5:?}"
        );
    }
}

#[test]
fn sketches_survive_persistence_through_the_whole_pipeline() {
    use join_correlation::sketches::CorrelationSketch;

    let tables = corpus();
    let split = split_corpus(&tables, 0.2, 3);
    let builder = SketchBuilder::new(SketchConfig::with_size(128));

    // Serialize all corpus sketches, reload, and compare query results
    // against the in-memory path.
    let mut direct = SketchIndex::new();
    let mut reloaded = SketchIndex::new();
    for p in &split.corpus {
        let s = builder.build(p);
        let json = s.to_json().unwrap();
        direct.insert(s).unwrap();
        reloaded
            .insert(CorrelationSketch::from_json(&json).unwrap())
            .unwrap();
    }

    let q_sketch = builder.build(&split.queries[0]);
    let opts = QueryOptions::default();
    let a = engine::top_k_join_correlation(&direct, &q_sketch, &opts);
    let b = engine::top_k_join_correlation(&reloaded, &q_sketch, &opts);
    assert_eq!(a, b);
}

#[test]
fn multi_column_sketch_agrees_with_per_pair_sketches() {
    use join_correlation::hashing::TupleHasher;
    use join_correlation::sketches::{join_multi_sketches, MultiColumnSketch};

    let tables = corpus();
    // Find two joinable tables with ≥ 2 numeric columns.
    let (ta, tb) = {
        let mut found = None;
        'outer: for a in &tables {
            for b in &tables {
                if a.name == b.name || a.numeric_names().len() < 2 || b.numeric_names().len() < 2 {
                    continue;
                }
                let pa = a.column_pairs().into_iter().next().unwrap();
                let pb = b.column_pairs().into_iter().next().unwrap();
                if join_correlation::table::key_overlap(&pa, &pb) > 50 {
                    found = Some((a.clone(), b.clone()));
                    break 'outer;
                }
            }
        }
        found.expect("corpus contains joinable multi-column tables")
    };

    let hasher = TupleHasher::default();
    let ma = MultiColumnSketch::build(&ta, "key", 256, hasher, Aggregation::Mean).unwrap();
    let mb = MultiColumnSketch::build(&tb, "key", 256, hasher, Aggregation::Mean).unwrap();
    let multi = join_multi_sketches(&ma, &mb).unwrap();

    let builder = SketchBuilder::new(SketchConfig::with_size(256));
    let pa = ta.column_pair("key", ta.numeric_names()[0]).unwrap();
    let pb = tb.column_pair("key", tb.numeric_names()[0]).unwrap();
    let single =
        join_correlation::sketches::join_sketches(&builder.build(&pa), &builder.build(&pb))
            .unwrap();

    // The multi-column sketch keeps a key as long as *any* numeric column
    // is non-null for it, while the per-pair sketch drops rows whose
    // specific value is null — so the single-pair join keys are a subset
    // of the multi join keys (and most keys coincide).
    let multi_keys: std::collections::HashSet<_> = multi.key_hashes.iter().copied().collect();
    for kh in &single.key_hashes {
        assert!(
            multi_keys.contains(kh),
            "single-join key missing from multi join"
        );
    }
    assert!(
        single.key_hashes.len() as f64 >= 0.8 * multi.key_hashes.len() as f64,
        "unexpectedly large divergence: single {} vs multi {}",
        single.key_hashes.len(),
        multi.key_hashes.len()
    );
}
