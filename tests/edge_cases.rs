//! Cross-crate edge cases: adversarial inputs that a data-lake deployment
//! will eventually see.

use join_correlation::sketches::{join_sketches, CorrelationSketch, SketchBuilder, SketchConfig};
use join_correlation::stats::CorrelationEstimator;
use join_correlation::table::{ColumnPair, Table};

fn builder(n: usize) -> SketchBuilder {
    SketchBuilder::new(SketchConfig::with_size(n))
}

#[test]
fn unicode_and_hostile_keys_sketch_and_join() {
    let keys: Vec<String> = vec![
        "naïve".into(),
        "日本語キー".into(),
        "key,with,commas".into(),
        "key\nwith\nnewlines".into(),
        "ключ".into(),
        "🗽-zip".into(),
        String::new(), // empty string is a valid categorical value
        " leading-space".into(),
    ];
    let a = ColumnPair::new(
        "a",
        "k",
        "v",
        keys.clone(),
        (0..keys.len()).map(|i| i as f64).collect(),
    );
    let b = ColumnPair::new(
        "b",
        "k",
        "v",
        keys.clone(),
        (0..keys.len()).map(|i| 2.0 * i as f64).collect(),
    );
    let sample = join_sketches(&builder(16).build(&a), &builder(16).build(&b)).unwrap();
    assert_eq!(sample.len(), keys.len());
    let r = sample.estimate(CorrelationEstimator::Pearson).unwrap();
    assert!((r - 1.0).abs() < 1e-12);
}

#[test]
fn keys_that_differ_only_in_case_or_whitespace_stay_distinct() {
    let a = ColumnPair::new(
        "a",
        "k",
        "v",
        vec!["Key".into(), "key".into(), "key ".into(), " key".into()],
        vec![1.0, 2.0, 3.0, 4.0],
    );
    let s = builder(16).build(&a);
    assert_eq!(s.len(), 4, "no silent normalization of keys");
}

#[test]
fn single_row_tables_are_handled_throughout() {
    let a = ColumnPair::new("a", "k", "v", vec!["only".into()], vec![42.0]);
    let s = builder(8).build(&a);
    assert_eq!(s.len(), 1);
    let sample = join_sketches(&s, &s).unwrap();
    assert_eq!(sample.len(), 1);
    // One pair: correlation undefined, must error not panic.
    assert!(sample.estimate(CorrelationEstimator::Pearson).is_err());
    assert!(sample.hoeffding_ci(0.05).is_ok(), "CI degrades gracefully");
}

#[test]
fn identical_values_column_is_rejected_by_estimators_not_by_sketching() {
    let keys: Vec<String> = (0..100).map(|i| format!("k{i}")).collect();
    let constant = ColumnPair::new("c", "k", "v", keys.clone(), vec![7.0; 100]);
    let varying = ColumnPair::new("v", "k", "v", keys, (0..100).map(f64::from).collect());
    let sample =
        join_sketches(&builder(64).build(&constant), &builder(64).build(&varying)).unwrap();
    assert_eq!(sample.len(), 64);
    assert!(sample.estimate(CorrelationEstimator::Pearson).is_err());
    assert!(sample.estimate(CorrelationEstimator::Spearman).is_err());
}

#[test]
fn extreme_value_magnitudes_survive_the_pipeline() {
    let keys: Vec<String> = (0..500).map(|i| format!("k{i}")).collect();
    let a = ColumnPair::new(
        "a",
        "k",
        "v",
        keys.clone(),
        (0..500).map(|i| 1e12 + f64::from(i)).collect(),
    );
    let b = ColumnPair::new(
        "b",
        "k",
        "v",
        keys,
        (0..500).map(|i| 1e-9 * f64::from(i)).collect(),
    );
    let sample = join_sketches(&builder(128).build(&a), &builder(128).build(&b)).unwrap();
    let r = sample.estimate(CorrelationEstimator::Pearson).unwrap();
    assert!(
        r > 0.999,
        "mean-centred Pearson must survive 1e12 offsets: {r}"
    );
}

#[test]
fn csv_with_bom_and_mixed_line_endings_parses() {
    let text = "\u{feff}key,value\r\na,1\nb,2\r\nc,3";
    let t = Table::from_csv("bom", text).unwrap();
    assert_eq!(t.num_rows(), 3);
    // The BOM sticks to the first header name; pin that behaviour so a
    // future fix is a conscious choice.
    assert_eq!(t.columns()[0].name, "\u{feff}key");
    assert_eq!(t.numeric_names(), vec!["value"]);
}

#[test]
fn sketch_json_from_other_hasher_configs_still_loads_but_wont_join() {
    let p = ColumnPair::new(
        "t",
        "k",
        "v",
        (0..50).map(|i| format!("k{i}")).collect(),
        (0..50).map(f64::from).collect(),
    );
    let a = builder(16).build(&p);
    let other = SketchBuilder::new(
        SketchConfig::with_size(16).hasher(join_correlation::hashing::TupleHasher::new_64(99)),
    )
    .build(&p);
    let reloaded = CorrelationSketch::from_json(&other.to_json().unwrap()).unwrap();
    assert!(
        join_sketches(&a, &reloaded).is_err(),
        "configs must not mix silently"
    );
}

#[test]
fn repeated_key_floods_do_not_grow_the_sketch() {
    // 100k rows, only 3 distinct keys: the sketch must stay tiny and the
    // aggregates exact.
    let mut keys = Vec::with_capacity(100_000);
    let mut vals = Vec::with_capacity(100_000);
    for i in 0..100_000usize {
        keys.push(format!("k{}", i % 3));
        vals.push(1.0);
    }
    let p = ColumnPair::new("flood", "k", "v", keys, vals);
    let cfg = SketchConfig::with_size(1024).aggregation(join_correlation::table::Aggregation::Sum);
    let s = SketchBuilder::new(cfg).build(&p);
    assert_eq!(s.len(), 3);
    assert!(!s.is_saturated());
    let total: f64 = s.entries().iter().map(|e| e.value).sum();
    assert_eq!(total, 100_000.0);
}

#[test]
fn nan_and_infinite_values_are_rejected_before_estimation() {
    // The table layer never produces NaN (CSV parse filters them), but a
    // direct API user might; the estimator must reject, not poison.
    let keys: Vec<String> = (0..10).map(|i| format!("k{i}")).collect();
    let a = ColumnPair::new(
        "a",
        "k",
        "v",
        keys.clone(),
        (0..10).map(f64::from).collect(),
    );
    let mut vals: Vec<f64> = (0..10).map(f64::from).collect();
    vals[3] = f64::NAN;
    let b = ColumnPair::new("b", "k", "v", keys, vals);
    let sample = join_sketches(&builder(16).build(&a), &builder(16).build(&b)).unwrap();
    assert!(matches!(
        sample.estimate(CorrelationEstimator::Pearson),
        Err(join_correlation::stats::StatsError::NonFiniteInput)
    ));
}
