//! Statistical validation of Theorem 1: the sketch join reconstructs a
//! *uniform random* sample of the joined table, and estimates computed on
//! it converge to the truth.

use join_correlation::hashing::TupleHasher;
use join_correlation::sketches::{join_sketches, SketchBuilder, SketchConfig};
use join_correlation::stats::{pearson, CorrelationEstimator};
use join_correlation::table::{exact_join, Aggregation, ColumnPair};

fn make_tables(n: usize, rho_shape: impl Fn(usize) -> f64) -> (ColumnPair, ColumnPair) {
    let keys: Vec<String> = (0..n).map(|i| format!("key-{i}")).collect();
    let tx = ColumnPair::new(
        "tx",
        "k",
        "x",
        keys.clone(),
        (0..n).map(|i| (i as f64 * 0.11).sin() * 4.0).collect(),
    );
    let ty = ColumnPair::new("ty", "k", "y", keys, (0..n).map(rho_shape).collect());
    (tx, ty)
}

/// Inclusion frequency across independent hash seeds must be uniform
/// over the joined keys — the heart of Theorem 1.
#[test]
fn join_sample_inclusion_is_uniform_across_seeds() {
    let n = 2_000usize;
    let sketch_size = 200usize;
    let trials = 60usize;
    let (tx, ty) = make_tables(n, |i| i as f64);

    let mut inclusion = vec![0u32; n];
    for seed in 0..trials as u64 {
        let builder = SketchBuilder::new(
            SketchConfig::with_size(sketch_size).hasher(TupleHasher::new_64(seed)),
        );
        let sample = join_sketches(&builder.build(&tx), &builder.build(&ty)).unwrap();
        assert_eq!(sample.len(), sketch_size, "full-overlap join keeps n rows");
        // Map sampled values back to row indices via the x value (values
        // are not unique, so use y = i which is).
        for &y in &sample.y {
            inclusion[y as usize] += 1;
        }
    }

    // Expected inclusion per key: trials * sketch_size / n = 6.
    let expected = trials as f64 * sketch_size as f64 / n as f64;
    let mean = inclusion.iter().map(|&c| f64::from(c)).sum::<f64>() / n as f64;
    assert!((mean - expected).abs() < 1e-9);

    // Chi-square-style check: no key should be wildly over/under-included.
    // With p = 0.1 per trial, counts are Binomial(60, 0.1): mean 6,
    // sd ≈ 2.32. A count of 20 is > 6σ — allow up to 20.
    let max = inclusion.iter().copied().max().unwrap();
    assert!(max <= 20, "some key over-included: {max} (expected ~6)");

    // Aggregate uniformity: variance close to binomial variance.
    let var = inclusion
        .iter()
        .map(|&c| (f64::from(c) - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let binom_var = expected * (1.0 - sketch_size as f64 / n as f64);
    assert!(
        (var / binom_var - 1.0).abs() < 0.35,
        "inclusion variance {var:.2} vs binomial {binom_var:.2}"
    );
}

/// Estimates converge to the exact after-join correlation as the sketch
/// grows — the space/accuracy trade-off of Section 3.3.
#[test]
fn estimates_converge_with_sketch_size() {
    let n = 12_000usize;
    let (tx, ty) = make_tables(n, |i| {
        (i as f64 * 0.11).sin() * 4.0 + ((i * 7) % 13) as f64 * 0.8
    });
    let joined = exact_join(&tx, &ty, Aggregation::Mean);
    let truth = pearson(&joined.x, &joined.y).unwrap();

    let mut last_err = f64::INFINITY;
    for &size in &[64usize, 512, 3072] {
        let builder = SketchBuilder::new(SketchConfig::with_size(size));
        let sample = join_sketches(&builder.build(&tx), &builder.build(&ty)).unwrap();
        let est = sample.estimate(CorrelationEstimator::Pearson).unwrap();
        let err = (est - truth).abs();
        // Allow noise, but demand order-of-magnitude convergence overall.
        assert!(
            err < last_err + 0.05,
            "error should broadly decrease: size {size} err {err:.4} prev {last_err:.4}"
        );
        last_err = err;
    }
    assert!(last_err < 0.03, "3072-sketch error too large: {last_err}");
}

/// Every estimator supported by the sketch agrees with its own
/// full-data population target on a large join sample.
#[test]
fn all_estimators_converge_on_their_targets() {
    let n = 8_000usize;
    let (tx, ty) = make_tables(n, |i| ((i as f64 * 0.11).sin() * 4.0).exp());
    let joined = exact_join(&tx, &ty, Aggregation::Mean);

    let builder = SketchBuilder::new(SketchConfig::with_size(1024));
    let sample = join_sketches(&builder.build(&tx), &builder.build(&ty)).unwrap();
    assert!(sample.len() > 700);

    for est in CorrelationEstimator::ALL {
        let truth = est.population_target(&joined.x, &joined.y).unwrap();
        let est_val = sample.estimate(est).unwrap();
        let tol = match est {
            // Qn and PM1 have higher variance.
            CorrelationEstimator::Qn | CorrelationEstimator::Pm1Bootstrap { .. } => 0.1,
            _ => 0.05,
        };
        assert!(
            (est_val - truth).abs() < tol,
            "{}: estimate {est_val:.3} vs target {truth:.3}",
            est.name()
        );
    }
}

/// The Hoeffding CI covers the exact after-join correlation at the
/// configured rate, end-to-end through the sketch pipeline.
#[test]
fn hoeffding_ci_covers_truth_through_the_pipeline() {
    let n = 10_000usize;
    let (tx, ty) = make_tables(n, |i| {
        (i as f64 * 0.11).sin() * 4.0 + ((i * 3) % 17) as f64 * 0.6
    });
    let joined = exact_join(&tx, &ty, Aggregation::Mean);
    let truth = pearson(&joined.x, &joined.y).unwrap();

    let mut covered = 0usize;
    let trials = 30usize;
    for seed in 0..trials as u64 {
        let builder =
            SketchBuilder::new(SketchConfig::with_size(512).hasher(TupleHasher::new_64(seed)));
        let sample = join_sketches(&builder.build(&tx), &builder.build(&ty)).unwrap();
        let ci = sample.hoeffding_ci(0.05).unwrap();
        covered += usize::from(ci.contains(truth));
    }
    assert!(
        covered >= (trials as f64 * 0.95) as usize,
        "coverage {covered}/{trials}"
    );
}
