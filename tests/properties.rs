//! Cross-crate property-based tests (proptest) on the core invariants
//! listed in DESIGN.md §6.

use proptest::collection::vec;
use proptest::prelude::*;

use join_correlation::hashing::TupleHasher;
use join_correlation::sketches::{
    distinct_value_estimate, join_sketches, CorrelationSketch, SketchBuilder, SketchConfig,
};
use join_correlation::stats::CorrelationEstimator;
use join_correlation::table::{exact_join, Aggregation, ColumnPair};

fn pair_from(keys: Vec<u16>, values: Vec<f64>, table: &str) -> ColumnPair {
    let n = keys.len().min(values.len());
    ColumnPair::new(
        table,
        "k",
        "v",
        keys[..n].iter().map(|k| format!("key-{k}")).collect(),
        values[..n].to_vec(),
    )
}

/// Arbitrary key/value columns: repeated keys, arbitrary finite values.
fn arb_pair(table: &'static str) -> impl Strategy<Value = ColumnPair> {
    (vec(0u16..500, 1..400), vec(-1e6f64..1e6, 1..400))
        .prop_map(move |(k, v)| pair_from(k, v, table))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An unsaturated sketch contains exactly the distinct-key set.
    #[test]
    fn unsaturated_sketch_is_exact(p in arb_pair("t")) {
        let builder = SketchBuilder::new(SketchConfig::with_size(100_000));
        let s = builder.build(&p);
        prop_assert!(!s.is_saturated());
        prop_assert_eq!(s.len(), p.distinct_keys());
        prop_assert_eq!(distinct_value_estimate(&s) as usize, p.distinct_keys());
    }

    /// The sketch join's paired values are always a subset of the exact
    /// aggregated join's pairs.
    #[test]
    fn sketch_join_is_subset_of_exact_join(
        a in arb_pair("a"),
        b in arb_pair("b"),
        size in 1usize..64,
    ) {
        let builder = SketchBuilder::new(SketchConfig::with_size(size));
        let sample = join_sketches(&builder.build(&a), &builder.build(&b)).unwrap();
        let exact = exact_join(&a, &b, Aggregation::Mean);
        prop_assert!(sample.len() <= exact.len());
        let exact_pairs: std::collections::HashSet<(u64, u64)> = exact
            .x
            .iter()
            .zip(&exact.y)
            .map(|(x, y)| (x.to_bits(), y.to_bits()))
            .collect();
        for (x, y) in sample.x.iter().zip(&sample.y) {
            prop_assert!(exact_pairs.contains(&(x.to_bits(), y.to_bits())));
        }
    }

    /// Streaming repeated-key aggregation equals aggregate-then-sketch
    /// for arbitrary inputs and every order-free aggregation.
    #[test]
    fn streaming_equals_preaggregation(
        keys in vec(0u16..60, 1..300),
        values in vec(-1e3f64..1e3, 1..300),
    ) {
        let p = pair_from(keys, values, "t");
        for agg in [Aggregation::Mean, Aggregation::Sum, Aggregation::Min, Aggregation::Max] {
            let cfg = SketchConfig::with_size(16).aggregation(agg);
            let streamed = SketchBuilder::new(cfg).build(&p);

            // Reference: group by key, aggregate, sketch with identity agg.
            let mut order: Vec<&str> = Vec::new();
            let mut groups: std::collections::HashMap<&str, Vec<f64>> = Default::default();
            for (k, v) in p.rows() {
                if !groups.contains_key(k) {
                    order.push(k);
                }
                groups.entry(k).or_default().push(v);
            }
            let ref_pair = ColumnPair::new(
                "t", "k", "v",
                order.iter().map(|k| (*k).to_string()).collect(),
                order.iter().map(|k| agg.aggregate_slice(&groups[*k]).unwrap()).collect(),
            );
            let ref_cfg = SketchConfig::with_size(16).aggregation(Aggregation::First);
            let reference = SketchBuilder::new(ref_cfg).build(&ref_pair);
            prop_assert_eq!(streamed.entries(), reference.entries());
        }
    }

    /// Serialization round-trips exactly.
    #[test]
    fn sketch_serde_roundtrip(p in arb_pair("t"), size in 1usize..64) {
        let s = SketchBuilder::new(SketchConfig::with_size(size)).build(&p);
        let back = CorrelationSketch::from_json(&s.to_json().unwrap()).unwrap();
        prop_assert_eq!(s, back);
    }

    /// Correlation estimates, when defined, always lie in [−1, 1].
    #[test]
    fn estimates_in_unit_range(
        a in arb_pair("a"),
        b in arb_pair("b"),
    ) {
        let builder = SketchBuilder::new(SketchConfig::with_size(64));
        let sample = join_sketches(&builder.build(&a), &builder.build(&b)).unwrap();
        for est in [
            CorrelationEstimator::Pearson,
            CorrelationEstimator::Spearman,
            CorrelationEstimator::Rin,
        ] {
            if let Ok(r) = sample.estimate(est) {
                prop_assert!((-1.0..=1.0).contains(&r), "{}: {r}", est.name());
            }
        }
    }

    /// Different hasher seeds build different sketches but identical
    /// seeds always agree (corpus-wide determinism).
    #[test]
    fn hasher_determinism(p in arb_pair("t"), seed in 0u64..1000) {
        let c1 = SketchConfig::with_size(32).hasher(TupleHasher::new_64(seed));
        let a = SketchBuilder::new(c1).build(&p);
        let b = SketchBuilder::new(c1).build(&p);
        prop_assert_eq!(a.entries(), b.entries());
    }

    /// The Hoeffding interval always contains the sample estimate itself
    /// and is a superset of sane bounds.
    #[test]
    fn hoeffding_interval_contains_estimate(
        a in arb_pair("a"),
        b in arb_pair("b"),
    ) {
        let builder = SketchBuilder::new(SketchConfig::with_size(128));
        let sample = join_sketches(&builder.build(&a), &builder.build(&b)).unwrap();
        if sample.len() < 3 {
            return Ok(());
        }
        if let (Ok(r), Ok(ci)) = (
            sample.estimate(CorrelationEstimator::Pearson),
            sample.hoeffding_ci(0.05),
        ) {
            prop_assert!(ci.low >= -1.0 && ci.high <= 1.0);
            prop_assert!(
                ci.contains(r),
                "estimate {r} outside its own CI {ci:?} (n={})",
                sample.len()
            );
        }
    }
}
