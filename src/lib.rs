//! Umbrella crate for the Correlation Sketches reproduction.
//!
//! Re-exports the workspace crates under short names so examples and
//! integration tests can `use join_correlation::...` uniformly. See the
//! individual crates for the actual implementations:
//!
//! * [`correlation_sketches`] — the sketch itself (the paper's core
//!   contribution).
//! * [`sketch_hashing`], [`sketch_stats`], [`sketch_table`] — substrates.
//! * [`sketch_index`], [`sketch_ranking`] — query engine and scoring.
//! * [`sketch_store`] — sharded binary corpus store.
//! * [`sketch_datagen`] — reproducible synthetic corpora.

pub use correlation_sketches as sketches;
pub use sketch_datagen as datagen;
pub use sketch_hashing as hashing;
pub use sketch_index as index;
pub use sketch_ranking as ranking;
pub use sketch_stats as stats;
pub use sketch_store as store;
pub use sketch_table as table;
