//! Reproducible synthetic corpora for the experimental evaluation
//! (paper Section 5.1).
//!
//! Three data sources are modelled:
//!
//! * [`sbn`] — **Synthetic Bivariate Normal**, implemented exactly as the
//!   paper describes: `t` table pairs, per-pair row count `n`, target
//!   correlation `r ~ U(−1, 1)`, and the second table subsampled to
//!   `n·c` rows with join probability `c ~ U(0, 1)`.
//! * [`opendata`] — **WBF-like and NYC-like corpus simulators**. The
//!   paper's snapshots of the World Bank Finances (64 tables) and NYC Open
//!   Data (1,505 tables) portals are not redistributable, so we simulate
//!   open-data collections with the properties the paper calls out:
//!   heavy-tailed monetary values, missing data, repeated keys, shared key
//!   domains across tables, and a minority of genuinely correlated column
//!   pairs hidden among many uncorrelated ones (the "needle in a
//!   haystack" regime of Section 4). Correlations are induced through
//!   per-key latent factors shared across tables.
//! * [`workload`] — query/corpus splits for the ranking experiments
//!   (Sections 5.4–5.5).
//! * [`planted`] — corpora with *known* ground truth (true partners,
//!   noise, and small-overlap trap columns) for the `rank_eval`
//!   point-estimate vs confidence-aware ranking comparison.
//!
//! Everything is deterministic given the config seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod opendata;
pub mod planted;
pub mod sbn;
pub mod workload;

pub use dist::Dist;
pub use opendata::{generate_open_data, CorpusStyle, OpenDataConfig};
pub use planted::{generate_planted, PlantedConfig, PlantedCorpus};
pub use sbn::{generate_sbn, SbnConfig, SbnPair};
pub use workload::{split_corpus, CorpusSplit};
