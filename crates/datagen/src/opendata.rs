//! Open-data corpus simulators standing in for the paper's World Bank
//! Finances (WBF) and NYC Open Data (NYC) snapshots (Section 5.1).
//!
//! The originals are point-in-time Socrata crawls we cannot redistribute;
//! what the evaluation actually needs from them is their *statistical
//! texture*, which the paper describes and which this generator
//! reproduces:
//!
//! * tables share **key domains** (dates, zip codes, agencies, country
//!   codes), so joinable pairs exist across tables;
//! * key frequencies are skewed (repeated keys → aggregation matters);
//! * numeric marginals are mixed: normal, lognormal (large monetary
//!   values, WBF), integer counts, uniform; there is **missing data**;
//! * most column pairs are uncorrelated, a minority are genuinely
//!   correlated — correlation is induced through per-key **latent
//!   factors** shared across tables (column value = β·latent + noise),
//!   giving the "needle in a haystack" regime of Section 4.

use sketch_table::{NamedColumn, Table};

use crate::dist::{Dist, Zipf};

/// Which collection to imitate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusStyle {
    /// World Bank Finances: few tables (paper: 64), more rows/columns per
    /// table, heavy monetary values, more missing data.
    Wbf,
    /// NYC Open Data: many tables (paper: 1,505), smaller on average,
    /// mixed marginals, skewed key frequencies.
    Nyc,
}

/// Corpus generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct OpenDataConfig {
    /// Collection style.
    pub style: CorpusStyle,
    /// Number of tables to generate.
    pub tables: usize,
    /// Smallest table size (rows).
    pub min_rows: usize,
    /// Largest table size (rows).
    pub max_rows: usize,
    /// Number of shared key domains.
    pub key_domains: usize,
    /// Keys per domain.
    pub domain_size: usize,
    /// Latent factors per domain (more latents → more distinct
    /// correlation "topics").
    pub latents_per_domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OpenDataConfig {
    /// Laptop-scaled WBF-like defaults (64 tables as in the paper).
    #[must_use]
    pub fn wbf(seed: u64) -> Self {
        Self {
            style: CorpusStyle::Wbf,
            tables: 64,
            min_rows: 200,
            max_rows: 5_000,
            key_domains: 6,
            domain_size: 2_000,
            latents_per_domain: 4,
            seed,
        }
    }

    /// Laptop-scaled NYC-like defaults. The paper's snapshot has 1,505
    /// tables; the bench binaries default to a few hundred for quick runs
    /// and accept `--tables 1505` for the full-scale reproduction.
    #[must_use]
    pub fn nyc(seed: u64) -> Self {
        Self {
            style: CorpusStyle::Nyc,
            tables: 300,
            min_rows: 50,
            max_rows: 3_000,
            key_domains: 12,
            domain_size: 1_500,
            latents_per_domain: 5,
            seed,
        }
    }
}

/// A key domain: a pool of key strings with per-key latent factors.
struct Domain {
    keys: Vec<String>,
    /// `latents[l][k]` = latent factor `l` for key index `k`.
    latents: Vec<Vec<f64>>,
    /// Zipf sampler over key frequency ranks.
    freq: Zipf,
}

fn make_domains(cfg: &OpenDataConfig, d: &mut Dist) -> Vec<Domain> {
    let kinds = ["date", "zip", "agency", "country", "station", "district"];
    (0..cfg.key_domains)
        .map(|dom| {
            let kind = kinds[dom % kinds.len()];
            let keys: Vec<String> = (0..cfg.domain_size)
                .map(|i| format!("{kind}{dom}-{i}"))
                .collect();
            let latents = (0..cfg.latents_per_domain)
                .map(|_| (0..cfg.domain_size).map(|_| d.normal()).collect())
                .collect();
            // NYC-style incident data is more skewed than WBF ledgers.
            let s = match cfg.style {
                CorpusStyle::Wbf => 0.4,
                CorpusStyle::Nyc => 0.9,
            };
            Domain {
                keys,
                latents,
                freq: Zipf::new(cfg.domain_size, s),
            }
        })
        .collect()
}

/// How a numeric column derives its values.
enum ValueKind {
    /// `β·latent + σ·noise`, linear in a latent factor (correlated family).
    Linear {
        latent: usize,
        beta: f64,
        noise: f64,
    },
    /// `exp(μ + a·latent + b·noise)` — heavy-tailed, monotone in the
    /// latent (correlated in rank, Spearman-friendly).
    LogLinear {
        latent: usize,
        a: f64,
        b: f64,
        mu: f64,
    },
    /// Independent noise (the uncorrelated majority).
    Noise { heavy: bool },
    /// Small non-negative integer counts driven by a latent.
    Count { latent: usize, scale: f64 },
}

fn gen_value(kind: &ValueKind, latent_val: impl Fn(usize) -> f64, d: &mut Dist) -> f64 {
    match *kind {
        ValueKind::Linear {
            latent,
            beta,
            noise,
        } => beta * latent_val(latent) + noise * d.normal(),
        ValueKind::LogLinear { latent, a, b, mu } => {
            (mu + a * latent_val(latent) + b * d.normal()).exp()
        }
        ValueKind::Noise { heavy } => {
            if heavy {
                d.lognormal(1.0, 1.5)
            } else {
                d.normal_with(0.0, 3.0)
            }
        }
        ValueKind::Count { latent, scale } => (scale * (latent_val(latent) + 2.5)).max(0.0).round(),
    }
}

fn pick_value_kind(cfg: &OpenDataConfig, d: &mut Dist) -> ValueKind {
    let l = d.index(cfg.latents_per_domain);
    // ~45% of columns carry latent signal; the rest are noise. Within the
    // signal-bearing family the signal-to-noise ratio varies, so true
    // correlations span weak to near-perfect.
    let roll = d.uniform();
    if roll < 0.20 {
        let beta = if d.coin(0.5) { 1.0 } else { -1.0 } * d.uniform_range(0.5, 3.0);
        ValueKind::Linear {
            latent: l,
            beta,
            noise: d.uniform_range(0.05, 2.0),
        }
    } else if roll < 0.32 {
        ValueKind::LogLinear {
            latent: l,
            a: d.uniform_range(0.3, 1.2),
            b: d.uniform_range(0.1, 0.8),
            mu: match cfg.style {
                CorpusStyle::Wbf => d.uniform_range(8.0, 14.0), // millions
                CorpusStyle::Nyc => d.uniform_range(1.0, 5.0),
            },
        }
    } else if roll < 0.45 {
        ValueKind::Count {
            latent: l,
            scale: d.uniform_range(1.0, 40.0),
        }
    } else {
        ValueKind::Noise {
            heavy: d.coin(match cfg.style {
                CorpusStyle::Wbf => 0.6,
                CorpusStyle::Nyc => 0.3,
            }),
        }
    }
}

/// Generate the corpus: a vector of tables, each with one categorical key
/// column (named `key`) and 1–4 numeric columns.
#[must_use]
pub fn generate_open_data(cfg: &OpenDataConfig) -> Vec<Table> {
    let mut d = Dist::seeded(cfg.seed);
    let domains = make_domains(cfg, &mut d);

    let missing_rate = match cfg.style {
        CorpusStyle::Wbf => 0.08,
        CorpusStyle::Nyc => 0.03,
    };

    (0..cfg.tables)
        .map(|t| {
            let dom_idx = d.index(domains.len());
            let dom = &domains[dom_idx];
            let rows = cfg.min_rows + (d.uniform() * (cfg.max_rows - cfg.min_rows) as f64) as usize;

            // Each table sees a contiguous-ish slice of the domain, so key
            // overlap between tables varies from none to full.
            let window = (rows / 2).clamp(32, cfg.domain_size);
            let start = d.index(cfg.domain_size.saturating_sub(window).max(1));

            // Draw row keys: Zipf-rank within the window → repeated keys.
            let key_idx: Vec<usize> = (0..rows)
                .map(|_| start + dom.freq.sample(&mut d) % window)
                .collect();

            let n_cols = 1 + d.index(4);
            let mut columns = vec![NamedColumn::categorical(
                "key",
                key_idx
                    .iter()
                    .map(|&k| (!d.coin(missing_rate * 0.3)).then(|| dom.keys[k].clone()))
                    .collect(),
            )];
            for c in 0..n_cols {
                let kind = pick_value_kind(cfg, &mut d);
                let values: Vec<Option<f64>> = key_idx
                    .iter()
                    .map(|&k| {
                        if d.coin(missing_rate) {
                            None
                        } else {
                            Some(gen_value(&kind, |l| dom.latents[l][k], &mut d))
                        }
                    })
                    .collect();
                columns.push(NamedColumn::numeric(format!("v{c}"), values));
            }
            Table::from_columns(format!("{}_{t}", style_name(cfg.style)), columns)
        })
        .collect()
}

fn style_name(style: CorpusStyle) -> &'static str {
    match style {
        CorpusStyle::Wbf => "wbf",
        CorpusStyle::Nyc => "nyc",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_table::{exact_join, Aggregation};

    fn tiny_nyc() -> OpenDataConfig {
        OpenDataConfig {
            tables: 40,
            min_rows: 50,
            max_rows: 400,
            domain_size: 300,
            ..OpenDataConfig::nyc(99)
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_open_data(&tiny_nyc());
        let b = generate_open_data(&tiny_nyc());
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn tables_have_key_and_numeric_columns() {
        for t in generate_open_data(&tiny_nyc()) {
            assert_eq!(t.categorical_names(), vec!["key"]);
            assert!(!t.numeric_names().is_empty());
            assert!(t.num_rows() >= 50);
        }
    }

    #[test]
    fn corpus_contains_missing_data() {
        let tables = generate_open_data(&OpenDataConfig::wbf(7));
        let total_nulls: usize = tables
            .iter()
            .flat_map(|t| t.columns().iter())
            .map(|c| c.data.null_count())
            .sum();
        assert!(total_nulls > 0, "WBF-like corpus must have missing data");
    }

    #[test]
    fn keys_repeat_within_tables() {
        let tables = generate_open_data(&tiny_nyc());
        let any_repeats = tables
            .iter()
            .any(|t| t.column_pairs().iter().any(|p| p.distinct_keys() < p.len()));
        assert!(any_repeats, "Zipf key draws must produce repeated keys");
    }

    #[test]
    fn some_cross_table_pairs_are_joinable() {
        let tables = generate_open_data(&tiny_nyc());
        let pairs: Vec<_> = tables.iter().flat_map(Table::column_pairs).collect();
        let mut joinable = 0;
        for i in 0..pairs.len().min(40) {
            for j in (i + 1)..pairs.len().min(40) {
                if pairs[i].table == pairs[j].table {
                    continue;
                }
                if sketch_table::key_overlap(&pairs[i], &pairs[j]) >= 10 {
                    joinable += 1;
                }
            }
        }
        assert!(
            joinable > 5,
            "need joinable cross-table pairs, got {joinable}"
        );
    }

    #[test]
    fn corpus_has_correlated_and_uncorrelated_pairs() {
        // The needle-in-a-haystack premise: joined cross-table pairs must
        // include both |r| > 0.75 and |r| < 0.2 cases.
        let cfg = OpenDataConfig {
            tables: 60,
            ..tiny_nyc()
        };
        let tables = generate_open_data(&cfg);
        let pairs: Vec<_> = tables.iter().flat_map(Table::column_pairs).collect();
        let (mut high, mut low) = (0, 0);
        'outer: for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                if pairs[i].table == pairs[j].table {
                    continue;
                }
                let joined = exact_join(&pairs[i], &pairs[j], Aggregation::Mean);
                if joined.len() < 30 {
                    continue;
                }
                if let Ok(r) = sketch_stats::pearson(&joined.x, &joined.y) {
                    if r.abs() > 0.75 {
                        high += 1;
                    }
                    if r.abs() < 0.2 {
                        low += 1;
                    }
                }
                if high >= 3 && low >= 20 {
                    break 'outer;
                }
            }
        }
        assert!(high >= 3, "need some highly-correlated pairs, got {high}");
        assert!(low >= 20, "need many uncorrelated pairs, got {low}");
    }

    #[test]
    fn wbf_style_has_monetary_scale_values() {
        let tables = generate_open_data(&OpenDataConfig::wbf(3));
        let max_val = tables
            .iter()
            .flat_map(Table::column_pairs)
            .flat_map(|p| p.values.clone())
            .fold(0.0f64, f64::max);
        assert!(
            max_val > 1e5,
            "WBF columns should reach monetary scale, max={max_val}"
        );
    }
}
