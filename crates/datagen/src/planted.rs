//! Planted ranking corpora with known ground truth — the input of the
//! `rank_eval` bench (paper Section 5.4's comparison of point-estimate
//! vs confidence-aware ranking, on data where the right answer is known
//! by construction).
//!
//! Every query column gets three candidate populations, modelling the
//! "false positives by chance" regime of paper Section 4:
//!
//! * **true partners** — full key overlap, genuinely correlated
//!   (`|r| ≈ 0.75–0.9` via controlled noise on a shared signal): the
//!   relevant answers.
//! * **noise columns** — full key overlap, independent values: big join
//!   samples whose estimates concentrate near 0; never competitive.
//! * **trap columns** — independent values over a *small* random subset
//!   of the keys. Their ground-truth correlation is ≈ 0, but a sketch
//!   join sees only a handful of their rows, and across many traps some
//!   estimates land near ±1 purely by chance. A point-estimate ranker
//!   (`s1`) promotes those flukes above the true partners; the
//!   CI-aware scorers (`s2`–`s4`) demote them — exactly the effect
//!   `rank_eval` measures as recall@k.
//!
//! Queries use disjoint key namespaces (`q3-k17`), so each query's
//! candidate pool is exactly its own planted tables and ground truth
//! never leaks across queries. Everything is deterministic given the
//! seed.

use sketch_table::ColumnPair;

use crate::dist::Dist;

/// Shape of a planted ranking corpus.
#[derive(Debug, Clone, Copy)]
pub struct PlantedConfig {
    /// Number of query columns.
    pub queries: usize,
    /// Genuinely correlated partners per query (the relevant set).
    pub true_per_query: usize,
    /// Full-overlap uncorrelated columns per query.
    pub noise_per_query: usize,
    /// Small-overlap trap columns per query.
    pub traps_per_query: usize,
    /// Rows per query column (and per full-overlap candidate).
    pub rows: usize,
    /// Keys per trap column (small, so a sketch join sees only a few
    /// rows of it).
    pub trap_keys: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for PlantedConfig {
    fn default() -> Self {
        Self {
            queries: 8,
            true_per_query: 3,
            noise_per_query: 6,
            traps_per_query: 60,
            rows: 1_200,
            trap_keys: 40,
            seed: 42,
        }
    }
}

/// A planted corpus: query columns plus the candidate pool.
#[derive(Debug, Clone)]
pub struct PlantedCorpus {
    /// The query columns, one per planted group.
    pub queries: Vec<ColumnPair>,
    /// All candidate columns (true partners, noise, traps, shuffled
    /// within each query group's namespace).
    pub corpus: Vec<ColumnPair>,
}

/// Generate a planted ranking corpus. Deterministic given
/// `cfg.seed`.
///
/// # Panics
///
/// Panics if `cfg.trap_keys` exceeds `cfg.rows` or any population count
/// is zero where the construction requires at least one query.
#[must_use]
pub fn generate_planted(cfg: &PlantedConfig) -> PlantedCorpus {
    assert!(cfg.queries > 0, "need at least one query");
    assert!(
        cfg.trap_keys >= 2 && cfg.trap_keys <= cfg.rows,
        "trap_keys must be in [2, rows]"
    );
    let mut d = Dist::seeded(cfg.seed);
    let mut queries = Vec::with_capacity(cfg.queries);
    let mut corpus = Vec::new();

    for qi in 0..cfg.queries {
        let keys: Vec<String> = (0..cfg.rows).map(|j| format!("q{qi}-k{j}")).collect();
        // The shared latent signal: one normal draw per key.
        let signal: Vec<f64> = (0..cfg.rows).map(|_| d.normal()).collect();
        queries.push(ColumnPair::new(
            format!("q{qi}"),
            "k",
            "v",
            keys.clone(),
            signal.clone(),
        ));

        for t in 0..cfg.true_per_query {
            // y = ±x + σ·ε with σ ∈ [0.5, 0.8] ⇒ |r| = 1/√(1+σ²) ≈ 0.78–0.89.
            let sigma = d.uniform_range(0.5, 0.8);
            let slope = if d.coin(0.5) { 1.0 } else { -1.0 };
            let values: Vec<f64> = signal
                .iter()
                .map(|&s| slope * s + sigma * d.normal())
                .collect();
            corpus.push(ColumnPair::new(
                format!("q{qi}_true{t}"),
                "k",
                "v",
                keys.clone(),
                values,
            ));
        }

        for t in 0..cfg.noise_per_query {
            let values: Vec<f64> = (0..cfg.rows).map(|_| d.normal()).collect();
            corpus.push(ColumnPair::new(
                format!("q{qi}_noise{t}"),
                "k",
                "v",
                keys.clone(),
                values,
            ));
        }

        for t in 0..cfg.traps_per_query {
            // A small random subset of the query's keys, independent
            // values: ground-truth correlation ≈ 0, sketch-join sample
            // tiny.
            let mut picked: Vec<usize> = (0..cfg.rows).collect();
            d.shuffle(&mut picked);
            picked.truncate(cfg.trap_keys);
            picked.sort_unstable(); // deterministic column order
            let trap_keys: Vec<String> = picked.iter().map(|&j| keys[j].clone()).collect();
            let values: Vec<f64> = picked.iter().map(|_| d.normal()).collect();
            corpus.push(ColumnPair::new(
                format!("q{qi}_trap{t}"),
                "k",
                "v",
                trap_keys,
                values,
            ));
        }
    }

    PlantedCorpus { queries, corpus }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_stats::pearson;
    use sketch_table::{exact_join, Aggregation};

    fn small() -> PlantedConfig {
        PlantedConfig {
            queries: 2,
            true_per_query: 2,
            noise_per_query: 2,
            traps_per_query: 5,
            rows: 400,
            trap_keys: 20,
            seed: 7,
        }
    }

    #[test]
    fn shape_matches_config() {
        let cfg = small();
        let p = generate_planted(&cfg);
        assert_eq!(p.queries.len(), 2);
        assert_eq!(p.corpus.len(), 2 * (2 + 2 + 5));
        for q in &p.queries {
            assert_eq!(q.len(), cfg.rows);
        }
    }

    #[test]
    fn ground_truth_separates_the_populations() {
        let p = generate_planted(&small());
        let q = &p.queries[0];
        for c in &p.corpus {
            if !c.table.starts_with("q0_") {
                // Other queries' candidates never join (disjoint keys).
                assert_eq!(exact_join(q, c, Aggregation::Mean).len(), 0, "{}", c.table);
                continue;
            }
            let joined = exact_join(q, c, Aggregation::Mean);
            let r = pearson(&joined.x, &joined.y).unwrap().abs();
            if c.table.contains("_true") {
                assert!(joined.len() == q.len(), "{}", c.table);
                assert!((0.6..=0.95).contains(&r), "{}: r={r}", c.table);
            } else if c.table.contains("_noise") {
                assert!(r < 0.3, "{}: r={r}", c.table);
            } else {
                assert_eq!(joined.len(), 20, "{}", c.table);
                assert!(
                    r < 0.6,
                    "{}: trap ground truth must be weak, r={r}",
                    c.table
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_planted(&small());
        let b = generate_planted(&small());
        assert_eq!(
            a.corpus.iter().map(ColumnPair::id).collect::<Vec<_>>(),
            b.corpus.iter().map(ColumnPair::id).collect::<Vec<_>>()
        );
        assert_eq!(a.queries[0].values, b.queries[0].values);
        let c = generate_planted(&PlantedConfig { seed: 8, ..small() });
        assert_ne!(a.queries[0].values, c.queries[0].values);
    }
}
