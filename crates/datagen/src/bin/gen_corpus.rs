//! Dump a synthetic open-data corpus to a directory of CSV files — the
//! companion to the `corrsketch` CLI, so the full pipeline can be
//! exercised without any external data:
//!
//! ```text
//! cargo run --release -p sketch-datagen --bin gen_corpus -- \
//!     --style nyc --tables 50 --out /tmp/lake
//! corrsketch index --dir /tmp/lake --out /tmp/lake.sketches
//! corrsketch query --index /tmp/lake.sketches --table /tmp/lake/nyc_0.csv \
//!     --key key --value v0
//! ```
//!
//! With `--pack <store-dir>` the corpus is additionally sketched and
//! emitted as a packed binary store (`sketch-store` shards + manifest),
//! ready for `corrsketch query --store` / `corrsketch corpus info`:
//!
//! ```text
//! gen_corpus --style nyc --tables 50 --out /tmp/lake \
//!     --pack /tmp/lake-store --sketch-size 256 --shards 8
//! ```

use correlation_sketches::{build_sketches_parallel, SketchConfig};
use sketch_datagen::{generate_open_data, CorpusStyle, OpenDataConfig};
use sketch_table::Table;

fn usage() -> ! {
    eprintln!(
        "usage: gen_corpus --out <dir> [--style nyc|wbf] [--tables N] \
         [--seed N] [--min-rows N] [--max-rows N] \
         [--pack <store-dir>] [--sketch-size N] [--shards N] [--threads N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out: Option<String> = None;
    let mut style = CorpusStyle::Nyc;
    let mut tables: Option<usize> = None;
    let mut seed = 42u64;
    let mut min_rows: Option<usize> = None;
    let mut max_rows: Option<usize> = None;
    let mut pack: Option<String> = None;
    let mut sketch_size = 256usize;
    let mut shards = 8usize;
    let mut threads = 1usize;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--out" => out = Some(value),
            "--style" => {
                style = match value.as_str() {
                    "nyc" => CorpusStyle::Nyc,
                    "wbf" => CorpusStyle::Wbf,
                    _ => usage(),
                }
            }
            "--tables" => tables = value.parse().ok().or_else(|| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            "--min-rows" => min_rows = value.parse().ok().or_else(|| usage()),
            "--max-rows" => max_rows = value.parse().ok().or_else(|| usage()),
            "--pack" => pack = Some(value),
            "--sketch-size" => sketch_size = value.parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let mut cfg = match style {
        CorpusStyle::Nyc => OpenDataConfig::nyc(seed),
        CorpusStyle::Wbf => OpenDataConfig::wbf(seed),
    };
    if let Some(t) = tables {
        cfg.tables = t;
    }
    if let Some(m) = min_rows {
        cfg.min_rows = m;
    }
    if let Some(m) = max_rows {
        cfg.max_rows = m;
    }

    std::fs::create_dir_all(&out).expect("create output directory");
    let corpus = generate_open_data(&cfg);
    let mut rows = 0usize;
    for table in &corpus {
        let path = std::path::Path::new(&out).join(format!("{}.csv", table.name));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        rows += table.num_rows();
    }
    println!(
        "wrote {} tables ({} rows total) to {out} (style {:?}, seed {seed})",
        corpus.len(),
        rows,
        cfg.style
    );

    if let Some(store_dir) = pack {
        let pairs: Vec<_> = corpus.iter().flat_map(Table::column_pairs).collect();
        let sketches =
            build_sketches_parallel(&pairs, SketchConfig::with_size(sketch_size), threads);
        let manifest = sketch_store::pack_corpus(
            std::path::Path::new(&store_dir),
            &sketches,
            &sketch_store::PackOptions { shards, threads },
        )
        .expect("pack corpus store");
        println!(
            "packed {} sketches (size {sketch_size}) into {} shards under {store_dir}",
            manifest.total,
            manifest.shards.len()
        );
    }
}
