//! Dump a synthetic open-data corpus to a directory of CSV files — the
//! companion to the `corrsketch` CLI, so the full pipeline can be
//! exercised without any external data:
//!
//! ```text
//! cargo run --release -p sketch-datagen --bin gen_corpus -- \
//!     --style nyc --tables 50 --out /tmp/lake
//! corrsketch index --dir /tmp/lake --out /tmp/lake.sketches
//! corrsketch query --index /tmp/lake.sketches --table /tmp/lake/nyc_0.csv \
//!     --key key --value v0
//! ```

use sketch_datagen::{generate_open_data, CorpusStyle, OpenDataConfig};

fn usage() -> ! {
    eprintln!(
        "usage: gen_corpus --out <dir> [--style nyc|wbf] [--tables N] \
         [--seed N] [--min-rows N] [--max-rows N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut out: Option<String> = None;
    let mut style = CorpusStyle::Nyc;
    let mut tables: Option<usize> = None;
    let mut seed = 42u64;
    let mut min_rows: Option<usize> = None;
    let mut max_rows: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--out" => out = Some(value),
            "--style" => {
                style = match value.as_str() {
                    "nyc" => CorpusStyle::Nyc,
                    "wbf" => CorpusStyle::Wbf,
                    _ => usage(),
                }
            }
            "--tables" => tables = value.parse().ok().or_else(|| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            "--min-rows" => min_rows = value.parse().ok().or_else(|| usage()),
            "--max-rows" => max_rows = value.parse().ok().or_else(|| usage()),
            _ => usage(),
        }
    }
    let Some(out) = out else { usage() };

    let mut cfg = match style {
        CorpusStyle::Nyc => OpenDataConfig::nyc(seed),
        CorpusStyle::Wbf => OpenDataConfig::wbf(seed),
    };
    if let Some(t) = tables {
        cfg.tables = t;
    }
    if let Some(m) = min_rows {
        cfg.min_rows = m;
    }
    if let Some(m) = max_rows {
        cfg.max_rows = m;
    }

    std::fs::create_dir_all(&out).expect("create output directory");
    let corpus = generate_open_data(&cfg);
    let mut rows = 0usize;
    for table in &corpus {
        let path = std::path::Path::new(&out).join(format!("{}.csv", table.name));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        rows += table.num_rows();
    }
    println!(
        "wrote {} tables ({} rows total) to {out} (style {:?}, seed {seed})",
        corpus.len(),
        rows,
        cfg.style
    );
}
