//! Query workloads: splitting a corpus of column pairs into disjoint
//! query and corpus sets (paper Section 5.5: "extracted all column pairs
//! … and randomly split them into two distinct sets, which we denote as
//! query set and corpus set").

use sketch_table::{ColumnPair, Table};

use crate::dist::Dist;

/// A query/corpus split of column pairs.
#[derive(Debug, Clone)]
pub struct CorpusSplit {
    /// Pairs used as queries.
    pub queries: Vec<ColumnPair>,
    /// Pairs that populate the index.
    pub corpus: Vec<ColumnPair>,
}

/// Extract all column pairs from `tables` and split them randomly into a
/// query set (`query_fraction` of the pairs) and a corpus set.
///
/// # Panics
///
/// Panics if `query_fraction` is outside `(0, 1)`.
#[must_use]
pub fn split_corpus(tables: &[Table], query_fraction: f64, seed: u64) -> CorpusSplit {
    assert!(
        query_fraction > 0.0 && query_fraction < 1.0,
        "query_fraction must be in (0, 1)"
    );
    let mut pairs: Vec<ColumnPair> = tables.iter().flat_map(Table::column_pairs).collect();
    let mut d = Dist::seeded(seed);
    d.shuffle(&mut pairs);
    let n_query = ((pairs.len() as f64) * query_fraction).round() as usize;
    let n_query = n_query.clamp(1, pairs.len().saturating_sub(1).max(1));
    let corpus = pairs.split_off(n_query.min(pairs.len()));
    CorpusSplit {
        queries: pairs,
        corpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opendata::{generate_open_data, OpenDataConfig};

    fn tables() -> Vec<Table> {
        generate_open_data(&OpenDataConfig {
            tables: 20,
            min_rows: 30,
            max_rows: 100,
            ..OpenDataConfig::nyc(1)
        })
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ts = tables();
        let total: usize = ts.iter().map(|t| t.column_pairs().len()).sum();
        let split = split_corpus(&ts, 0.3, 42);
        assert_eq!(split.queries.len() + split.corpus.len(), total);
        let qids: std::collections::HashSet<String> =
            split.queries.iter().map(ColumnPair::id).collect();
        assert!(split.corpus.iter().all(|p| !qids.contains(&p.id())));
    }

    #[test]
    fn split_respects_fraction() {
        let ts = tables();
        let split = split_corpus(&ts, 0.25, 42);
        let total = split.queries.len() + split.corpus.len();
        let got = split.queries.len() as f64 / total as f64;
        assert!((got - 0.25).abs() < 0.05, "fraction {got}");
    }

    #[test]
    fn split_is_deterministic_and_seed_sensitive() {
        let ts = tables();
        let a = split_corpus(&ts, 0.3, 1);
        let b = split_corpus(&ts, 0.3, 1);
        assert_eq!(
            a.queries.iter().map(ColumnPair::id).collect::<Vec<_>>(),
            b.queries.iter().map(ColumnPair::id).collect::<Vec<_>>()
        );
        let c = split_corpus(&ts, 0.3, 2);
        assert_ne!(
            a.queries.iter().map(ColumnPair::id).collect::<Vec<_>>(),
            c.queries.iter().map(ColumnPair::id).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "query_fraction")]
    fn bad_fraction_panics() {
        let _ = split_corpus(&tables(), 1.5, 1);
    }
}
