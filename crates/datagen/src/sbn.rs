//! The Synthetic Bivariate Normal (SBN) corpus, generated exactly as in
//! paper Section 5.1:
//!
//! > "created by creating `t` tables consisting of `n` tuples
//! > `⟨k, x_k, y_k⟩`, where `k ∈ K` is a random unique string, and `x_k`
//! > and `y_k` are real numbers drawn from a bivariate normal distribution
//! > with mean 0 … We then created `t` pairs of tables `T_X = ⟨K_X, X⟩`
//! > and `T_Y = ⟨K_Y, Y⟩`. Finally, we reduced the size of table `T_Y`
//! > from `n` to `n′` by selecting a uniform random sample of size
//! > `n′ = n·c`, where `c` is a random real number in the range `(0, 1)`
//! > indicating the join probability … We set `t = 3000`, `n` random in
//! > `(0, 500000)`, and `r_XY` uniform in `(−1, 1)`."

use sketch_table::ColumnPair;

use crate::dist::Dist;

/// Configuration of the SBN corpus.
#[derive(Debug, Clone, Copy)]
pub struct SbnConfig {
    /// Number of table pairs `t` (paper: 3000).
    pub pairs: usize,
    /// Minimum rows per table pair (the paper's draw is `U(0, 500000)`;
    /// we floor at a small minimum so every pair is usable).
    pub min_rows: usize,
    /// Maximum rows per table pair (paper: 500,000 — default here is
    /// laptop-scaled; the bench binaries expose it as a flag).
    pub max_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SbnConfig {
    fn default() -> Self {
        Self {
            pairs: 3000,
            min_rows: 10,
            max_rows: 50_000,
            seed: 0x5b4_0001,
        }
    }
}

/// One generated SBN table pair with its ground-truth population
/// correlation target.
#[derive(Debug, Clone)]
pub struct SbnPair {
    /// The full table `T_X = ⟨K_X, X⟩`.
    pub tx: ColumnPair,
    /// The subsampled table `T_Y = ⟨K_Y, Y⟩` (`|T_Y| = c·|T_X|`).
    pub ty: ColumnPair,
    /// The correlation parameter `r_XY` the bivariate normal was drawn
    /// with (the *population* target, not the finite-sample value).
    pub rho: f64,
    /// The join probability `c` used for the subsample.
    pub join_probability: f64,
}

/// Generate the SBN corpus.
#[must_use]
pub fn generate_sbn(cfg: &SbnConfig) -> Vec<SbnPair> {
    let mut d = Dist::seeded(cfg.seed);
    (0..cfg.pairs)
        .map(|pair_idx| generate_pair(&mut d, cfg, pair_idx))
        .collect()
}

fn generate_pair(d: &mut Dist, cfg: &SbnConfig, pair_idx: usize) -> SbnPair {
    let n =
        cfg.min_rows + (d.uniform() * (cfg.max_rows.saturating_sub(cfg.min_rows)) as f64) as usize;
    let rho = d.uniform_range(-1.0, 1.0);
    // c ∈ (0, 1): floor so at least 3 rows survive where possible.
    let c = d.uniform().max(3.0 / n as f64).min(1.0);

    let mut keys = Vec::with_capacity(n);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        // Random unique strings: a per-pair prefix plus the index mixed
        // with a random suffix keeps keys unique and non-sequential.
        keys.push(format!(
            "sbn{pair_idx}-{i}-{:06x}",
            (d.uniform() * 16_777_216.0) as u32
        ));
        let (x, y) = d.bivariate_normal(rho);
        xs.push(x);
        ys.push(y);
    }

    let tx = ColumnPair::new(format!("sbn{pair_idx}_x"), "k", "x", keys.clone(), xs);

    let n_sub = ((n as f64 * c) as usize).max(1).min(n);
    let chosen = d.sample_indices(n, n_sub);
    let ty = ColumnPair::new(
        format!("sbn{pair_idx}_y"),
        "k",
        "y",
        chosen.iter().map(|&i| keys[i].clone()).collect(),
        chosen.iter().map(|&i| ys[i]).collect(),
    );

    SbnPair {
        tx,
        ty,
        rho,
        join_probability: c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketch_table::{exact_join, Aggregation};

    fn small_cfg() -> SbnConfig {
        SbnConfig {
            pairs: 20,
            min_rows: 50,
            max_rows: 2_000,
            seed: 123,
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_sbn(&small_cfg());
        let b = generate_sbn(&small_cfg());
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.tx, pb.tx);
            assert_eq!(pa.ty, pb.ty);
            assert_eq!(pa.rho, pb.rho);
        }
    }

    #[test]
    fn keys_are_unique_within_a_table() {
        for p in generate_sbn(&small_cfg()) {
            assert_eq!(p.tx.distinct_keys(), p.tx.len());
            assert_eq!(p.ty.distinct_keys(), p.ty.len());
        }
    }

    #[test]
    fn ty_is_a_subsample_of_tx_keys() {
        for p in generate_sbn(&small_cfg()) {
            assert!(p.ty.len() <= p.tx.len());
            let keyset: std::collections::HashSet<&str> =
                p.tx.keys.iter().map(String::as_str).collect();
            assert!(p.ty.keys.iter().all(|k| keyset.contains(k.as_str())));
            let expected = (p.tx.len() as f64 * p.join_probability) as usize;
            assert!(p.ty.len().abs_diff(expected.max(1)) <= 1);
        }
    }

    #[test]
    fn joined_correlation_tracks_rho() {
        // For reasonably large pairs, the exact after-join Pearson
        // correlation must be close to the generation parameter.
        let cfg = SbnConfig {
            pairs: 10,
            min_rows: 5_000,
            max_rows: 10_000,
            seed: 77,
        };
        for p in generate_sbn(&cfg) {
            let j = exact_join(&p.tx, &p.ty, Aggregation::Mean);
            if j.len() < 500 {
                continue;
            }
            let r = sketch_stats::pearson(&j.x, &j.y).unwrap();
            assert!(
                (r - p.rho).abs() < 0.1,
                "target rho={} joined r={} (join size {})",
                p.rho,
                r,
                j.len()
            );
        }
    }

    #[test]
    fn rho_spans_the_range() {
        let cfg = SbnConfig {
            pairs: 200,
            min_rows: 10,
            max_rows: 20,
            seed: 5,
        };
        let corpus = generate_sbn(&cfg);
        let min = corpus.iter().map(|p| p.rho).fold(f64::INFINITY, f64::min);
        let max = corpus
            .iter()
            .map(|p| p.rho)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min < -0.8, "min rho {min}");
        assert!(max > 0.8, "max rho {max}");
    }

    #[test]
    fn row_counts_respect_bounds() {
        for p in generate_sbn(&small_cfg()) {
            assert!(p.tx.len() >= 50 && p.tx.len() <= 2_000);
        }
    }
}
