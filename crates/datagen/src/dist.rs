//! Seeded samplers built on `rand`'s uniform source: normal (Box–Muller),
//! lognormal, Zipf over finite support, and key-string generation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded sampler bundling the distributions the corpus generators use.
#[derive(Debug)]
pub struct Dist {
    rng: StdRng,
    spare_normal: Option<f64>,
}

impl Dist {
    /// Create a sampler from a seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    /// Standard normal via Box–Muller (with spare caching).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 ∈ (0, 1] so ln is finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Lognormal: `exp(μ + σ·Z)` — heavy-tailed, like monetary columns.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// A correlated standard-normal pair with Pearson correlation `rho`.
    pub fn bivariate_normal(&mut self, rho: f64) -> (f64, f64) {
        let z1 = self.normal();
        let z2 = self.normal();
        (z1, rho * z1 + (1.0 - rho * rho).max(0.0).sqrt() * z2)
    }

    /// Bernoulli draw.
    pub fn coin(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions are needed.
        for i in 0..k {
            let j = self.rng.random_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, via precomputed
/// CDF and binary search. Models skewed key-occurrence frequencies (a few
/// keys repeat very often — e.g. popular zip codes in incident data).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Sample a rank in `0..n` (0-based).
    pub fn sample(&self, d: &mut Dist) -> usize {
        let u = d.uniform();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_sampler_is_deterministic() {
        let mut a = Dist::seeded(42);
        let mut b = Dist::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
            assert_eq!(a.normal(), b.normal());
        }
    }

    #[test]
    fn normal_moments_are_standard() {
        let mut d = Dist::seeded(7);
        let m: sketch_stats::Moments = (0..50_000).map(|_| d.normal()).collect();
        assert!(m.mean().unwrap().abs() < 0.02);
        assert!((m.population_variance().unwrap() - 1.0).abs() < 0.05);
        assert!(m.excess_kurtosis().unwrap().abs() < 0.1);
    }

    #[test]
    fn bivariate_normal_hits_target_correlation() {
        for &rho in &[-0.9, -0.3, 0.0, 0.5, 0.95] {
            let mut d = Dist::seeded(11);
            let (mut xs, mut ys) = (Vec::new(), Vec::new());
            for _ in 0..20_000 {
                let (x, y) = d.bivariate_normal(rho);
                xs.push(x);
                ys.push(y);
            }
            let r = sketch_stats::pearson(&xs, &ys).unwrap();
            assert!((r - rho).abs() < 0.03, "target {rho}, got {r}");
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut d = Dist::seeded(3);
        let vals: Vec<f64> = (0..10_000).map(|_| d.lognormal(0.0, 1.0)).collect();
        assert!(vals.iter().all(|&v| v > 0.0));
        let m: sketch_stats::Moments = vals.iter().copied().collect();
        assert!(m.skewness().unwrap() > 2.0);
    }

    #[test]
    fn uniform_range_and_index_bounds() {
        let mut d = Dist::seeded(5);
        for _ in 0..1000 {
            let v = d.uniform_range(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
            assert!(d.index(7) < 7);
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut d = Dist::seeded(9);
        let mut s = d.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        assert!(s.iter().all(|&i| i < 100));
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 30);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut d = Dist::seeded(1);
        let mut v: Vec<usize> = (0..50).collect();
        d.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let z = Zipf::new(50, 1.2);
        let mut d = Dist::seeded(2);
        let mut counts = vec![0usize; 50];
        for _ in 0..100_000 {
            counts[z.sample(&mut d)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[30]);
        // Rank 1 should dominate: p(1) ≈ 1/H ≈ 22% for s=1.2, n=50.
        assert!(counts[0] > 15_000);
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut d = Dist::seeded(4);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut d)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5_000.0).abs() < 500.0, "{counts:?}");
        }
    }

    #[test]
    fn coin_respects_probability() {
        let mut d = Dist::seeded(6);
        let heads = (0..10_000).filter(|_| d.coin(0.3)).count();
        assert!((heads as f64 - 3_000.0).abs() < 200.0);
    }
}
