//! Single shard file (`.cskb`) encode/decode. See the crate docs for the
//! byte-by-byte layout.

use std::path::Path;

use correlation_sketches::{CorrelationSketch, SketchError};
use sketch_hashing::murmur3::murmur3_x64_128;

use crate::error::StoreError;

/// First four bytes of every shard file (ASCII `"CSKB"` — Correlation
/// SKetch Binary).
pub const MAGIC: [u8; 4] = *b"CSKB";

/// Newest shard format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Fixed shard header size: magic (4) + version (2) + reserved (2) +
/// record count (4).
const HEADER_LEN: usize = 12;

/// Seed of the per-record MurmurHash3 checksum.
const CHECKSUM_SEED: u64 = 0;

fn checksum(payload: &[u8]) -> u64 {
    murmur3_x64_128(payload, CHECKSUM_SEED).0
}

/// Encode sketches into shard-file bytes (header + checksummed records).
///
/// # Errors
///
/// [`SketchError::Corrupt`] if a sketch holds non-finite values or the
/// record count exceeds `u32`.
pub fn encode_shard(sketches: &[CorrelationSketch]) -> Result<Vec<u8>, SketchError> {
    let count = u32::try_from(sketches.len())
        .map_err(|_| SketchError::Corrupt("shard record count exceeds u32".into()))?;
    let mut out = Vec::with_capacity(HEADER_LEN + sketches.len() * 64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&count.to_le_bytes());
    let mut payload = Vec::new();
    for sketch in sketches {
        payload.clear();
        sketch.write_bytes(&mut payload)?;
        let len = u32::try_from(payload.len())
            .map_err(|_| SketchError::Corrupt("record payload exceeds u32 length".into()))?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
    }
    Ok(out)
}

/// Decode shard-file bytes, verifying magic, version, reserved bytes,
/// every record checksum (before parsing the payload), and exact
/// end-of-file.
///
/// # Errors
///
/// Typed [`SketchError`] variants: [`SketchError::BadMagic`],
/// [`SketchError::UnsupportedVersion`], [`SketchError::Truncated`],
/// [`SketchError::ChecksumMismatch`], or [`SketchError::Corrupt`] for
/// non-canonical header bytes, record-count mismatches, and payload
/// decode failures.
pub fn decode_shard(bytes: &[u8]) -> Result<Vec<CorrelationSketch>, SketchError> {
    if bytes.len() < HEADER_LEN {
        return Err(SketchError::Truncated {
            context: "shard header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(SketchError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != FORMAT_VERSION {
        return Err(SketchError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let reserved = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if reserved != 0 {
        return Err(SketchError::Corrupt(format!(
            "non-zero reserved header bytes {reserved:04x}"
        )));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;

    let mut sketches = Vec::with_capacity(count.min(bytes.len() / 12));
    let mut pos = HEADER_LEN;
    for record in 0..count as u64 {
        let available = bytes.len() - pos;
        if available < 4 {
            return Err(SketchError::Truncated {
                context: "record length prefix",
                needed: 4,
                available,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        pos += 4;
        let available = bytes.len() - pos;
        // Length is validated against the remaining bytes *before* any
        // slicing or allocation, so a corrupted length prefix fails as
        // Truncated instead of panicking or reserving gigabytes.
        let needed = len.checked_add(8).ok_or(SketchError::Truncated {
            context: "record payload + checksum",
            needed: usize::MAX,
            available,
        })?;
        if needed > available {
            return Err(SketchError::Truncated {
                context: "record payload + checksum",
                needed,
                available,
            });
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let stored = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let computed = checksum(payload);
        if stored != computed {
            return Err(SketchError::ChecksumMismatch {
                record,
                stored,
                computed,
            });
        }
        sketches.push(CorrelationSketch::from_bytes(payload)?);
    }
    if pos != bytes.len() {
        return Err(SketchError::Corrupt(format!(
            "{} trailing bytes after {count} records",
            bytes.len() - pos
        )));
    }
    Ok(sketches)
}

/// Write one shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] on
/// unencodable sketches.
pub fn write_shard(path: &Path, sketches: &[CorrelationSketch]) -> Result<(), StoreError> {
    let bytes = encode_shard(sketches)?;
    std::fs::write(path, bytes).map_err(StoreError::io(path))
}

/// Read and fully validate one shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] with
/// a typed corruption variant on invalid bytes (see [`decode_shard`]).
pub fn read_shard(path: &Path) -> Result<Vec<CorrelationSketch>, StoreError> {
    let bytes = std::fs::read(path).map_err(StoreError::io(path))?;
    decode_shard(&bytes).map_err(StoreError::Sketch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn sketches(n: usize) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(16));
        (0..n)
            .map(|t| {
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..100).map(|i| format!("key-{i}")).collect(),
                    (0..100).map(|i| (i + t) as f64).collect(),
                ))
            })
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sketches(5);
        assert_eq!(decode_shard(&encode_shard(&s).unwrap()).unwrap(), s);
        let empty: Vec<CorrelationSketch> = Vec::new();
        assert_eq!(decode_shard(&encode_shard(&empty).unwrap()).unwrap(), empty);
    }

    #[test]
    fn header_fields_are_checked() {
        let s = sketches(2);
        let good = encode_shard(&s).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_shard(&bad),
            Err(SketchError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_shard(&bad),
            Err(SketchError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));

        let mut bad = good.clone();
        bad[6] = 1;
        assert!(matches!(decode_shard(&bad), Err(SketchError::Corrupt(_))));

        let mut bad = good;
        bad[8] ^= 0x01; // record count off by one
        assert!(decode_shard(&bad).is_err());
    }

    #[test]
    fn checksum_catches_payload_tampering() {
        let s = sketches(3);
        let mut bytes = encode_shard(&s).unwrap();
        // Flip a byte well inside the first record's payload.
        bytes[HEADER_LEN + 10] ^= 0x40;
        assert!(matches!(
            decode_shard(&bytes),
            Err(SketchError::ChecksumMismatch { record: 0, .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cskb-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.cskb");
        let s = sketches(4);
        write_shard(&path, &s).unwrap();
        assert_eq!(read_shard(&path).unwrap(), s);
        let missing = dir.join("missing.cskb");
        assert!(matches!(read_shard(&missing), Err(StoreError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
