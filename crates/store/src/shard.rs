//! Single shard file (`.cskb`) encode/decode — base corpus shards and
//! append-only delta shards. See the crate docs for the byte-by-byte
//! layout.
//!
//! Both shard kinds share one container: a fixed 12-byte header followed
//! by `count` length-prefixed, checksummed records. They differ only in
//! the header's *kind* field and in what a record payload is:
//!
//! * **base** shards (`kind = 0`, [`KIND_BASE`]): every record payload is
//!   one [`CorrelationSketch`] in the [`correlation_sketches::binary`]
//!   layout — exactly the original `.cskb` format (the kind field
//!   occupies the bytes that were previously reserved-as-zero, so every
//!   pre-delta shard file is a valid base shard byte for byte).
//! * **delta** shards (`kind = 1`, [`KIND_DELTA`]): every record payload
//!   is a tagged [`DeltaRecord`] — one tag byte
//!   ([`correlation_sketches::DELTA_TAG_SKETCH`] = append,
//!   [`correlation_sketches::DELTA_TAG_TOMBSTONE`] = delete) followed by
//!   the sketch payload or the tombstone body (`u32` id length + UTF-8
//!   id). The per-record checksum covers the tag *and* the body, so a
//!   flipped tag byte is caught before any payload parse.
//!
//! A reader asking for one kind and finding the other gets a typed
//! [`SketchError::Corrupt`] naming both — a delta shard can never be
//! silently loaded as corpus content, and vice versa.

use std::path::Path;

use correlation_sketches::{CorrelationSketch, DeltaRecord, SketchError};
use sketch_hashing::murmur3::murmur3_x64_128;

use crate::error::StoreError;

/// First four bytes of every shard file (ASCII `"CSKB"` — Correlation
/// SKetch Binary).
pub const MAGIC: [u8; 4] = *b"CSKB";

/// Newest shard format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Header kind field of a base corpus shard (sketch records only).
pub const KIND_BASE: u16 = 0;

/// Header kind field of a delta shard (tagged append/tombstone records).
pub const KIND_DELTA: u16 = 1;

/// Fixed shard header size: magic (4) + version (2) + kind (2) +
/// record count (4).
const HEADER_LEN: usize = 12;

/// Seed of the per-record MurmurHash3 checksum.
const CHECKSUM_SEED: u64 = 0;

fn checksum(payload: &[u8]) -> u64 {
    murmur3_x64_128(payload, CHECKSUM_SEED).0
}

/// Widen a `u32` header/length field into a `usize`, failing as
/// [`SketchError::Corrupt`] on targets whose `usize` cannot hold it
/// (instead of silently wrapping the way a bare `as` cast would).
fn wire_len(field: u32, context: &str) -> Result<usize, SketchError> {
    usize::try_from(field)
        .map_err(|_| SketchError::Corrupt(format!("{context} {field} exceeds this target's usize")))
}

fn kind_name(kind: u16) -> &'static str {
    match kind {
        KIND_BASE => "base",
        KIND_DELTA => "delta",
        _ => "unknown",
    }
}

/// Frame already-encoded record payloads into shard-file bytes (header +
/// checksummed records) for the given shard kind.
fn encode_records(kind: u16, payloads: &[Vec<u8>]) -> Result<Vec<u8>, SketchError> {
    let count = u32::try_from(payloads.len())
        .map_err(|_| SketchError::Corrupt("shard record count exceeds u32".into()))?;
    let body: usize = payloads.iter().map(|p| p.len() + 12).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    for payload in payloads {
        let len = u32::try_from(payload.len())
            .map_err(|_| SketchError::Corrupt("record payload exceeds u32 length".into()))?;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&checksum(payload).to_le_bytes());
    }
    Ok(out)
}

/// Parse shard-file bytes of the expected kind into record payload
/// slices, verifying magic, version, kind, every record checksum (before
/// any payload parsing), and exact end-of-file.
fn decode_records(bytes: &[u8], expect_kind: u16) -> Result<Vec<&[u8]>, SketchError> {
    if bytes.len() < HEADER_LEN {
        return Err(SketchError::Truncated {
            context: "shard header",
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4 bytes");
    if magic != MAGIC {
        return Err(SketchError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != FORMAT_VERSION {
        return Err(SketchError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if kind != expect_kind {
        return Err(SketchError::Corrupt(format!(
            "{} shard (kind {kind}) where a {} shard (kind {expect_kind}) was expected",
            kind_name(kind),
            kind_name(expect_kind)
        )));
    }
    let count_field = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let count = wire_len(count_field, "record count")?;

    let mut payloads = Vec::with_capacity(count.min(bytes.len() / 12));
    let mut pos = HEADER_LEN;
    for record in 0..u64::from(count_field) {
        let available = bytes.len() - pos;
        if available < 4 {
            return Err(SketchError::Truncated {
                context: "record length prefix",
                needed: 4,
                available,
            });
        }
        let len = wire_len(
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")),
            "record length",
        )?;
        pos += 4;
        let available = bytes.len() - pos;
        // Length is validated against the remaining bytes *before* any
        // slicing or allocation, so a corrupted length prefix fails as
        // Truncated instead of panicking or reserving gigabytes.
        let needed = len.checked_add(8).ok_or(SketchError::Truncated {
            context: "record payload + checksum",
            needed: usize::MAX,
            available,
        })?;
        if needed > available {
            return Err(SketchError::Truncated {
                context: "record payload + checksum",
                needed,
                available,
            });
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let stored = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        let computed = checksum(payload);
        if stored != computed {
            return Err(SketchError::ChecksumMismatch {
                record,
                stored,
                computed,
            });
        }
        payloads.push(payload);
    }
    if pos != bytes.len() {
        return Err(SketchError::Corrupt(format!(
            "{} trailing bytes after {count} records",
            bytes.len() - pos
        )));
    }
    Ok(payloads)
}

/// Encode sketches into base-shard bytes (header + checksummed records).
///
/// # Errors
///
/// [`SketchError::Corrupt`] if a sketch holds non-finite values or the
/// record count exceeds `u32`.
pub fn encode_shard(sketches: &[CorrelationSketch]) -> Result<Vec<u8>, SketchError> {
    let payloads = sketches
        .iter()
        .map(CorrelationSketch::to_bytes)
        .collect::<Result<Vec<_>, _>>()?;
    encode_records(KIND_BASE, &payloads)
}

/// Decode base-shard bytes, verifying magic, version, kind, every record
/// checksum (before parsing the payload), and exact end-of-file.
///
/// # Errors
///
/// Typed [`SketchError`] variants: [`SketchError::BadMagic`],
/// [`SketchError::UnsupportedVersion`], [`SketchError::Truncated`],
/// [`SketchError::ChecksumMismatch`], or [`SketchError::Corrupt`] for a
/// non-base kind (including a delta shard where a base shard was
/// expected), record-count mismatches, and payload decode failures.
pub fn decode_shard(bytes: &[u8]) -> Result<Vec<CorrelationSketch>, SketchError> {
    decode_records(bytes, KIND_BASE)?
        .into_iter()
        .map(CorrelationSketch::from_bytes)
        .collect()
}

/// Encode delta records (appends and tombstones, in log order) into
/// delta-shard bytes.
///
/// # Errors
///
/// [`SketchError::Corrupt`] on unencodable sketches, empty tombstone
/// ids, or a record count exceeding `u32`.
pub fn encode_delta_shard(records: &[DeltaRecord]) -> Result<Vec<u8>, SketchError> {
    let payloads = records
        .iter()
        .map(|r| {
            let mut payload = Vec::new();
            r.write_bytes(&mut payload)?;
            Ok(payload)
        })
        .collect::<Result<Vec<_>, SketchError>>()?;
    encode_records(KIND_DELTA, &payloads)
}

/// Decode delta-shard bytes with the same validation discipline as
/// [`decode_shard`] (checksums verified before any payload parse), then
/// parse each tagged record.
///
/// # Errors
///
/// The same typed [`SketchError`] variants as [`decode_shard`], plus
/// [`SketchError::Corrupt`] for unknown record tags and malformed
/// tombstone bodies.
pub fn decode_delta_shard(bytes: &[u8]) -> Result<Vec<DeltaRecord>, SketchError> {
    decode_records(bytes, KIND_DELTA)?
        .into_iter()
        .map(DeltaRecord::from_bytes)
        .collect()
}

/// Write one base shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] on
/// unencodable sketches.
pub fn write_shard(path: &Path, sketches: &[CorrelationSketch]) -> Result<(), StoreError> {
    let bytes = encode_shard(sketches)?;
    std::fs::write(path, bytes).map_err(StoreError::io(path))
}

/// Read and fully validate one base shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] with
/// a typed corruption variant on invalid bytes (see [`decode_shard`]).
pub fn read_shard(path: &Path) -> Result<Vec<CorrelationSketch>, StoreError> {
    let bytes = std::fs::read(path).map_err(StoreError::io(path))?;
    decode_shard(&bytes).map_err(StoreError::Sketch)
}

/// Write one delta shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] on
/// unencodable records.
pub fn write_delta_shard(path: &Path, records: &[DeltaRecord]) -> Result<(), StoreError> {
    let bytes = encode_delta_shard(records)?;
    std::fs::write(path, bytes).map_err(StoreError::io(path))
}

/// Read and fully validate one delta shard file.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure, [`StoreError::Sketch`] with
/// a typed corruption variant on invalid bytes (see
/// [`decode_delta_shard`]).
pub fn read_delta_shard(path: &Path) -> Result<Vec<DeltaRecord>, StoreError> {
    let bytes = std::fs::read(path).map_err(StoreError::io(path))?;
    decode_delta_shard(&bytes).map_err(StoreError::Sketch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn sketches(n: usize) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(16));
        (0..n)
            .map(|t| {
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..100).map(|i| format!("key-{i}")).collect(),
                    (0..100).map(|i| (i + t) as f64).collect(),
                ))
            })
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sketches(5);
        assert_eq!(decode_shard(&encode_shard(&s).unwrap()).unwrap(), s);
        let empty: Vec<CorrelationSketch> = Vec::new();
        assert_eq!(decode_shard(&encode_shard(&empty).unwrap()).unwrap(), empty);
    }

    #[test]
    fn delta_encode_decode_roundtrip() {
        let s = sketches(3);
        let records = vec![
            DeltaRecord::Sketch(s[0].clone()),
            DeltaRecord::Tombstone("t9/k/v".into()),
            DeltaRecord::Sketch(s[2].clone()),
        ];
        let bytes = encode_delta_shard(&records).unwrap();
        assert_eq!(decode_delta_shard(&bytes).unwrap(), records);
        let empty: Vec<DeltaRecord> = Vec::new();
        assert_eq!(
            decode_delta_shard(&encode_delta_shard(&empty).unwrap()).unwrap(),
            empty
        );
    }

    #[test]
    fn shard_kinds_are_not_interchangeable() {
        let s = sketches(2);
        let base = encode_shard(&s).unwrap();
        let delta = encode_delta_shard(&[DeltaRecord::Sketch(s[0].clone())]).unwrap();
        let err = decode_delta_shard(&base).unwrap_err();
        assert!(
            matches!(&err, SketchError::Corrupt(msg) if msg.contains("base shard")),
            "{err}"
        );
        let err = decode_shard(&delta).unwrap_err();
        assert!(
            matches!(&err, SketchError::Corrupt(msg) if msg.contains("delta shard")),
            "{err}"
        );
    }

    #[test]
    fn header_fields_are_checked() {
        let s = sketches(2);
        let good = encode_shard(&s).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_shard(&bad),
            Err(SketchError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_shard(&bad),
            Err(SketchError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            })
        ));

        let mut bad = good.clone();
        bad[6] = 1; // base shard flipped to the delta kind
        assert!(matches!(decode_shard(&bad), Err(SketchError::Corrupt(_))));

        let mut bad = good.clone();
        bad[7] = 1; // unknown kind (256)
        assert!(matches!(decode_shard(&bad), Err(SketchError::Corrupt(_))));

        let mut bad = good;
        bad[8] ^= 0x01; // record count off by one
        assert!(decode_shard(&bad).is_err());
    }

    #[test]
    fn checksum_catches_payload_tampering() {
        let s = sketches(3);
        let mut bytes = encode_shard(&s).unwrap();
        // Flip a byte well inside the first record's payload.
        bytes[HEADER_LEN + 10] ^= 0x40;
        assert!(matches!(
            decode_shard(&bytes),
            Err(SketchError::ChecksumMismatch { record: 0, .. })
        ));
    }

    #[test]
    fn checksum_catches_delta_tag_tampering() {
        let s = sketches(1);
        let mut bytes = encode_delta_shard(&[DeltaRecord::Sketch(s[0].clone())]).unwrap();
        // The tag byte is the first payload byte (after the header and
        // the 4-byte record length). Flipping it must fail the checksum
        // before any mis-tagged parse is attempted.
        bytes[HEADER_LEN + 4] ^= 0x01;
        assert!(matches!(
            decode_delta_shard(&bytes),
            Err(SketchError::ChecksumMismatch { record: 0, .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cskb-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.cskb");
        let s = sketches(4);
        write_shard(&path, &s).unwrap();
        assert_eq!(read_shard(&path).unwrap(), s);
        let delta_path = dir.join("d.cskb");
        let records = vec![
            DeltaRecord::Tombstone(s[0].id().to_string()),
            DeltaRecord::Sketch(s[1].clone()),
        ];
        write_delta_shard(&delta_path, &records).unwrap();
        assert_eq!(read_delta_shard(&delta_path).unwrap(), records);
        let missing = dir.join("missing.cskb");
        assert!(matches!(read_shard(&missing), Err(StoreError::Io { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
