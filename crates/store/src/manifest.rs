//! The corpus manifest (`manifest.cskm`): a small line-oriented text file
//! naming every shard and its record count, in corpus order. See the
//! crate docs for the exact format.

use std::path::Path;

use correlation_sketches::SketchError;

use crate::error::StoreError;

/// File name of the manifest inside a corpus directory.
pub const MANIFEST_NAME: &str = "manifest.cskm";

/// Manifest header tag (first line is `cskb-manifest <version>`).
const HEADER_TAG: &str = "cskb-manifest";

/// One shard as listed in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Records the shard must contain (cross-checked against the shard
    /// header at read time).
    pub count: u64,
}

/// Parsed corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Total records across all shards.
    pub total: u64,
    /// Shards in corpus order.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// Render to the text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + 32 * self.shards.len());
        out.push_str(HEADER_TAG);
        out.push_str(" 1\nsketches ");
        out.push_str(&self.total.to_string());
        out.push('\n');
        for s in &self.shards {
            out.push_str("shard ");
            out.push_str(&s.file);
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the text format, validating structure and totals.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on malformed lines,
    /// [`SketchError::UnsupportedVersion`] on a newer manifest version,
    /// [`SketchError::DuplicateId`] when two lines name the same shard
    /// file.
    pub fn parse(text: &str) -> Result<Self, SketchError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| SketchError::Corrupt("empty manifest".into()))?;
        let version = header
            .strip_prefix(HEADER_TAG)
            .map(str::trim)
            .and_then(|v| v.parse::<u16>().ok())
            .ok_or_else(|| SketchError::Corrupt(format!("bad manifest header '{header}'")))?;
        if version != 1 {
            return Err(SketchError::UnsupportedVersion {
                found: version,
                supported: 1,
            });
        }
        let totals = lines
            .next()
            .ok_or_else(|| SketchError::Corrupt("manifest missing 'sketches' line".into()))?;
        let total: u64 = totals
            .strip_prefix("sketches ")
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| SketchError::Corrupt(format!("bad manifest totals line '{totals}'")))?;

        let mut shards = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line.strip_prefix("shard ").ok_or_else(|| {
                SketchError::Corrupt(format!("unexpected manifest line '{line}'"))
            })?;
            let (file, count) = rest
                .rsplit_once(' ')
                .ok_or_else(|| SketchError::Corrupt(format!("bad manifest shard line '{line}'")))?;
            let count: u64 = count
                .parse()
                .map_err(|e| SketchError::Corrupt(format!("bad shard count in '{line}': {e}")))?;
            if file.is_empty() || file.contains('/') || file.contains('\\') {
                return Err(SketchError::Corrupt(format!(
                    "shard file name '{file}' must be a bare file name"
                )));
            }
            if shards.iter().any(|s: &ShardMeta| s.file == file) {
                return Err(SketchError::Corrupt(format!(
                    "shard file '{file}' listed twice in manifest"
                )));
            }
            shards.push(ShardMeta {
                file: file.to_string(),
                count,
            });
        }
        let sum: u64 = shards.iter().map(|s| s.count).sum();
        if sum != total {
            return Err(SketchError::Corrupt(format!(
                "manifest totals disagree: header says {total} sketches, shard lines sum to {sum}"
            )));
        }
        Ok(Self { total, shards })
    }

    /// Load `manifest.cskm` from a corpus directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when unreadable, [`StoreError::Sketch`] when
    /// malformed.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path).map_err(StoreError::io(path))?;
        Self::parse(&text).map_err(StoreError::Sketch)
    }

    /// Write `manifest.cskm` into a corpus directory, atomically: the
    /// text lands in a temp file first and is renamed into place, so a
    /// crash mid-save can never leave a half-written (hence unreadable)
    /// manifest over a good store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        std::fs::write(&tmp, self.to_text()).map_err(StoreError::io(&tmp))?;
        let path = dir.join(MANIFEST_NAME);
        std::fs::rename(&tmp, &path).map_err(StoreError::io(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            total: 7,
            shards: vec![
                ShardMeta {
                    file: "shard-0000.cskb".into(),
                    count: 4,
                },
                ShardMeta {
                    file: "shard-0001.cskb".into(),
                    count: 3,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
        let empty = Manifest {
            total: 0,
            shards: vec![],
        };
        assert_eq!(Manifest::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn malformed_manifests_are_typed() {
        assert!(matches!(Manifest::parse(""), Err(SketchError::Corrupt(_))));
        assert!(matches!(
            Manifest::parse("cskb-manifest 2\nsketches 0\n"),
            Err(SketchError::UnsupportedVersion { found: 2, .. })
        ));
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches nope\n"),
            Err(SketchError::Corrupt(_))
        ));
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 0\nbogus line\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Totals must agree with the shard lines.
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 5\nshard a.cskb 4\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Duplicate shard files are rejected (as manifest corruption —
        // DuplicateId is reserved for sketch ids).
        let err = Manifest::parse("cskb-manifest 1\nsketches 4\nshard a.cskb 2\nshard a.cskb 2\n")
            .unwrap_err();
        assert!(
            matches!(&err, SketchError::Corrupt(msg) if msg.contains("listed twice")),
            "{err}"
        );
        // Path traversal in shard names is rejected.
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 2\nshard ../evil.cskb 2\n"),
            Err(SketchError::Corrupt(_))
        ));
    }
}
