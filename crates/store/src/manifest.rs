//! The corpus manifest (`manifest.cskm`): a small line-oriented text file
//! naming every shard and its record count, in corpus order. Version 2
//! adds generation-stamped delta shards on top of the base shard table.
//! See the crate docs for the exact format.

use std::path::Path;

use correlation_sketches::SketchError;

use crate::error::StoreError;

/// File name of the manifest inside a corpus directory.
pub const MANIFEST_NAME: &str = "manifest.cskm";

/// Manifest header tag (first line is `cskb-manifest <version>`).
const HEADER_TAG: &str = "cskb-manifest";

/// Newest manifest version this build writes and reads. Version 1 (the
/// pre-delta format) is still written for stores that have never been
/// mutated, and always read.
pub const MANIFEST_VERSION: u16 = 2;

/// One base shard as listed in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMeta {
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Records the shard must contain (cross-checked against the shard
    /// header at read time).
    pub count: u64,
}

/// One delta shard as listed in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaMeta {
    /// Delta shard file name, relative to the corpus directory.
    pub file: String,
    /// Records (appends + tombstones) the shard must contain.
    pub records: u64,
    /// The generation this delta produced. Strictly increasing across
    /// the delta list, always greater than [`Manifest::base_generation`].
    pub generation: u64,
}

/// Parsed corpus manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Total *live* records after replaying all deltas over the base
    /// shards (cross-checked against the replay at read time).
    pub total: u64,
    /// Latest generation in the store: `base_generation` when no deltas
    /// are pending, otherwise the last delta's generation. Every mutation
    /// (append, remove, compact) advances it by one; it never goes
    /// backwards for the lifetime of a store directory.
    pub generation: u64,
    /// Generation at which the base shards were last rewritten: `0` for
    /// a fresh pack, the compacting generation after a compact.
    pub base_generation: u64,
    /// Base shards in corpus order.
    pub shards: Vec<ShardMeta>,
    /// Delta shards in generation order (`base_generation` excluded,
    /// strictly increasing, ending at `generation`).
    pub deltas: Vec<DeltaMeta>,
}

impl Manifest {
    /// A generation-zero manifest over base shards only — what a fresh
    /// [`crate::pack_corpus`] writes.
    #[must_use]
    pub fn base(total: u64, shards: Vec<ShardMeta>) -> Self {
        Self {
            total,
            generation: 0,
            base_generation: 0,
            shards,
            deltas: Vec::new(),
        }
    }

    /// Render to the text format. A never-mutated store (generation 0, no
    /// deltas) renders as version 1, byte-identical to the pre-delta
    /// format; anything else renders as version 2.
    #[must_use]
    pub fn to_text(&self) -> String {
        let v2 = self.generation != 0 || self.base_generation != 0 || !self.deltas.is_empty();
        let mut out = String::with_capacity(96 + 40 * (self.shards.len() + self.deltas.len()));
        out.push_str(HEADER_TAG);
        if v2 {
            out.push_str(" 2\ngeneration ");
            out.push_str(&self.generation.to_string());
            out.push_str("\nbase ");
            out.push_str(&self.base_generation.to_string());
            out.push_str("\nsketches ");
        } else {
            out.push_str(" 1\nsketches ");
        }
        out.push_str(&self.total.to_string());
        out.push('\n');
        for s in &self.shards {
            out.push_str("shard ");
            out.push_str(&s.file);
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        for d in &self.deltas {
            out.push_str("delta ");
            out.push_str(&d.file);
            out.push(' ');
            out.push_str(&d.records.to_string());
            out.push(' ');
            out.push_str(&d.generation.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the text format (version 1 or 2), validating structure,
    /// totals, and generation progression.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on malformed lines,
    /// [`SketchError::UnsupportedVersion`] on a newer manifest version,
    /// [`SketchError::StaleGeneration`] when delta generations repeat,
    /// regress, or fail to reach past the base generation.
    pub fn parse(text: &str) -> Result<Self, SketchError> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or_else(|| SketchError::Corrupt("empty manifest".into()))?;
        let version = header
            .strip_prefix(HEADER_TAG)
            .map(str::trim)
            .and_then(|v| v.parse::<u16>().ok())
            .ok_or_else(|| SketchError::Corrupt(format!("bad manifest header '{header}'")))?;
        if !(1..=MANIFEST_VERSION).contains(&version) {
            return Err(SketchError::UnsupportedVersion {
                found: version,
                supported: MANIFEST_VERSION,
            });
        }

        let mut field = |name: &'static str| -> Result<u64, SketchError> {
            let line = lines
                .next()
                .ok_or_else(|| SketchError::Corrupt(format!("manifest missing '{name}' line")))?;
            line.strip_prefix(name)
                .and_then(|v| v.trim().parse().ok())
                .ok_or_else(|| SketchError::Corrupt(format!("bad manifest {name} line '{line}'")))
        };
        let (generation, base_generation) = if version >= 2 {
            (field("generation ")?, field("base ")?)
        } else {
            (0, 0)
        };
        let total = field("sketches ")?;
        if base_generation > generation {
            return Err(SketchError::Corrupt(format!(
                "base generation {base_generation} is beyond the store generation {generation}"
            )));
        }

        let check_file = |file: &str| -> Result<(), SketchError> {
            if file.is_empty() || file.contains('/') || file.contains('\\') {
                return Err(SketchError::Corrupt(format!(
                    "shard file name '{file}' must be a bare file name"
                )));
            }
            Ok(())
        };

        let mut shards: Vec<ShardMeta> = Vec::new();
        let mut deltas: Vec<DeltaMeta> = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("shard ") {
                if !deltas.is_empty() {
                    return Err(SketchError::Corrupt(format!(
                        "base shard line '{line}' after delta lines"
                    )));
                }
                let (file, count) = rest.rsplit_once(' ').ok_or_else(|| {
                    SketchError::Corrupt(format!("bad manifest shard line '{line}'"))
                })?;
                let count: u64 = count.parse().map_err(|e| {
                    SketchError::Corrupt(format!("bad shard count in '{line}': {e}"))
                })?;
                check_file(file)?;
                shards.push(ShardMeta {
                    file: file.to_string(),
                    count,
                });
            } else if let Some(rest) = line.strip_prefix("delta ") {
                if version < 2 {
                    return Err(SketchError::Corrupt(format!(
                        "delta line '{line}' in a version-1 manifest"
                    )));
                }
                let mut parts = rest.split(' ');
                let (file, records, gen) = (|| {
                    let file = parts.next()?;
                    let records = parts.next()?.parse::<u64>().ok()?;
                    let gen = parts.next()?.parse::<u64>().ok()?;
                    parts.next().is_none().then_some((file, records, gen))
                })()
                .ok_or_else(|| SketchError::Corrupt(format!("bad manifest delta line '{line}'")))?;
                check_file(file)?;
                let expected = deltas
                    .last()
                    .map_or(base_generation + 1, |d: &DeltaMeta| d.generation + 1);
                if gen < expected {
                    return Err(SketchError::StaleGeneration {
                        found: gen,
                        expected,
                    });
                }
                if gen > generation {
                    return Err(SketchError::Corrupt(format!(
                        "delta generation {gen} is beyond the store generation {generation}"
                    )));
                }
                deltas.push(DeltaMeta {
                    file: file.to_string(),
                    records,
                    generation: gen,
                });
            } else {
                return Err(SketchError::Corrupt(format!(
                    "unexpected manifest line '{line}'"
                )));
            }
        }

        let mut seen: Vec<&str> = Vec::with_capacity(shards.len() + deltas.len());
        for file in shards
            .iter()
            .map(|s| s.file.as_str())
            .chain(deltas.iter().map(|d| d.file.as_str()))
        {
            if seen.contains(&file) {
                return Err(SketchError::Corrupt(format!(
                    "shard file '{file}' listed twice in manifest"
                )));
            }
            seen.push(file);
        }

        let latest = deltas.last().map_or(base_generation, |d| d.generation);
        if latest != generation {
            return Err(SketchError::StaleGeneration {
                found: latest,
                expected: generation,
            });
        }
        if deltas.is_empty() {
            // Without deltas the live total is exactly the base shard sum.
            let sum: u64 = shards.iter().map(|s| s.count).sum();
            if sum != total {
                return Err(SketchError::Corrupt(format!(
                    "manifest totals disagree: header says {total} sketches, \
                     shard lines sum to {sum}"
                )));
            }
        }
        Ok(Self {
            total,
            generation,
            base_generation,
            shards,
            deltas,
        })
    }

    /// Load `manifest.cskm` from a corpus directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::MissingManifest`] when the directory holds no
    /// manifest at all (missing, empty, or not a store),
    /// [`StoreError::Io`] when unreadable for environmental reasons,
    /// [`StoreError::Sketch`] when malformed.
    pub fn load(dir: &Path) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                StoreError::MissingManifest {
                    dir: dir.to_path_buf(),
                }
            } else {
                StoreError::io(path)(e)
            }
        })?;
        Self::parse(&text).map_err(StoreError::Sketch)
    }

    /// Write `manifest.cskm` into a corpus directory, atomically: the
    /// text lands in a temp file first and is renamed into place, so a
    /// crash mid-save can never leave a half-written (hence unreadable)
    /// manifest over a good store.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<(), StoreError> {
        let tmp = dir.join(format!("{MANIFEST_NAME}.tmp"));
        std::fs::write(&tmp, self.to_text()).map_err(StoreError::io(&tmp))?;
        let path = dir.join(MANIFEST_NAME);
        std::fs::rename(&tmp, &path).map_err(StoreError::io(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::base(
            7,
            vec![
                ShardMeta {
                    file: "shard-0000.cskb".into(),
                    count: 4,
                },
                ShardMeta {
                    file: "shard-0001.cskb".into(),
                    count: 3,
                },
            ],
        )
    }

    fn sample_v2() -> Manifest {
        Manifest {
            total: 8,
            generation: 3,
            base_generation: 1,
            shards: vec![ShardMeta {
                file: "shard-0000.cskb".into(),
                count: 6,
            }],
            deltas: vec![
                DeltaMeta {
                    file: "delta-000002.cskb".into(),
                    records: 3,
                    generation: 2,
                },
                DeltaMeta {
                    file: "delta-000003.cskb".into(),
                    records: 1,
                    generation: 3,
                },
            ],
        }
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        assert!(m.to_text().starts_with("cskb-manifest 1\n"));
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
        let empty = Manifest::base(0, vec![]);
        assert_eq!(Manifest::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn v2_text_roundtrip() {
        let m = sample_v2();
        assert!(m.to_text().starts_with("cskb-manifest 2\n"));
        assert_eq!(Manifest::parse(&m.to_text()).unwrap(), m);
        // A compacted store: no deltas but a non-zero generation.
        let compacted = Manifest {
            total: 7,
            generation: 4,
            base_generation: 4,
            deltas: vec![],
            ..sample()
        };
        assert_eq!(Manifest::parse(&compacted.to_text()).unwrap(), compacted);
    }

    #[test]
    fn malformed_manifests_are_typed() {
        assert!(matches!(Manifest::parse(""), Err(SketchError::Corrupt(_))));
        assert!(matches!(
            Manifest::parse("cskb-manifest 3\nsketches 0\n"),
            Err(SketchError::UnsupportedVersion { found: 3, .. })
        ));
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches nope\n"),
            Err(SketchError::Corrupt(_))
        ));
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 0\nbogus line\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Totals must agree with the shard lines.
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 5\nshard a.cskb 4\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Delta lines belong to version 2.
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 0\ndelta d.cskb 1 1\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Duplicate shard files are rejected (as manifest corruption —
        // DuplicateId is reserved for sketch ids).
        let err = Manifest::parse("cskb-manifest 1\nsketches 4\nshard a.cskb 2\nshard a.cskb 2\n")
            .unwrap_err();
        assert!(
            matches!(&err, SketchError::Corrupt(msg) if msg.contains("listed twice")),
            "{err}"
        );
        // Path traversal in shard names is rejected.
        assert!(matches!(
            Manifest::parse("cskb-manifest 1\nsketches 2\nshard ../evil.cskb 2\n"),
            Err(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn generation_progression_is_enforced() {
        let head = "cskb-manifest 2\ngeneration 2\nbase 0\nsketches 0\n";
        // Duplicate generation.
        let err =
            Manifest::parse(&format!("{head}delta a.cskb 1 1\ndelta b.cskb 1 1\n")).unwrap_err();
        assert_eq!(
            err,
            SketchError::StaleGeneration {
                found: 1,
                expected: 2
            }
        );
        // Regressing generation.
        let text = "cskb-manifest 2\ngeneration 3\nbase 0\nsketches 0\n\
                    delta a.cskb 1 3\ndelta b.cskb 1 2\n";
        assert!(matches!(
            Manifest::parse(text),
            Err(SketchError::StaleGeneration { .. })
        ));
        // A delta at or below the base generation is stale.
        let text = "cskb-manifest 2\ngeneration 2\nbase 2\nsketches 0\ndelta a.cskb 1 2\n";
        assert!(matches!(
            Manifest::parse(text),
            Err(SketchError::StaleGeneration { .. })
        ));
        // The last delta must reach the store generation.
        let err = Manifest::parse(&format!("{head}delta a.cskb 1 1\n")).unwrap_err();
        assert_eq!(
            err,
            SketchError::StaleGeneration {
                found: 1,
                expected: 2
            }
        );
        // Base generation cannot exceed the store generation.
        assert!(matches!(
            Manifest::parse("cskb-manifest 2\ngeneration 1\nbase 2\nsketches 0\n"),
            Err(SketchError::Corrupt(_))
        ));
        // Base shard lines cannot follow delta lines.
        let text = "cskb-manifest 2\ngeneration 1\nbase 0\nsketches 0\n\
                    delta a.cskb 1 1\nshard b.cskb 0\n";
        assert!(matches!(
            Manifest::parse(text),
            Err(SketchError::Corrupt(_))
        ));
    }
}
