//! **sketch-store** — the sharded on-disk binary corpus store, with
//! append-only delta shards, tombstone deletes, and offline compaction.
//!
//! The paper's Section 5 experiments assume a pre-built corpus of
//! sketches that can be loaded and queried at scale ("synopses can be
//! pre-computed and indexed"). Newline-delimited JSON (the
//! `correlation_sketches::persist` format) is great for diffing and
//! appending but slow to parse for multi-thousand-sketch corpora and
//! impossible to shard; this crate stores the same sketches as multiple
//! compact binary shard files plus a small manifest, written and read in
//! parallel with the workspace's deterministic-chunking pattern. On top
//! of the static base shards it supports *mutation without re-packing*:
//! [`append_corpus`] and [`remove_from_corpus`] write small delta shards,
//! and [`compact_corpus`] folds them back into base shards offline.
//!
//! # Corpus layout on disk
//!
//! ```text
//! <corpus-dir>/
//!   manifest.cskm        text manifest: version, generations, totals,
//!                        shard + delta tables
//!   shard-0000.cskb      base shard files, contiguous slices of the
//!   shard-0001.cskb      packed corpus in input order
//!   …
//!   delta-000001.cskb    delta shard files, one per mutation, in
//!   delta-000002.cskb    generation order
//!   …
//! ```
//!
//! # Shard file format (`.cskb`), byte by byte
//!
//! All integers are little-endian. A shard is a fixed 12-byte header
//! followed by `count` length-prefixed, checksummed records:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `43 53 4B 42` (ASCII `"CSKB"`) |
//! | 4      | 2    | format version (`u16`, currently `1`) |
//! | 6      | 2    | shard kind: `0` = base, `1` = delta |
//! | 8      | 4    | record count (`u32`) |
//! | 12     | …    | `count` records, back to back |
//!
//! Each record is:
//!
//! | offset | size  | field |
//! |--------|-------|-------|
//! | 0      | 4     | payload length `L` (`u32`) |
//! | 4      | `L`   | record payload (see below) |
//! | 4 + L  | 8     | checksum (`u64`): low word of MurmurHash3 x64-128 of the payload, seed 0 |
//!
//! In a **base** shard every payload is one sketch in the
//! [`correlation_sketches::binary`] layout — the kind field occupies the
//! bytes the pre-delta format reserved as zero, so every pre-delta shard
//! file is a valid base shard byte for byte. In a **delta** shard every
//! payload opens with a tag byte:
//!
//! | tag | record | body |
//! |-----|--------|------|
//! | `0` | append | one sketch payload ([`correlation_sketches::binary`]) |
//! | `1` | tombstone | `u32` id length + sketch id (UTF-8) |
//!
//! The checksum covers the tag *and* the body, so a flipped tag can
//! never turn an append into a delete (or vice versa) undetected. The
//! file must end exactly after the last record — trailing bytes are
//! corruption. Readers verify, in order: magic, version, kind,
//! per-record length bounds, per-record checksum (before any payload
//! parsing), payload decode, and finally exact end-of-file. Every
//! failure is a typed [`SketchError`] wrapped in [`StoreError`] — no
//! panics, and never a silent partial load.
//!
//! # Manifest format (`manifest.cskm`)
//!
//! A small line-oriented text file (text, so a human can inspect a corpus
//! with `cat`). A never-mutated store writes version 1, byte-identical to
//! the pre-delta format:
//!
//! ```text
//! cskb-manifest 1
//! sketches <total-record-count>
//! shard <file-name> <record-count>
//! …one line per base shard, in corpus order…
//! ```
//!
//! Once a store has been mutated it writes version 2:
//!
//! ```text
//! cskb-manifest 2
//! generation <latest-generation>
//! base <generation-of-the-base-shards>
//! sketches <live-record-count>
//! shard <file-name> <record-count>
//! delta <file-name> <record-count> <generation>
//! …delta lines in strictly increasing generation order…
//! ```
//!
//! # Generations
//!
//! Every mutation advances the store generation by one: a fresh pack is
//! generation 0, each append/remove stamps its delta shard with the new
//! generation, and a compact rewrites the base at generation `G + 1`
//! (folding all deltas in) with no delta lines left. Readers enforce the
//! progression — delta generations must strictly increase from just past
//! the base generation up to the store generation, else the typed
//! [`SketchError::StaleGeneration`] — and incremental consumers
//! ([`read_deltas_since`], `sketch-index`'s `refresh_from_store`) use the
//! same error to learn that the base was compacted underneath them and a
//! rebuild is required.
//!
//! # Determinism
//!
//! [`pack_corpus`] splits the input into contiguous chunks, so shard `i`
//! holds a deterministic slice of the input, and reading replays deltas
//! serially in generation order; [`read_corpus`]`(dir, threads)` returns
//! the *live view* — base survivors in pack order, then surviving
//! appends in append order — bit-identically for every thread count, and
//! [`compact_corpus`] preserves it exactly. This is the order contract
//! `sketch-index` builds doc ids on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod error;
pub mod info;
pub mod manifest;
pub mod partition;
pub mod shard;

pub use corpus::{
    append_corpus, compact_corpus, pack_corpus, read_corpus, read_corpus_with_manifest,
    read_deltas_since, remove_from_corpus, PackOptions,
};
pub use correlation_sketches::{DeltaRecord, SketchError};
pub use error::StoreError;
pub use info::{stat_corpus, DeltaInfo, ShardInfo, StoreInfo};
pub use manifest::{DeltaMeta, Manifest, ShardMeta, MANIFEST_NAME, MANIFEST_VERSION};
pub use partition::{
    read_partition, shard_corpus, worker_dir_name, PartitionManifest, PartitionShard,
    PARTITION_NAME, PARTITION_VERSION,
};
pub use shard::{
    read_delta_shard, read_shard, write_delta_shard, write_shard, FORMAT_VERSION, KIND_BASE,
    KIND_DELTA, MAGIC,
};
