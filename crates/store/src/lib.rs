//! **sketch-store** — the sharded on-disk binary corpus store.
//!
//! The paper's Section 5 experiments assume a pre-built corpus of
//! sketches that can be loaded and queried at scale ("synopses can be
//! pre-computed and indexed"). Newline-delimited JSON (the
//! `correlation_sketches::persist` format) is great for diffing and
//! appending but slow to parse for multi-thousand-sketch corpora and
//! impossible to shard; this crate stores the same sketches as multiple
//! compact binary shard files plus a small manifest, written and read in
//! parallel with the workspace's deterministic-chunking pattern.
//!
//! # Corpus layout on disk
//!
//! ```text
//! <corpus-dir>/
//!   manifest.cskm        text manifest: version, totals, shard table
//!   shard-0000.cskb      binary shard files, contiguous slices of the
//!   shard-0001.cskb      corpus in input order
//!   …
//! ```
//!
//! # Shard file format (`.cskb`), byte by byte
//!
//! All integers are little-endian. A shard is a fixed 12-byte header
//! followed by `count` length-prefixed, checksummed records:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `43 53 4B 42` (ASCII `"CSKB"`) |
//! | 4      | 2    | format version (`u16`, currently `1`) |
//! | 6      | 2    | reserved, must be `0` |
//! | 8      | 4    | record count (`u32`) |
//! | 12     | …    | `count` records, back to back |
//!
//! Each record is:
//!
//! | offset | size  | field |
//! |--------|-------|-------|
//! | 0      | 4     | payload length `L` (`u32`) |
//! | 4      | `L`   | sketch payload (see [`correlation_sketches::binary`]) |
//! | 4 + L  | 8     | checksum (`u64`): low word of MurmurHash3 x64-128 of the payload, seed 0 |
//!
//! The file must end exactly after the last record — trailing bytes are
//! corruption. Readers verify, in order: magic, version, reserved bytes,
//! per-record length bounds, per-record checksum (before any payload
//! parsing), payload decode, and finally exact end-of-file. Every failure
//! is a typed [`SketchError`] wrapped in [`StoreError`] — no panics, and
//! never a silent partial load.
//!
//! # Manifest format (`manifest.cskm`)
//!
//! A small line-oriented text file (text, so a human can inspect a corpus
//! with `cat`):
//!
//! ```text
//! cskb-manifest 1
//! sketches <total-record-count>
//! shard <file-name> <record-count>
//! …one line per shard, in corpus order…
//! ```
//!
//! Readers cross-check every shard's header count against its manifest
//! line and reject duplicate sketch ids across the whole corpus, so a
//! mis-assembled corpus (a shard swapped in from another pack run) fails
//! loudly instead of silently double-counting columns.
//!
//! # Determinism
//!
//! [`pack_corpus`] splits the input into contiguous chunks, so shard `i`
//! holds a deterministic slice of the input and
//! [`read_corpus`]`(dir, threads)` returns the sketches in exactly the
//! original input order for every thread count — the same bit-identical
//! fan-out contract as `correlation_sketches::build_sketches_parallel`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod error;
pub mod manifest;
pub mod shard;

pub use corpus::{pack_corpus, read_corpus, read_corpus_with_manifest, PackOptions};
pub use correlation_sketches::SketchError;
pub use error::StoreError;
pub use manifest::{Manifest, ShardMeta, MANIFEST_NAME};
pub use shard::{read_shard, write_shard, FORMAT_VERSION, MAGIC};
