//! Corpus partitioning for scatter-gather serving: split one packed
//! corpus into `workers` contiguous, independently servable worker
//! stores, recorded by a small text **partition manifest**
//! (`partition.cskp`).
//!
//! # Determinism and the doc-id contract
//!
//! [`shard_corpus`] reads the source store's *live view* (base
//! survivors in pack order, then surviving appends — the exact order
//! `sketch-index` builds doc ids on) and splits it into `workers`
//! contiguous chunks of `ceil(total / workers)` sketches (trailing
//! workers may be empty). Worker `i` is packed as a fresh
//! generation-0 store in `<out>/worker-{i:04}/`. Because the chunks
//! are contiguous in live-view order, the union of the workers' live
//! views *in worker order* is byte-for-byte the source live view —
//! which is what lets a coordinator map a worker-local doc id to the
//! union doc id by adding the prefix sum of the preceding workers'
//! live counts, and lets the shard-merge oracle prove the merged
//! answer bit-identical to a single-process query over the source.
//!
//! # Partition manifest format (`partition.cskp`)
//!
//! Line-oriented text, like `manifest.cskm`:
//!
//! ```text
//! cskb-partition 1
//! workers <N>
//! source-generation <G>
//! sketches <total>
//! shard <dir-name> <live-count>
//! …one line per worker, in worker order…
//! ```
//!
//! `source-generation` records the source store's generation at split
//! time — provenance only; each worker store starts an independent
//! generation history at 0 and mutates on its own.

use std::path::Path;

use correlation_sketches::SketchError;

use crate::corpus::{pack_corpus, read_corpus_with_manifest, PackOptions};
use crate::error::StoreError;

/// File name of the partition manifest inside a partition directory.
pub const PARTITION_NAME: &str = "partition.cskp";

/// Partition manifest header tag (first line is `cskb-partition 1`).
const PARTITION_TAG: &str = "cskb-partition";

/// Newest partition manifest version this build writes and reads.
pub const PARTITION_VERSION: u16 = 1;

/// One worker store as listed in the partition manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionShard {
    /// Worker store directory name, relative to the partition
    /// directory.
    pub dir: String,
    /// Live sketches packed into this worker at split time.
    pub count: u64,
}

/// Parsed partition manifest: how a corpus was split across workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionManifest {
    /// Number of worker stores (equals `shards.len()`).
    pub workers: usize,
    /// The source store's generation when the split was taken.
    pub source_generation: u64,
    /// Total live sketches across all workers at split time.
    pub total: u64,
    /// Worker stores in worker (= live-view) order.
    pub shards: Vec<PartitionShard>,
}

impl PartitionManifest {
    /// Render to the text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(96 + 32 * self.shards.len());
        out.push_str(PARTITION_TAG);
        out.push(' ');
        out.push_str(&PARTITION_VERSION.to_string());
        out.push_str("\nworkers ");
        out.push_str(&self.workers.to_string());
        out.push_str("\nsource-generation ");
        out.push_str(&self.source_generation.to_string());
        out.push_str("\nsketches ");
        out.push_str(&self.total.to_string());
        out.push('\n');
        for s in &self.shards {
            out.push_str("shard ");
            out.push_str(&s.dir);
            out.push(' ');
            out.push_str(&s.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the text format, validating the header, field syntax, the
    /// worker count against the shard table, and the total against the
    /// per-shard counts.
    ///
    /// # Errors
    ///
    /// [`SketchError::Corrupt`] on any malformed or inconsistent line,
    /// [`SketchError::UnsupportedVersion`] on a newer version.
    pub fn parse(text: &str) -> Result<Self, SketchError> {
        let corrupt = |reason: &str| SketchError::Corrupt(format!("partition manifest: {reason}"));
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty file"))?;
        let version = header
            .strip_prefix(PARTITION_TAG)
            .map(str::trim)
            .and_then(|v| v.parse::<u16>().ok())
            .ok_or_else(|| corrupt("bad header line"))?;
        if version != PARTITION_VERSION {
            return Err(SketchError::UnsupportedVersion {
                found: version,
                supported: PARTITION_VERSION,
            });
        }
        let mut field = |name: &str| -> Result<u64, SketchError> {
            lines
                .next()
                .and_then(|l| l.strip_prefix(name))
                .and_then(|v| v.strip_prefix(' '))
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| corrupt(&format!("missing or malformed `{name}` line")))
        };
        let workers = field("workers")?;
        let source_generation = field("source-generation")?;
        let total = field("sketches")?;
        let mut shards = Vec::new();
        for line in lines {
            let rest = line
                .strip_prefix("shard ")
                .ok_or_else(|| corrupt(&format!("unexpected line `{line}`")))?;
            let (dir, count) = rest
                .rsplit_once(' ')
                .ok_or_else(|| corrupt(&format!("malformed shard line `{line}`")))?;
            let count = count
                .parse::<u64>()
                .map_err(|_| corrupt(&format!("bad shard count in `{line}`")))?;
            if dir.is_empty() {
                return Err(corrupt(&format!("empty shard dir in `{line}`")));
            }
            shards.push(PartitionShard {
                dir: dir.to_string(),
                count,
            });
        }
        if shards.len() as u64 != workers {
            return Err(corrupt(&format!(
                "workers says {workers} but {} shard lines follow",
                shards.len()
            )));
        }
        let sum: u64 = shards.iter().map(|s| s.count).sum();
        if sum != total {
            return Err(corrupt(&format!(
                "sketches says {total} but shard counts sum to {sum}"
            )));
        }
        Ok(Self {
            workers: shards.len(),
            source_generation,
            total,
            shards,
        })
    }
}

/// Directory name of worker `i` inside a partition directory.
#[must_use]
pub fn worker_dir_name(i: usize) -> String {
    format!("worker-{i:04}")
}

/// Split the packed corpus at `src` into `workers` contiguous worker
/// stores under `out` and write the partition manifest. Worker `i`
/// gets live-view slice `[i·c, (i+1)·c)` with `c = ceil(total /
/// workers)`; trailing workers may be empty (an empty store is still a
/// valid, servable pack). Each worker store is packed with `threads`
/// reader/writer threads (the workspace's deterministic fan-out — the
/// resulting bytes do not depend on `threads`).
///
/// # Errors
///
/// Any [`StoreError`] from reading the source or packing a worker.
///
/// # Panics
///
/// Panics if `workers` is zero (front ends validate user input).
pub fn shard_corpus(
    src: &Path,
    out: &Path,
    workers: usize,
    threads: usize,
) -> Result<PartitionManifest, StoreError> {
    assert!(workers > 0, "cannot partition a corpus across 0 workers");
    let (manifest, sketches) = read_corpus_with_manifest(src, threads)?;
    let chunk = sketches.len().div_ceil(workers).max(1);
    let mut shards = Vec::with_capacity(workers);
    for i in 0..workers {
        let lo = (i * chunk).min(sketches.len());
        let hi = ((i + 1) * chunk).min(sketches.len());
        let dir = worker_dir_name(i);
        pack_corpus(
            &out.join(&dir),
            &sketches[lo..hi],
            &PackOptions {
                threads,
                ..PackOptions::default()
            },
        )?;
        shards.push(PartitionShard {
            dir,
            count: (hi - lo) as u64,
        });
    }
    let partition = PartitionManifest {
        workers,
        source_generation: manifest.generation,
        total: sketches.len() as u64,
        shards,
    };
    let path = out.join(PARTITION_NAME);
    std::fs::write(&path, partition.to_text()).map_err(StoreError::io(path))?;
    Ok(partition)
}

/// Load the partition manifest from a partition directory.
///
/// # Errors
///
/// [`StoreError::MissingManifest`] when `partition.cskp` does not
/// exist (the directory is not a partition), otherwise I/O or the
/// typed parse errors of [`PartitionManifest::parse`].
pub fn read_partition(dir: &Path) -> Result<PartitionManifest, StoreError> {
    let path = dir.join(PARTITION_NAME);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::MissingManifest {
                dir: dir.to_path_buf(),
            })
        }
        Err(e) => return Err(StoreError::io(path)(e)),
    };
    PartitionManifest::parse(&text).map_err(StoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::read_corpus;
    use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "cskb-partition-{tag}-{}-{:?}",
                std::process::id(),
                std::thread::current().id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn corpus(n: usize) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(64));
        (0..n)
            .map(|t| {
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..40).map(|i| format!("key-{}", t * 7 + i)).collect(),
                    (0..40).map(|i| (i as f64) + t as f64).collect(),
                ))
            })
            .collect()
    }

    /// The headline contract: worker live views concatenated in worker
    /// order are byte-identical to the source live view, at several
    /// worker counts including more workers than sketches.
    #[test]
    fn partition_concatenates_back_to_the_source_live_view() {
        let tmp = TempDir::new("roundtrip");
        let sketches = corpus(10);
        let src = tmp.0.join("src");
        pack_corpus(&src, &sketches, &PackOptions::default()).unwrap();
        for workers in [1usize, 2, 3, 7, 13] {
            let out = tmp.0.join(format!("split-{workers}"));
            let part = shard_corpus(&src, &out, workers, 2).unwrap();
            assert_eq!(part.workers, workers);
            assert_eq!(part.total, 10);
            assert_eq!(part.source_generation, 0);
            let mut union = Vec::new();
            for shard in &part.shards {
                let got = read_corpus(&out.join(&shard.dir), 1).unwrap();
                assert_eq!(got.len() as u64, shard.count);
                union.extend(got);
            }
            assert_eq!(union, sketches, "workers={workers}");
            // And the manifest round-trips through disk.
            assert_eq!(read_partition(&out).unwrap(), part);
        }
    }

    /// Partitioning a mutated store splits its *live view* and records
    /// the source generation it saw.
    #[test]
    fn partition_reads_the_live_view_of_a_mutated_store() {
        let tmp = TempDir::new("mutated");
        let sketches = corpus(6);
        let src = tmp.0.join("src");
        pack_corpus(&src, &sketches[..4], &PackOptions::default()).unwrap();
        crate::corpus::append_corpus(&src, &sketches[4..], 1).unwrap();
        let victim = sketches[1].id().to_string();
        crate::corpus::remove_from_corpus(&src, &[victim], 1).unwrap();
        let out = tmp.0.join("split");
        let part = shard_corpus(&src, &out, 2, 1).unwrap();
        assert_eq!(part.source_generation, 2);
        assert_eq!(part.total, 5);
        let expected = read_corpus(&src, 1).unwrap();
        let mut union = Vec::new();
        for shard in &part.shards {
            union.extend(read_corpus(&out.join(&shard.dir), 1).unwrap());
        }
        assert_eq!(union, expected);
    }

    #[test]
    fn parse_rejects_malformed_manifests() {
        for (text, why) in [
            ("", "empty"),
            ("cskb-partition 9\nworkers 0\nsource-generation 0\nsketches 0\n", "future version"),
            ("cskb-manifest 1\nsketches 0\n", "wrong tag"),
            ("cskb-partition 1\nworkers 2\nsource-generation 0\nsketches 0\n", "missing shard lines"),
            (
                "cskb-partition 1\nworkers 1\nsource-generation 0\nsketches 5\nshard worker-0000 4\n",
                "total mismatch",
            ),
            (
                "cskb-partition 1\nworkers 1\nsource-generation 0\nsketches 4\nshard worker-0000 x\n",
                "bad count",
            ),
            (
                "cskb-partition 1\nworkers 1\nsource-generation 0\nsketches 4\njunk line\n",
                "unknown line",
            ),
        ] {
            assert!(PartitionManifest::parse(text).is_err(), "{why}");
        }
        let err = read_partition(&std::env::temp_dir().join("definitely-not-a-partition-dir"));
        assert!(matches!(err, Err(StoreError::MissingManifest { .. })));
    }
}
