//! Whole-corpus pack/read: contiguous sharding with deterministic
//! parallel write and read.

use std::collections::HashSet;
use std::path::Path;

use correlation_sketches::{CorrelationSketch, SketchError};

use crate::error::StoreError;
use crate::manifest::{Manifest, ShardMeta};
use crate::shard::{read_shard, write_shard};

/// How a corpus is packed.
#[derive(Debug, Clone, Copy)]
pub struct PackOptions {
    /// Number of shard files to aim for (the actual count is capped at
    /// the sketch count so no shard is empty; `0` is treated as `1`).
    pub shards: usize,
    /// Worker threads for shard writing. `0` and `1` both mean serial;
    /// the shard contents are identical for every value (contiguous
    /// chunking, like `correlation_sketches::build_sketches_parallel`).
    pub threads: usize,
}

impl Default for PackOptions {
    fn default() -> Self {
        Self {
            shards: 8,
            threads: 1,
        }
    }
}

/// Shard file name for shard index `i` (`shard-0000.cskb`, …).
fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.cskb")
}

/// Is this a shard file name [`pack_corpus`] could have produced?
/// (`{i:04}` pads to 4 digits but grows beyond for index ≥ 10000.)
fn is_shard_file_name(name: &str) -> bool {
    name.strip_prefix("shard-")
        .and_then(|rest| rest.strip_suffix(".cskb"))
        .is_some_and(|digits| digits.len() >= 4 && digits.bytes().all(|b| b.is_ascii_digit()))
}

/// Map contiguous chunks of `items` through a fallible `f` on up to
/// `threads` scoped workers, re-concatenating results in input order —
/// the workspace's deterministic fan-out pattern, shared by the pack and
/// read paths. The first error (in input order within its worker's run)
/// wins.
fn try_par_map<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> Result<U, StoreError> + Sync,
) -> Result<Vec<U>, StoreError> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let per_worker = items.len().div_ceil(threads);
    let f = &f;
    let mut runs = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(per_worker)
            .map(|run| scope.spawn(move || run.iter().map(f).collect::<Result<Vec<_>, _>>()))
            .collect();
        for h in handles {
            runs.push(h.join().expect("store workers do not panic"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for run in runs {
        out.extend(run?);
    }
    Ok(out)
}

/// Pack a corpus into `dir` as binary shards plus a manifest.
///
/// The input order is preserved: shard `i` holds the `i`-th contiguous
/// chunk, and [`read_corpus`] returns the sketches in exactly this order.
/// Duplicate sketch ids are rejected up front (ids are primary keys in a
/// store).
///
/// Re-packing into a directory that already holds a store is safe: the
/// old manifest is removed *before* any shard is written (so a pack
/// interrupted mid-write leaves the directory unreadable — a missing
/// manifest — rather than an old manifest over a mix of old and new
/// shards), stale shard files from a previous larger pack are deleted,
/// and the new manifest is written atomically (temp file + rename) as
/// the final step.
///
/// # Errors
///
/// [`StoreError::Sketch`] with [`SketchError::DuplicateId`] on duplicate
/// ids or [`SketchError::Corrupt`] on unencodable sketches;
/// [`StoreError::Io`] on filesystem failure.
pub fn pack_corpus(
    dir: &Path,
    sketches: &[CorrelationSketch],
    opts: &PackOptions,
) -> Result<Manifest, StoreError> {
    let mut seen = HashSet::with_capacity(sketches.len());
    for s in sketches {
        if !seen.insert(s.id()) {
            return Err(SketchError::DuplicateId(s.id().to_string()).into());
        }
    }
    std::fs::create_dir_all(dir).map_err(StoreError::io(dir))?;
    // Invalidate any previous store generation before touching shards.
    let old_manifest = dir.join(crate::manifest::MANIFEST_NAME);
    match std::fs::remove_file(&old_manifest) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::io(old_manifest)(e)),
    }

    let shards = opts.shards.clamp(1, sketches.len().max(1));
    let chunk_len = sketches.len().div_ceil(shards);
    let chunks: Vec<(usize, &[CorrelationSketch])> = if sketches.is_empty() {
        Vec::new()
    } else {
        sketches.chunks(chunk_len).enumerate().collect()
    };

    let metas: Vec<ShardMeta> = try_par_map(&chunks, opts.threads, |&(i, chunk)| {
        let file = shard_file_name(i);
        write_shard(&dir.join(&file), chunk)?;
        Ok(ShardMeta {
            file,
            count: chunk.len() as u64,
        })
    })?;

    // Delete shard files a previous, larger pack left behind — they are
    // no longer referenced and would otherwise linger as dead weight (or
    // confuse a future by-glob consumer).
    let current: HashSet<&str> = metas.iter().map(|m| m.file.as_str()).collect();
    for entry in std::fs::read_dir(dir).map_err(StoreError::io(dir))? {
        let entry = entry.map_err(StoreError::io(dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_shard_file_name(name) && !current.contains(name) {
            std::fs::remove_file(entry.path()).map_err(StoreError::io(entry.path()))?;
        }
    }

    let manifest = Manifest {
        total: sketches.len() as u64,
        shards: metas,
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Load a packed corpus, validating every shard (magic, version,
/// checksums, manifest record counts) and rejecting duplicate sketch ids
/// across the whole corpus. Returns the manifest the corpus was
/// validated against alongside the sketches.
///
/// Shards are read with up to `threads` workers; the result order equals
/// the original pack input order for every thread count.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure; [`StoreError::Shard`]
/// naming the offending file (with a typed [`SketchError`] inside) on
/// per-shard corruption; [`StoreError::Sketch`] on corpus-level
/// corruption (bad manifest, duplicate ids) — never a silent partial
/// load.
pub fn read_corpus_with_manifest(
    dir: &Path,
    threads: usize,
) -> Result<(Manifest, Vec<CorrelationSketch>), StoreError> {
    let manifest = Manifest::load(dir)?;

    let shard_contents: Vec<Vec<CorrelationSketch>> =
        try_par_map(&manifest.shards, threads, |meta| {
            let in_shard = |e: SketchError| StoreError::Shard {
                file: meta.file.clone(),
                source: e,
            };
            let sketches = match read_shard(&dir.join(&meta.file)) {
                Ok(sketches) => sketches,
                Err(StoreError::Sketch(e)) => return Err(in_shard(e)),
                Err(other) => return Err(other),
            };
            if sketches.len() as u64 != meta.count {
                return Err(in_shard(SketchError::Corrupt(format!(
                    "holds {} records, manifest says {}",
                    sketches.len(),
                    meta.count
                ))));
            }
            Ok(sketches)
        })?;

    let mut out = Vec::with_capacity(manifest.total as usize);
    let mut seen = HashSet::with_capacity(manifest.total as usize);
    for sketches in shard_contents {
        for s in sketches {
            if !seen.insert(s.id().to_string()) {
                return Err(SketchError::DuplicateId(s.id().to_string()).into());
            }
            out.push(s);
        }
    }
    Ok((manifest, out))
}

/// As [`read_corpus_with_manifest`], returning only the sketches.
///
/// # Errors
///
/// See [`read_corpus_with_manifest`].
pub fn read_corpus(dir: &Path, threads: usize) -> Result<Vec<CorrelationSketch>, StoreError> {
    read_corpus_with_manifest(dir, threads).map(|(_, sketches)| sketches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("cskb-corpus-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn corpus(n: usize) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(32));
        (0..n)
            .map(|t| {
                let rows = 50 + (t * 13) % 200;
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..rows).map(|i| format!("key-{}-{i}", t % 5)).collect(),
                    (0..rows).map(|i| (i as f64 * 0.3).sin()).collect(),
                ))
            })
            .collect()
    }

    #[test]
    fn pack_read_roundtrip_preserves_order() {
        let dir = TempDir::new("roundtrip");
        let sketches = corpus(23);
        let opts = PackOptions {
            shards: 4,
            threads: 2,
        };
        let manifest = pack_corpus(&dir.0, &sketches, &opts).unwrap();
        assert_eq!(manifest.total, 23);
        assert_eq!(manifest.shards.len(), 4);
        let back = read_corpus(&dir.0, 2).unwrap();
        assert_eq!(back, sketches);
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_the_corpus() {
        let sketches = corpus(17);
        let reference = {
            let dir = TempDir::new("ref");
            pack_corpus(&dir.0, &sketches, &PackOptions::default()).unwrap();
            read_corpus(&dir.0, 1).unwrap()
        };
        for shards in [1usize, 3, 8, 17, 100] {
            for threads in [0usize, 1, 2, 7, 16] {
                let dir = TempDir::new(&format!("s{shards}t{threads}"));
                let opts = PackOptions { shards, threads };
                let m = pack_corpus(&dir.0, &sketches, &opts).unwrap();
                assert!(m.shards.len() <= shards.max(1));
                assert_eq!(
                    read_corpus(&dir.0, threads).unwrap(),
                    reference,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let dir = TempDir::new("empty");
        let m = pack_corpus(&dir.0, &[], &PackOptions::default()).unwrap();
        assert_eq!(m.total, 0);
        assert!(m.shards.is_empty());
        assert!(read_corpus(&dir.0, 4).unwrap().is_empty());
    }

    #[test]
    fn repacking_a_smaller_corpus_cleans_stale_shards() {
        let dir = TempDir::new("repack");
        let big = corpus(16);
        pack_corpus(
            &dir.0,
            &big,
            &PackOptions {
                shards: 8,
                threads: 2,
            },
        )
        .unwrap();
        assert!(dir.0.join("shard-0007.cskb").exists());

        let small: Vec<CorrelationSketch> = corpus(4);
        let m = pack_corpus(
            &dir.0,
            &small,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(m.shards.len(), 2);
        assert!(
            !dir.0.join("shard-0007.cskb").exists(),
            "stale shard from the previous pack must be removed"
        );
        assert_eq!(read_corpus(&dir.0, 2).unwrap(), small);
    }

    #[test]
    fn duplicate_ids_rejected_at_pack_time() {
        let dir = TempDir::new("dup");
        let mut sketches = corpus(3);
        sketches.push(sketches[0].clone());
        let err = pack_corpus(&dir.0, &sketches, &PackOptions::default()).unwrap_err();
        assert!(matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(_))
        ));
    }

    #[test]
    fn missing_shard_file_is_io_error() {
        let dir = TempDir::new("missing");
        pack_corpus(
            &dir.0,
            &corpus(6),
            &PackOptions {
                shards: 3,
                threads: 1,
            },
        )
        .unwrap();
        std::fs::remove_file(dir.0.join("shard-0001.cskb")).unwrap();
        assert!(matches!(read_corpus(&dir.0, 1), Err(StoreError::Io { .. })));
    }

    #[test]
    fn shard_count_mismatch_with_manifest_is_corrupt() {
        let dir = TempDir::new("count-mismatch");
        let sketches = corpus(6);
        pack_corpus(
            &dir.0,
            &sketches,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        // Overwrite shard 1 with fewer records than the manifest claims.
        write_shard(&dir.0.join("shard-0001.cskb"), &sketches[3..5]).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(matches!(
            err.as_sketch_error(),
            Some(SketchError::Corrupt(_))
        ));
    }
}
