//! Whole-corpus operations: pack/read with deterministic parallel
//! fan-out, plus the mutable-corpus write paths — append-only delta
//! shards, tombstone deletes, and offline compaction.
//!
//! # The corpus log and its live view
//!
//! A corpus directory is an ordered log: base shards (one contiguous
//! chunk each, pack order) followed by delta shards in generation order,
//! each holding appends and tombstones in the order they were issued.
//! Reading replays the log into the **live view**: base records in base
//! order with tombstoned records dropped, then surviving appends in
//! append order. Every reader (and [`sketch-index`]'s `from_store`)
//! sees exactly this order, so doc ids, tie-breaks, and query reports
//! are reproducible across loads, thread counts, and compactions.
//!
//! # Crash safety
//!
//! Appends and removes write their delta shard *before* atomically
//! renaming the new manifest into place — a crash in between leaves an
//! orphan delta file the old manifest never references (invisible, and
//! cleaned up by the next compact). Compaction and re-packing follow the
//! invalidate-first discipline: the old manifest is deleted before any
//! shard is rewritten, so a crash mid-compact leaves the directory
//! loudly unreadable (missing manifest) rather than silently mixed.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use correlation_sketches::{CorrelationSketch, DeltaRecord, SketchError};

use crate::error::StoreError;
use crate::manifest::{DeltaMeta, Manifest, ShardMeta};
use crate::shard::{read_delta_shard, read_shard, write_shard};

/// How a corpus is packed.
#[derive(Debug, Clone, Copy)]
pub struct PackOptions {
    /// Number of shard files to aim for (the actual count is capped at
    /// the sketch count so no shard is empty; `0` is treated as `1`).
    pub shards: usize,
    /// Worker threads for shard writing. `0` and `1` both mean serial;
    /// the shard contents are identical for every value (contiguous
    /// chunking, like `correlation_sketches::build_sketches_parallel`).
    pub threads: usize,
}

impl Default for PackOptions {
    fn default() -> Self {
        Self {
            shards: 8,
            threads: 1,
        }
    }
}

/// Shard file name for shard index `i` (`shard-0000.cskb`, …).
fn shard_file_name(i: usize) -> String {
    format!("shard-{i:04}.cskb")
}

/// Delta shard file name for generation `gen` (`delta-000001.cskb`, …).
fn delta_file_name(gen: u64) -> String {
    format!("delta-{gen:06}.cskb")
}

/// Is this a base shard file name [`pack_corpus`] could have produced?
/// (`{i:04}` pads to 4 digits but grows beyond for index ≥ 10000.)
fn is_shard_file_name(name: &str) -> bool {
    is_numbered(name, "shard-", 4)
}

/// Is this a delta shard file name [`append_corpus`] /
/// [`remove_from_corpus`] could have produced?
fn is_delta_file_name(name: &str) -> bool {
    is_numbered(name, "delta-", 6)
}

fn is_numbered(name: &str, prefix: &str, digits: usize) -> bool {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.strip_suffix(".cskb"))
        .is_some_and(|d| d.len() >= digits && d.bytes().all(|b| b.is_ascii_digit()))
}

/// Map contiguous chunks of `items` through a fallible `f` on up to
/// `threads` scoped workers, re-concatenating results in input order —
/// the workspace's deterministic fan-out pattern, shared by the pack and
/// read paths. The first error (in input order within its worker's run)
/// wins.
fn try_par_map<T: Sync, U: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> Result<U, StoreError> + Sync,
) -> Result<Vec<U>, StoreError> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let per_worker = items.len().div_ceil(threads);
    let f = &f;
    let mut runs = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(per_worker)
            .map(|run| scope.spawn(move || run.iter().map(f).collect::<Result<Vec<_>, _>>()))
            .collect();
        for h in handles {
            runs.push(h.join().expect("store workers do not panic"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for run in runs {
        out.extend(run?);
    }
    Ok(out)
}

/// Write base shards for `sketches` into `dir` at `generation`, cleaning
/// every stale base/delta file, with the invalidate-first discipline.
/// Shared by [`pack_corpus`] (generation 0 → version-1 manifest) and
/// [`compact_corpus`] (the compacting generation).
fn write_base(
    dir: &Path,
    sketches: &[CorrelationSketch],
    opts: &PackOptions,
    generation: u64,
) -> Result<Manifest, StoreError> {
    std::fs::create_dir_all(dir).map_err(StoreError::io(dir))?;
    // Invalidate any previous store generation before touching shards.
    let old_manifest = dir.join(crate::manifest::MANIFEST_NAME);
    match std::fs::remove_file(&old_manifest) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(StoreError::io(old_manifest)(e)),
    }

    let shards = opts.shards.clamp(1, sketches.len().max(1));
    let chunk_len = sketches.len().div_ceil(shards);
    let chunks: Vec<(usize, &[CorrelationSketch])> = if sketches.is_empty() {
        Vec::new()
    } else {
        sketches.chunks(chunk_len).enumerate().collect()
    };

    let metas: Vec<ShardMeta> = try_par_map(&chunks, opts.threads, |&(i, chunk)| {
        let file = shard_file_name(i);
        write_shard(&dir.join(&file), chunk)?;
        Ok(ShardMeta {
            file,
            count: chunk.len() as u64,
        })
    })?;

    // Delete files a previous, larger pack (or the pre-compaction delta
    // log) left behind — they are no longer referenced and would
    // otherwise linger as dead weight (or confuse a by-glob consumer).
    let current: HashSet<&str> = metas.iter().map(|m| m.file.as_str()).collect();
    for entry in std::fs::read_dir(dir).map_err(StoreError::io(dir))? {
        let entry = entry.map_err(StoreError::io(dir))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale =
            (is_shard_file_name(name) && !current.contains(name)) || is_delta_file_name(name);
        if stale {
            std::fs::remove_file(entry.path()).map_err(StoreError::io(entry.path()))?;
        }
    }

    let manifest = Manifest {
        generation,
        base_generation: generation,
        ..Manifest::base(sketches.len() as u64, metas)
    };
    manifest.save(dir)?;
    Ok(manifest)
}

/// Pack a corpus into `dir` as binary shards plus a manifest.
///
/// The input order is preserved: shard `i` holds the `i`-th contiguous
/// chunk, and [`read_corpus`] returns the sketches in exactly this order.
/// Duplicate sketch ids are rejected up front (ids are primary keys in a
/// store).
///
/// Re-packing into a directory that already holds a store is safe: the
/// old manifest is removed *before* any shard is written (so a pack
/// interrupted mid-write leaves the directory unreadable — a missing
/// manifest — rather than an old manifest over a mix of old and new
/// shards), stale base and delta files from the previous store are
/// deleted, and the new manifest is written atomically (temp file +
/// rename) as the final step. The packed store starts over at
/// generation 0.
///
/// # Errors
///
/// [`StoreError::Sketch`] with [`SketchError::DuplicateId`] on duplicate
/// ids or [`SketchError::Corrupt`] on unencodable sketches;
/// [`StoreError::Io`] on filesystem failure.
pub fn pack_corpus(
    dir: &Path,
    sketches: &[CorrelationSketch],
    opts: &PackOptions,
) -> Result<Manifest, StoreError> {
    let mut seen = HashSet::with_capacity(sketches.len());
    for s in sketches {
        if !seen.insert(s.id()) {
            return Err(SketchError::DuplicateId(s.id().to_string()).into());
        }
    }
    write_base(dir, sketches, opts, 0)
}

/// The replayed live view of a corpus log: surviving records in log
/// order, with the id-keyed bookkeeping needed to apply more deltas.
struct LiveView {
    /// Records in log order; tombstoned slots are `None`.
    slots: Vec<Option<CorrelationSketch>>,
    /// Live id → slot position.
    by_id: HashMap<String, usize>,
}

impl LiveView {
    fn new(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            by_id: HashMap::with_capacity(capacity),
        }
    }

    fn append(&mut self, sketch: CorrelationSketch) -> Result<(), SketchError> {
        match self.by_id.entry(sketch.id().to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => {
                Err(SketchError::DuplicateId(e.key().clone()))
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.slots.len());
                self.slots.push(Some(sketch));
                Ok(())
            }
        }
    }

    fn tombstone(&mut self, id: &str) -> Result<(), SketchError> {
        match self.by_id.remove(id) {
            Some(slot) => {
                self.slots[slot] = None;
                Ok(())
            }
            None => Err(SketchError::TombstoneForUnknownId(id.to_string())),
        }
    }

    fn apply(&mut self, record: DeltaRecord) -> Result<(), SketchError> {
        match record {
            DeltaRecord::Sketch(s) => self.append(s),
            DeltaRecord::Tombstone(id) => self.tombstone(&id),
        }
    }

    fn into_live(self) -> Vec<CorrelationSketch> {
        self.slots.into_iter().flatten().collect()
    }
}

/// Read a shard-like file through `read`, converting a not-found I/O
/// error into the typed [`StoreError::MissingShard`] and wrapping
/// corruption with the shard's file name.
fn read_listed<T>(
    dir: &Path,
    file: &str,
    read: impl FnOnce(&Path) -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    match read(&dir.join(file)) {
        Ok(v) => Ok(v),
        Err(StoreError::Sketch(e)) => Err(StoreError::Shard {
            file: file.to_string(),
            source: e,
        }),
        Err(StoreError::Io { path, source }) if source.kind() == std::io::ErrorKind::NotFound => {
            let _ = path;
            Err(StoreError::MissingShard {
                file: file.to_string(),
            })
        }
        Err(other) => Err(other),
    }
}

/// Load the full corpus log (manifest, base shards, delta shards) and
/// replay it into the live view. The backbone of every read path.
fn load_live(dir: &Path, threads: usize) -> Result<(Manifest, LiveView), StoreError> {
    let manifest = Manifest::load(dir)?;

    let shard_contents: Vec<Vec<CorrelationSketch>> =
        try_par_map(&manifest.shards, threads, |meta| {
            let sketches = read_listed(dir, &meta.file, read_shard)?;
            if sketches.len() as u64 != meta.count {
                return Err(StoreError::Shard {
                    file: meta.file.clone(),
                    source: SketchError::Corrupt(format!(
                        "holds {} records, manifest says {}",
                        sketches.len(),
                        meta.count
                    )),
                });
            }
            Ok(sketches)
        })?;
    let delta_contents: Vec<Vec<DeltaRecord>> = try_par_map(&manifest.deltas, threads, |meta| {
        let records = read_listed(dir, &meta.file, read_delta_shard)?;
        if records.len() as u64 != meta.records {
            return Err(StoreError::Shard {
                file: meta.file.clone(),
                source: SketchError::Corrupt(format!(
                    "holds {} records, manifest says {}",
                    records.len(),
                    meta.records
                )),
            });
        }
        Ok(records)
    })?;

    // Replay serially in log order — deterministic for every thread count.
    let mut live = LiveView::new(manifest.total as usize);
    for sketches in shard_contents {
        for s in sketches {
            live.append(s)?;
        }
    }
    for (meta, records) in manifest.deltas.iter().zip(delta_contents) {
        for record in records {
            live.apply(record).map_err(|e| StoreError::Shard {
                file: meta.file.clone(),
                source: e,
            })?;
        }
    }
    let live_count = live.by_id.len() as u64;
    if live_count != manifest.total {
        return Err(SketchError::Corrupt(format!(
            "replaying the corpus log leaves {live_count} live records, \
             manifest says {}",
            manifest.total
        ))
        .into());
    }
    Ok((manifest, live))
}

/// Load a packed corpus, validating every shard (magic, version,
/// checksums, manifest record counts), replaying delta shards in
/// generation order, and rejecting duplicate live ids and tombstones for
/// unknown ids. Returns the manifest the corpus was validated against
/// alongside the live sketches.
///
/// Shards are read with up to `threads` workers; the live order (base
/// survivors in pack order, then surviving appends in append order) is
/// identical for every thread count.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failure; [`StoreError::MissingShard`]
/// when the manifest references a shard file that is not on disk;
/// [`StoreError::Shard`] naming the offending file (with a typed
/// [`SketchError`] inside) on per-shard corruption; [`StoreError::Sketch`]
/// on corpus-level corruption (bad manifest, duplicate ids, stale
/// generations, live-count mismatch) — never a silent partial load.
pub fn read_corpus_with_manifest(
    dir: &Path,
    threads: usize,
) -> Result<(Manifest, Vec<CorrelationSketch>), StoreError> {
    let (manifest, live) = load_live(dir, threads)?;
    Ok((manifest, live.into_live()))
}

/// As [`read_corpus_with_manifest`], returning only the live sketches.
///
/// # Errors
///
/// See [`read_corpus_with_manifest`].
pub fn read_corpus(dir: &Path, threads: usize) -> Result<Vec<CorrelationSketch>, StoreError> {
    read_corpus_with_manifest(dir, threads).map(|(_, sketches)| sketches)
}

/// Read only the delta records with generation greater than `after`, in
/// log order, together with the current manifest — the incremental feed
/// for `sketch-index`'s `refresh_from_store`.
///
/// `after` must name a generation this store lineage has actually been
/// through: at least the base generation (older deltas were folded away
/// by a compaction) and at most the store generation (a larger value
/// means the caller's state came from a store that no longer exists —
/// e.g. the directory was re-packed from scratch, which resets
/// generations to 0). Both directions are rejected with the typed
/// staleness error rather than silently returning "no new deltas".
/// (A re-pack followed by enough new mutations to catch back up to
/// `after` is indistinguishable by generation alone — re-packing a live
/// directory is an offline operation; prefer [`compact_corpus`], which
/// keeps generations monotonic, while incremental consumers exist.)
///
/// # Errors
///
/// [`SketchError::StaleGeneration`] (wrapped in [`StoreError::Sketch`])
/// when `after` is outside `[base_generation, generation]`; otherwise
/// the same errors as [`read_corpus_with_manifest`] for the shards
/// actually read.
pub fn read_deltas_since(
    dir: &Path,
    after: u64,
    threads: usize,
) -> Result<(Manifest, Vec<DeltaRecord>), StoreError> {
    let manifest = Manifest::load(dir)?;
    if after < manifest.base_generation || after > manifest.generation {
        return Err(SketchError::StaleGeneration {
            found: after,
            expected: if after < manifest.base_generation {
                manifest.base_generation
            } else {
                manifest.generation
            },
        }
        .into());
    }
    let wanted: Vec<DeltaMeta> = manifest
        .deltas
        .iter()
        .filter(|d| d.generation > after)
        .cloned()
        .collect();
    let contents: Vec<Vec<DeltaRecord>> = try_par_map(&wanted, threads, |meta| {
        let records = read_listed(dir, &meta.file, read_delta_shard)?;
        if records.len() as u64 != meta.records {
            return Err(StoreError::Shard {
                file: meta.file.clone(),
                source: SketchError::Corrupt(format!(
                    "holds {} records, manifest says {}",
                    records.len(),
                    meta.records
                )),
            });
        }
        Ok(records)
    })?;
    Ok((manifest, contents.into_iter().flatten().collect()))
}

/// Append sketches to a live corpus as one new delta shard, advancing the
/// store generation by one. Ids must be new — appending an id that is
/// already live is rejected (retire it first with
/// [`remove_from_corpus`]).
///
/// The whole corpus is re-validated (every checksum) before the append,
/// so a corrupted store is never silently extended. The delta shard is
/// written before the manifest is atomically renamed into place; a crash
/// in between leaves an unreferenced file, not a broken store.
///
/// # Errors
///
/// [`SketchError::DuplicateId`] (wrapped) on an id collision with the
/// live corpus or within `sketches`; [`SketchError::HasherMismatch`]
/// when an appended sketch was built with a different hasher
/// configuration than the live corpus (it could never be joined with
/// it, so accepting it would leave the store valid but unqueryable);
/// otherwise the errors of [`read_corpus_with_manifest`] and
/// [`StoreError::Io`].
pub fn append_corpus(
    dir: &Path,
    sketches: &[CorrelationSketch],
    threads: usize,
) -> Result<Manifest, StoreError> {
    mutate_corpus(
        dir,
        threads,
        sketches.iter().cloned().map(DeltaRecord::Sketch),
    )
}

/// Tombstone live sketch ids as one new delta shard, advancing the store
/// generation by one.
///
/// # Errors
///
/// [`SketchError::TombstoneForUnknownId`] (wrapped) when an id is not
/// live (unknown, already removed, or repeated within `ids`); otherwise
/// the errors of [`read_corpus_with_manifest`] and [`StoreError::Io`].
pub fn remove_from_corpus(
    dir: &Path,
    ids: &[String],
    threads: usize,
) -> Result<Manifest, StoreError> {
    mutate_corpus(
        dir,
        threads,
        ids.iter().cloned().map(DeltaRecord::Tombstone),
    )
}

/// Shared append/remove implementation: validate the records against the
/// current live view, write the delta shard, advance the manifest.
fn mutate_corpus(
    dir: &Path,
    threads: usize,
    records: impl Iterator<Item = DeltaRecord>,
) -> Result<Manifest, StoreError> {
    let (mut manifest, mut live) = load_live(dir, threads)?;
    let records: Vec<DeltaRecord> = records.collect();
    if records.is_empty() {
        return Ok(manifest);
    }
    // Appends must be joinable with the live corpus: enforce hasher
    // uniformity here, mirroring `SketchIndex::insert`, so a mutation
    // can never leave the store valid on disk but unindexable.
    let mut hasher = live
        .slots
        .iter()
        .flatten()
        .next()
        .map(CorrelationSketch::hasher);
    for record in &records {
        if let DeltaRecord::Sketch(s) = record {
            match hasher {
                Some(h) if h != s.hasher() => return Err(SketchError::HasherMismatch.into()),
                None => hasher = Some(s.hasher()),
                _ => {}
            }
        }
    }
    for record in &records {
        live.apply(record.clone())?;
    }

    let gen = manifest.generation + 1;
    let file = delta_file_name(gen);
    let path = dir.join(&file);
    // `create_new`: two writers racing on the same store both compute
    // generation G+1; the loser must collide loudly here instead of
    // truncate-overwriting the winner's acknowledged delta (the final
    // manifest rename would then pick one and silently drop the other).
    // The same error fires on an orphan file left by an append that
    // crashed before its manifest rename — `corpus compact` (which
    // deletes every delta file) clears either situation.
    let bytes = crate::shard::encode_delta_shard(&records).map_err(StoreError::Sketch)?;
    let mut delta_file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&path)
        .map_err(StoreError::io(&path))?;
    std::io::Write::write_all(&mut delta_file, &bytes).map_err(StoreError::io(&path))?;
    manifest.deltas.push(DeltaMeta {
        file,
        records: records.len() as u64,
        generation: gen,
    });
    manifest.generation = gen;
    manifest.total = live.by_id.len() as u64;
    manifest.save(dir)?;
    Ok(manifest)
}

/// Fold every delta shard (appends and tombstones) back into freshly
/// packed base shards, reclaiming tombstoned records and deleting the
/// delta log. The live view — and therefore every query report of an
/// index built over the store — is unchanged; only the layout is.
///
/// The compacted store carries `base_generation = generation = G + 1`
/// where `G` was the pre-compact generation, so an incremental index
/// still sitting at an older generation gets a typed
/// [`SketchError::StaleGeneration`] from `refresh_from_store` instead of
/// silently replaying against the wrong base.
///
/// # Errors
///
/// The errors of [`read_corpus_with_manifest`] (the corpus is fully
/// validated first) and [`StoreError::Io`].
pub fn compact_corpus(dir: &Path, opts: &PackOptions) -> Result<Manifest, StoreError> {
    let (manifest, live) = load_live(dir, opts.threads)?;
    write_base(dir, &live.into_live(), opts, manifest.generation + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("cskb-corpus-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn corpus(n: usize) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(32));
        (0..n)
            .map(|t| {
                let rows = 50 + (t * 13) % 200;
                b.build(&ColumnPair::new(
                    format!("t{t}"),
                    "k",
                    "v",
                    (0..rows).map(|i| format!("key-{}-{i}", t % 5)).collect(),
                    (0..rows).map(|i| (i as f64 * 0.3).sin()).collect(),
                ))
            })
            .collect()
    }

    /// Fresh sketches with ids disjoint from [`corpus`].
    fn extra(n: usize, tag: &str) -> Vec<CorrelationSketch> {
        let b = SketchBuilder::new(SketchConfig::with_size(32));
        (0..n)
            .map(|t| {
                b.build(&ColumnPair::new(
                    format!("{tag}{t}"),
                    "k",
                    "v",
                    (0..80).map(|i| format!("key-{t}-{i}")).collect(),
                    (0..80).map(|i| (i as f64 * 0.7).cos()).collect(),
                ))
            })
            .collect()
    }

    #[test]
    fn pack_read_roundtrip_preserves_order() {
        let dir = TempDir::new("roundtrip");
        let sketches = corpus(23);
        let opts = PackOptions {
            shards: 4,
            threads: 2,
        };
        let manifest = pack_corpus(&dir.0, &sketches, &opts).unwrap();
        assert_eq!(manifest.total, 23);
        assert_eq!(manifest.shards.len(), 4);
        assert_eq!(manifest.generation, 0);
        let back = read_corpus(&dir.0, 2).unwrap();
        assert_eq!(back, sketches);
    }

    #[test]
    fn shard_and_thread_counts_do_not_change_the_corpus() {
        let sketches = corpus(17);
        let reference = {
            let dir = TempDir::new("ref");
            pack_corpus(&dir.0, &sketches, &PackOptions::default()).unwrap();
            read_corpus(&dir.0, 1).unwrap()
        };
        for shards in [1usize, 3, 8, 17, 100] {
            for threads in [0usize, 1, 2, 7, 16] {
                let dir = TempDir::new(&format!("s{shards}t{threads}"));
                let opts = PackOptions { shards, threads };
                let m = pack_corpus(&dir.0, &sketches, &opts).unwrap();
                assert!(m.shards.len() <= shards.max(1));
                assert_eq!(
                    read_corpus(&dir.0, threads).unwrap(),
                    reference,
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let dir = TempDir::new("empty");
        let m = pack_corpus(&dir.0, &[], &PackOptions::default()).unwrap();
        assert_eq!(m.total, 0);
        assert!(m.shards.is_empty());
        assert!(read_corpus(&dir.0, 4).unwrap().is_empty());
    }

    #[test]
    fn repacking_a_smaller_corpus_cleans_stale_shards() {
        let dir = TempDir::new("repack");
        let big = corpus(16);
        pack_corpus(
            &dir.0,
            &big,
            &PackOptions {
                shards: 8,
                threads: 2,
            },
        )
        .unwrap();
        assert!(dir.0.join("shard-0007.cskb").exists());

        let small: Vec<CorrelationSketch> = corpus(4);
        let m = pack_corpus(
            &dir.0,
            &small,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(m.shards.len(), 2);
        assert!(
            !dir.0.join("shard-0007.cskb").exists(),
            "stale shard from the previous pack must be removed"
        );
        assert_eq!(read_corpus(&dir.0, 2).unwrap(), small);
    }

    #[test]
    fn duplicate_ids_rejected_at_pack_time() {
        let dir = TempDir::new("dup");
        let mut sketches = corpus(3);
        sketches.push(sketches[0].clone());
        let err = pack_corpus(&dir.0, &sketches, &PackOptions::default()).unwrap_err();
        assert!(matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(_))
        ));
    }

    #[test]
    fn missing_shard_file_is_typed() {
        let dir = TempDir::new("missing");
        pack_corpus(
            &dir.0,
            &corpus(6),
            &PackOptions {
                shards: 3,
                threads: 1,
            },
        )
        .unwrap();
        std::fs::remove_file(dir.0.join("shard-0001.cskb")).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(
            matches!(&err, StoreError::MissingShard { file } if file == "shard-0001.cskb"),
            "{err}"
        );
    }

    #[test]
    fn shard_count_mismatch_with_manifest_is_corrupt() {
        let dir = TempDir::new("count-mismatch");
        let sketches = corpus(6);
        pack_corpus(
            &dir.0,
            &sketches,
            &PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        // Overwrite shard 1 with fewer records than the manifest claims.
        write_shard(&dir.0.join("shard-0001.cskb"), &sketches[3..5]).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(matches!(
            err.as_sketch_error(),
            Some(SketchError::Corrupt(_))
        ));
    }

    #[test]
    fn append_remove_compact_roundtrip() {
        let dir = TempDir::new("mutate");
        let base = corpus(10);
        pack_corpus(
            &dir.0,
            &base,
            &PackOptions {
                shards: 3,
                threads: 2,
            },
        )
        .unwrap();

        // Append five new sketches.
        let added = extra(5, "x");
        let m = append_corpus(&dir.0, &added, 2).unwrap();
        assert_eq!(m.generation, 1);
        assert_eq!(m.total, 15);
        assert_eq!(m.deltas.len(), 1);
        let mut expect: Vec<CorrelationSketch> = base.clone();
        expect.extend(added.clone());
        assert_eq!(read_corpus(&dir.0, 2).unwrap(), expect);

        // Remove two: one from the base, one just appended.
        let gone = vec![base[3].id().to_string(), added[1].id().to_string()];
        let m = remove_from_corpus(&dir.0, &gone, 1).unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(m.total, 13);
        expect.retain(|s| !gone.contains(&s.id().to_string()));
        assert_eq!(read_corpus(&dir.0, 3).unwrap(), expect);

        // Re-appending a removed id is allowed and lands at the end.
        let m = append_corpus(&dir.0, &base[3..4], 1).unwrap();
        assert_eq!(m.generation, 3);
        assert_eq!(m.total, 14);
        expect.push(base[3].clone());
        assert_eq!(read_corpus(&dir.0, 1).unwrap(), expect);

        // Compaction preserves the live view exactly and reclaims the
        // delta log.
        let m = compact_corpus(
            &dir.0,
            &PackOptions {
                shards: 4,
                threads: 2,
            },
        )
        .unwrap();
        assert_eq!(m.generation, 4);
        assert_eq!(m.base_generation, 4);
        assert!(m.deltas.is_empty());
        assert_eq!(m.total, 14);
        assert!(!dir.0.join("delta-000001.cskb").exists());
        assert!(!dir.0.join("delta-000002.cskb").exists());
        assert!(!dir.0.join("delta-000003.cskb").exists());
        for threads in [0usize, 1, 2, 7, 16] {
            assert_eq!(read_corpus(&dir.0, threads).unwrap(), expect, "{threads}");
        }
    }

    #[test]
    fn append_duplicate_live_id_rejected() {
        let dir = TempDir::new("append-dup");
        let base = corpus(4);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        let err = append_corpus(&dir.0, &base[1..2], 1).unwrap_err();
        assert!(matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(_))
        ));
        // The failed append must not have advanced the store.
        assert_eq!(Manifest::load(&dir.0).unwrap().generation, 0);
        assert_eq!(read_corpus(&dir.0, 1).unwrap(), base);
    }

    #[test]
    fn remove_unknown_id_rejected() {
        let dir = TempDir::new("rm-unknown");
        let base = corpus(4);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        for ids in [
            vec!["nope/k/v".to_string()],
            // Removing the same live id twice in one call: the second
            // tombstone refers to an id that is no longer live.
            vec![base[0].id().to_string(), base[0].id().to_string()],
        ] {
            let err = remove_from_corpus(&dir.0, &ids, 1).unwrap_err();
            assert!(
                matches!(
                    err.as_sketch_error(),
                    Some(SketchError::TombstoneForUnknownId(_))
                ),
                "{err}"
            );
        }
        assert_eq!(Manifest::load(&dir.0).unwrap().generation, 0);
        assert_eq!(read_corpus(&dir.0, 1).unwrap(), base);
    }

    #[test]
    fn colliding_delta_file_makes_the_race_loud() {
        let dir = TempDir::new("delta-collision");
        pack_corpus(&dir.0, &corpus(3), &PackOptions::default()).unwrap();
        // Simulate a concurrent writer (or a crashed append's orphan):
        // the file for the next generation already exists.
        std::fs::write(dir.0.join("delta-000001.cskb"), b"in flight").unwrap();
        let err = append_corpus(&dir.0, &extra(1, "w"), 1).unwrap_err();
        assert!(
            matches!(&err, StoreError::Io { source, .. }
                if source.kind() == std::io::ErrorKind::AlreadyExists),
            "{err}"
        );
        // The manifest was never advanced; compact clears the orphan and
        // the append then succeeds.
        assert_eq!(Manifest::load(&dir.0).unwrap().generation, 0);
        compact_corpus(&dir.0, &PackOptions::default()).unwrap();
        assert!(!dir.0.join("delta-000001.cskb").exists());
        append_corpus(&dir.0, &extra(1, "w"), 1).unwrap();
        assert_eq!(read_corpus(&dir.0, 1).unwrap().len(), 4);
    }

    #[test]
    fn empty_mutations_are_noops() {
        let dir = TempDir::new("noop");
        pack_corpus(&dir.0, &corpus(3), &PackOptions::default()).unwrap();
        assert_eq!(append_corpus(&dir.0, &[], 1).unwrap().generation, 0);
        assert_eq!(remove_from_corpus(&dir.0, &[], 1).unwrap().generation, 0);
    }

    #[test]
    fn read_deltas_since_feeds_incremental_consumers() {
        let dir = TempDir::new("since");
        let base = corpus(5);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        let added = extra(2, "y");
        append_corpus(&dir.0, &added, 1).unwrap();
        remove_from_corpus(&dir.0, &[base[0].id().to_string()], 1).unwrap();

        let (m, records) = read_deltas_since(&dir.0, 0, 2).unwrap();
        assert_eq!(m.generation, 2);
        assert_eq!(records.len(), 3);
        let (_, records) = read_deltas_since(&dir.0, 1, 1).unwrap();
        assert_eq!(
            records,
            vec![DeltaRecord::Tombstone(base[0].id().to_string())]
        );
        let (_, records) = read_deltas_since(&dir.0, 2, 1).unwrap();
        assert!(records.is_empty());

        // After a compact, pre-compact generations are stale.
        compact_corpus(&dir.0, &PackOptions::default()).unwrap();
        let err = read_deltas_since(&dir.0, 2, 1).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::StaleGeneration {
                    found: 2,
                    expected: 3
                })
            ),
            "{err}"
        );
        let (m, records) = read_deltas_since(&dir.0, 3, 1).unwrap();
        assert_eq!(m.generation, 3);
        assert!(records.is_empty());
    }

    #[test]
    fn read_deltas_since_rejects_generations_the_store_never_reached() {
        let dir = TempDir::new("since-future");
        let base = corpus(4);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        append_corpus(&dir.0, &extra(1, "z"), 1).unwrap();
        // A caller claiming generation 5 cannot have come from this store
        // lineage (e.g. the directory was re-packed from scratch after
        // the caller last refreshed): typed staleness, not "no deltas".
        let err = read_deltas_since(&dir.0, 5, 1).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::StaleGeneration { found: 5, .. })
            ),
            "{err}"
        );
        // The boundary itself (the store's own generation) is fine.
        assert!(read_deltas_since(&dir.0, 1, 1).unwrap().1.is_empty());
    }

    #[test]
    fn hasher_incompatible_append_rejected() {
        use correlation_sketches::{SketchBuilder, SketchConfig};
        let dir = TempDir::new("append-hasher");
        let base = corpus(3);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        let alien = SketchBuilder::new(
            SketchConfig::with_size(32).hasher(sketch_hashing::TupleHasher::new_64(99)),
        )
        .build(&sketch_table::ColumnPair::new(
            "alien",
            "k",
            "v",
            (0..50).map(|i| format!("key-{i}")).collect(),
            (0..50).map(|i| i as f64).collect(),
        ));
        let err = append_corpus(&dir.0, &[alien], 1).unwrap_err();
        assert!(
            matches!(err.as_sketch_error(), Some(SketchError::HasherMismatch)),
            "{err}"
        );
        // The rejected append must not have advanced the store.
        assert_eq!(Manifest::load(&dir.0).unwrap().generation, 0);
        assert_eq!(read_corpus(&dir.0, 1).unwrap(), base);
    }

    #[test]
    fn compacting_an_unmutated_store_just_advances_the_generation() {
        let dir = TempDir::new("compact-fresh");
        let base = corpus(6);
        pack_corpus(&dir.0, &base, &PackOptions::default()).unwrap();
        let m = compact_corpus(&dir.0, &PackOptions::default()).unwrap();
        assert_eq!(m.generation, 1);
        assert_eq!(m.base_generation, 1);
        assert_eq!(read_corpus(&dir.0, 1).unwrap(), base);
    }
}
