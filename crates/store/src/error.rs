//! Store error type: typed corruption errors plus I/O context.

use correlation_sketches::SketchError;

/// Why a store operation failed.
///
/// Corruption is always a typed [`SketchError`] (magic, version,
/// truncation, checksum, duplicate ids, payload decode); `Io` covers the
/// filesystem layer, annotated with the path involved.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure at `path`.
    Io {
        /// File or directory the operation touched.
        path: std::path::PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The stored bytes are invalid; see the inner [`SketchError`] for
    /// the precise, typed reason.
    Sketch(SketchError),
    /// A specific shard file of a corpus is invalid — same typed reasons
    /// as [`Self::Sketch`], plus the file name so the operator knows
    /// which of N shards to replace.
    Shard {
        /// Shard file name, relative to the corpus directory.
        file: String,
        /// The typed corruption reason.
        source: SketchError,
    },
    /// The manifest references a shard file that does not exist on disk —
    /// the store was partially deleted or mis-assembled. Distinct from
    /// [`Self::Io`] so callers can tell "the store is incomplete" apart
    /// from environmental filesystem failures.
    MissingShard {
        /// Shard file name the manifest references, relative to the
        /// corpus directory.
        file: String,
    },
    /// The directory has no `manifest.cskm` at all — it is missing,
    /// empty, or simply not a packed corpus store. Distinct from
    /// [`Self::Io`] so front ends can print "not a store" instead of a
    /// raw `No such file or directory` I/O string.
    MissingManifest {
        /// The directory that was supposed to be a corpus store.
        dir: std::path::PathBuf,
    },
}

impl StoreError {
    pub(crate) fn io(path: impl Into<std::path::PathBuf>) -> impl FnOnce(std::io::Error) -> Self {
        let path = path.into();
        move |source| Self::Io { path, source }
    }

    /// The typed corruption reason, when this is a corruption error.
    #[must_use]
    pub fn as_sketch_error(&self) -> Option<&SketchError> {
        match self {
            Self::Sketch(e) | Self::Shard { source: e, .. } => Some(e),
            Self::Io { .. } | Self::MissingShard { .. } | Self::MissingManifest { .. } => None,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "{}: {source}", path.display()),
            Self::Sketch(e) => write!(f, "{e}"),
            Self::Shard { file, source } => write!(f, "shard {file}: {source}"),
            Self::MissingShard { file } => {
                write!(
                    f,
                    "shard {file} is referenced by the manifest but missing on disk"
                )
            }
            Self::MissingManifest { dir } => {
                write!(
                    f,
                    "{}: no corpus manifest ({}) — not a packed store, or the \
                     directory is empty or missing",
                    dir.display(),
                    crate::manifest::MANIFEST_NAME
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
            Self::Sketch(e) | Self::Shard { source: e, .. } => Some(e),
            Self::MissingShard { .. } | Self::MissingManifest { .. } => None,
        }
    }
}

impl From<SketchError> for StoreError {
    fn from(e: SketchError) -> Self {
        Self::Sketch(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_path_and_reason() {
        let e = StoreError::io("/tmp/x.cskb")(std::io::Error::other("boom"));
        assert!(e.to_string().contains("x.cskb"));
        assert!(e.to_string().contains("boom"));
        let e = StoreError::from(SketchError::BadMagic { found: *b"JUNK" });
        assert!(e.to_string().contains("magic"));
        assert!(matches!(
            e.as_sketch_error(),
            Some(SketchError::BadMagic { .. })
        ));
        let e = StoreError::Shard {
            file: "shard-0005.cskb".into(),
            source: SketchError::ChecksumMismatch {
                record: 3,
                stored: 1,
                computed: 2,
            },
        };
        assert!(e.to_string().contains("shard-0005.cskb"), "{e}");
        assert!(matches!(
            e.as_sketch_error(),
            Some(SketchError::ChecksumMismatch { .. })
        ));
        let e = StoreError::MissingShard {
            file: "delta-000003.cskb".into(),
        };
        assert!(e.to_string().contains("delta-000003.cskb"), "{e}");
        assert!(e.to_string().contains("missing"), "{e}");
        assert!(e.as_sketch_error().is_none());
    }
}
