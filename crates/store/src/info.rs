//! Cheap store metadata: the manifest-level shape of a corpus directory
//! without loading (or validating) the base shards.
//!
//! [`stat_corpus`] reads the manifest plus the delta shards only — delta
//! shards are tiny (one per mutation) but must be opened to split their
//! records into appends and tombstones. This is the data behind
//! `corrsketch corpus info --json` and the query server's `GET /corpus`
//! endpoint; both need the store's generation and pending-delta shape on
//! every poll, neither wants to pay a full checksum-verified corpus load
//! for it.

use std::path::Path;

use correlation_sketches::{json, DeltaRecord};

use crate::error::StoreError;
use crate::manifest::Manifest;
use crate::shard::read_delta_shard;

/// One base shard: manifest entry plus its current on-disk size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard file name, relative to the corpus directory.
    pub file: String,
    /// Records in the shard (from the manifest).
    pub records: u64,
    /// File size in bytes (0 if the file vanished under us).
    pub bytes: u64,
}

/// One delta shard: manifest entry, record split, and on-disk size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaInfo {
    /// Delta file name, relative to the corpus directory.
    pub file: String,
    /// Total records (appends + tombstones) in the shard.
    pub records: u64,
    /// How many of those records are tombstones.
    pub tombstones: u64,
    /// The generation this delta produced.
    pub generation: u64,
    /// File size in bytes (0 if the file vanished under us).
    pub bytes: u64,
}

/// The manifest-level shape of a corpus store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// Latest store generation.
    pub generation: u64,
    /// Generation at which the base shards were last rewritten.
    pub base_generation: u64,
    /// Live sketches after replaying all deltas.
    pub live: u64,
    /// Base shards in corpus order.
    pub shards: Vec<ShardInfo>,
    /// Delta shards in generation order.
    pub deltas: Vec<DeltaInfo>,
}

impl StoreInfo {
    /// Records across the base shards (live + not-yet-reclaimed dead).
    #[must_use]
    pub fn base_records(&self) -> u64 {
        self.shards.iter().map(|s| s.records).sum()
    }

    /// Pending delta appends (reclaimable into base shards by a compact).
    #[must_use]
    pub fn pending_appends(&self) -> u64 {
        self.deltas.iter().map(|d| d.records - d.tombstones).sum()
    }

    /// Pending delta tombstones.
    #[must_use]
    pub fn pending_tombstones(&self) -> u64 {
        self.deltas.iter().map(|d| d.tombstones).sum()
    }

    /// Total bytes of every shard and delta file on disk.
    #[must_use]
    pub fn disk_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes).sum::<u64>()
            + self.deltas.iter().map(|d| d.bytes).sum::<u64>()
    }

    /// Render as one deterministic JSON object — the payload of
    /// `corrsketch corpus info --json` and of the server's `GET /corpus`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192 + 64 * (self.shards.len() + self.deltas.len()));
        out.push_str("{\"generation\":");
        out.push_str(&self.generation.to_string());
        out.push_str(",\"base_generation\":");
        out.push_str(&self.base_generation.to_string());
        out.push_str(",\"live\":");
        out.push_str(&self.live.to_string());
        out.push_str(",\"base_records\":");
        out.push_str(&self.base_records().to_string());
        out.push_str(",\"pending_appends\":");
        out.push_str(&self.pending_appends().to_string());
        out.push_str(",\"pending_tombstones\":");
        out.push_str(&self.pending_tombstones().to_string());
        out.push_str(",\"disk_bytes\":");
        out.push_str(&self.disk_bytes().to_string());
        out.push_str(",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            json::push_string(&mut out, &s.file);
            out.push_str(",\"records\":");
            out.push_str(&s.records.to_string());
            out.push_str(",\"bytes\":");
            out.push_str(&s.bytes.to_string());
            out.push('}');
        }
        out.push_str("],\"deltas\":[");
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"file\":");
            json::push_string(&mut out, &d.file);
            out.push_str(",\"records\":");
            out.push_str(&d.records.to_string());
            out.push_str(",\"tombstones\":");
            out.push_str(&d.tombstones.to_string());
            out.push_str(",\"generation\":");
            out.push_str(&d.generation.to_string());
            out.push_str(",\"bytes\":");
            out.push_str(&d.bytes.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Read a store's manifest-level shape: the manifest plus every delta
/// shard (to split records into appends and tombstones). Base shards are
/// *not* opened — use [`crate::read_corpus`] when full checksum
/// validation is wanted.
///
/// # Errors
///
/// [`StoreError::MissingManifest`] when the directory is not a store,
/// plus the usual typed manifest/delta corruption and I/O errors.
pub fn stat_corpus(dir: &Path) -> Result<StoreInfo, StoreError> {
    let manifest = Manifest::load(dir)?;
    let file_bytes = |file: &str| {
        std::fs::metadata(dir.join(file))
            .map(|m| m.len())
            .unwrap_or(0)
    };
    let shards = manifest
        .shards
        .iter()
        .map(|s| ShardInfo {
            file: s.file.clone(),
            records: s.count,
            bytes: file_bytes(&s.file),
        })
        .collect();
    let mut deltas = Vec::with_capacity(manifest.deltas.len());
    for d in &manifest.deltas {
        let records = read_delta_shard(&dir.join(&d.file))?;
        let tombstones = records
            .iter()
            .filter(|r| matches!(r, DeltaRecord::Tombstone(_)))
            .count() as u64;
        deltas.push(DeltaInfo {
            file: d.file.clone(),
            records: d.records,
            tombstones,
            generation: d.generation,
            bytes: file_bytes(&d.file),
        });
    }
    Ok(StoreInfo {
        generation: manifest.generation,
        base_generation: manifest.base_generation,
        live: manifest.total,
        shards,
        deltas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use correlation_sketches::{SketchBuilder, SketchConfig};
    use sketch_table::ColumnPair;

    fn sketch(
        table: &str,
        range: std::ops::Range<usize>,
    ) -> correlation_sketches::CorrelationSketch {
        SketchBuilder::new(SketchConfig::with_size(32)).build(&ColumnPair::new(
            table,
            "k",
            "v",
            range.clone().map(|i| format!("key-{i}")).collect(),
            range.map(|i| i as f64).collect(),
        ))
    }

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("sketch-store-info-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn stat_reflects_pack_append_rm_compact() {
        let dir = TempDir::new("lifecycle");
        let sketches: Vec<_> = (0..6).map(|t| sketch(&format!("t{t}"), 0..40)).collect();
        crate::pack_corpus(
            &dir.0,
            &sketches,
            &crate::PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();

        let info = stat_corpus(&dir.0).unwrap();
        assert_eq!(info.generation, 0);
        assert_eq!(info.live, 6);
        assert_eq!(info.shards.len(), 2);
        assert!(info.deltas.is_empty());
        assert_eq!(info.base_records(), 6);
        assert!(info.disk_bytes() > 0);

        crate::append_corpus(&dir.0, &[sketch("extra", 0..40)], 1).unwrap();
        crate::remove_from_corpus(&dir.0, &["t0/k/v".to_string()], 1).unwrap();
        let info = stat_corpus(&dir.0).unwrap();
        assert_eq!(info.generation, 2);
        assert_eq!(info.live, 6);
        assert_eq!(info.pending_appends(), 1);
        assert_eq!(info.pending_tombstones(), 1);
        assert_eq!(info.deltas.len(), 2);

        crate::compact_corpus(
            &dir.0,
            &crate::PackOptions {
                shards: 2,
                threads: 1,
            },
        )
        .unwrap();
        let info = stat_corpus(&dir.0).unwrap();
        assert_eq!(info.generation, 3);
        assert_eq!(info.base_generation, 3);
        assert_eq!(info.live, 6);
        assert!(info.deltas.is_empty());
    }

    #[test]
    fn json_is_parseable_and_complete() {
        let dir = TempDir::new("json");
        crate::pack_corpus(
            &dir.0,
            &[sketch("a", 0..30)],
            &crate::PackOptions {
                shards: 1,
                threads: 1,
            },
        )
        .unwrap();
        crate::remove_from_corpus(&dir.0, &["a/k/v".to_string()], 1).unwrap();
        let info = stat_corpus(&dir.0).unwrap();
        let text = info.to_json();
        let v = correlation_sketches::json::parse(&text).unwrap();
        let obj = v.as_object("info").unwrap();
        assert_eq!(obj.get("generation").unwrap().as_u64("g").unwrap(), 1);
        assert_eq!(obj.get("live").unwrap().as_u64("live").unwrap(), 0);
        assert_eq!(
            obj.get("pending_tombstones").unwrap().as_u64("t").unwrap(),
            1
        );
        assert_eq!(
            obj.get("deltas").unwrap().as_array("deltas").unwrap().len(),
            1
        );
    }

    #[test]
    fn missing_dir_is_typed_not_io() {
        let err = stat_corpus(Path::new("/definitely/not/a/store")).unwrap_err();
        assert!(matches!(err, StoreError::MissingManifest { .. }));
        let msg = err.to_string();
        assert!(msg.contains("manifest.cskm"), "{msg}");
        assert!(msg.contains("not a packed store"), "{msg}");
    }
}
