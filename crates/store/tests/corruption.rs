//! The corruption battery: every way a shard file or corpus can be
//! damaged must surface as a *typed* [`SketchError`] — never a panic,
//! never a silent partial load.
//!
//! The centerpiece bit-flips every byte of a small shard (each byte with
//! a rotating bit position) and asserts that every single flip is
//! detected.

use correlation_sketches::{
    CorrelationSketch, DeltaRecord, SketchBuilder, SketchConfig, SketchError,
};
use sketch_store::shard::{decode_delta_shard, decode_shard, encode_delta_shard, encode_shard};
use sketch_store::{
    append_corpus, pack_corpus, read_corpus, read_shard, remove_from_corpus, write_delta_shard,
    write_shard, Manifest, PackOptions, StoreError, FORMAT_VERSION, MANIFEST_NAME,
};
use sketch_table::ColumnPair;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cskb-corruption-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sketches(n: usize) -> Vec<CorrelationSketch> {
    let b = SketchBuilder::new(SketchConfig::with_size(8));
    (0..n)
        .map(|t| {
            b.build(&ColumnPair::new(
                format!("t{t}"),
                "k",
                "v",
                (0..40).map(|i| format!("key-{i}")).collect(),
                (0..40).map(|i| (i * (t + 1)) as f64).collect(),
            ))
        })
        .collect()
}

/// Every prefix of a shard file is rejected with a typed error.
#[test]
fn every_truncation_is_detected() {
    let bytes = encode_shard(&sketches(3)).unwrap();
    for cut in 0..bytes.len() {
        match decode_shard(&bytes[..cut]) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. },
            ) => {}
            other => panic!(
                "truncation at {cut}/{} not detected: {other:?}",
                bytes.len()
            ),
        }
    }
}

/// Bit-flip every byte of a small shard (rotating which bit is flipped);
/// every flip must produce a typed error, not a panic and not an Ok.
#[test]
fn every_byte_flip_is_detected() {
    let good = encode_shard(&sketches(2)).unwrap();
    assert!(decode_shard(&good).is_ok());
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 1 << (i % 8);
        match decode_shard(&bad) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. }
                | SketchError::DuplicateId(_),
            ) => {}
            Ok(_) => panic!("flip of byte {i} (bit {}) went undetected", i % 8),
            Err(other) => panic!("flip of byte {i} gave unexpected error {other:?}"),
        }
    }
}

/// Flipping checksum bytes specifically must be diagnosed as a checksum
/// mismatch on the right record.
#[test]
fn flipped_checksum_bytes_name_the_record() {
    let s = sketches(2);
    let bytes = encode_shard(&s).unwrap();
    // Records start after the 12-byte header. Record 0: 4-byte length +
    // payload + 8-byte checksum.
    let len0 = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let ck0_start = 16 + len0;
    for off in ck0_start..ck0_start + 8 {
        let mut bad = bytes.clone();
        bad[off] ^= 0x01;
        match decode_shard(&bad) {
            Err(SketchError::ChecksumMismatch { record: 0, .. }) => {}
            other => panic!("checksum flip at {off}: {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = encode_shard(&sketches(1)).unwrap();

    let mut bad = bytes.clone();
    bad[..4].copy_from_slice(b"JSON");
    assert_eq!(
        decode_shard(&bad).unwrap_err(),
        SketchError::BadMagic { found: *b"JSON" }
    );

    let mut bad = bytes;
    bad[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert_eq!(
        decode_shard(&bad).unwrap_err(),
        SketchError::UnsupportedVersion {
            found: 7,
            supported: FORMAT_VERSION
        }
    );
}

#[test]
fn duplicate_record_ids_are_rejected_on_read() {
    let dir = TempDir::new("dup-read");
    let s = sketches(2);
    // Hand-assemble a corpus whose two shards contain the same sketch.
    write_shard(&dir.path("shard-0000.cskb"), &s).unwrap();
    write_shard(&dir.path("shard-0001.cskb"), &s[..1]).unwrap();
    Manifest::base(
        3,
        vec![
            sketch_store::ShardMeta {
                file: "shard-0000.cskb".into(),
                count: 2,
            },
            sketch_store::ShardMeta {
                file: "shard-0001.cskb".into(),
                count: 1,
            },
        ],
    )
    .save(&dir.0)
    .unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(id)) if id == "t0/k/v"
        ),
        "{err}"
    );
    // Duplicates within a single shard are equally fatal.
    write_shard(&dir.path("solo.cskb"), &[s[0].clone(), s[0].clone()]).unwrap();
    let loaded = read_shard(&dir.path("solo.cskb")).unwrap();
    assert_eq!(loaded.len(), 2, "shard read is id-agnostic");
    Manifest::base(
        2,
        vec![sketch_store::ShardMeta {
            file: "solo.cskb".into(),
            count: 2,
        }],
    )
    .save(&dir.0)
    .unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::DuplicateId(_))
    ));
}

#[test]
fn truncated_shard_file_on_disk_is_detected() {
    let dir = TempDir::new("truncated-file");
    let s = sketches(4);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 1,
            threads: 1,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0000.cskb");
    let full = std::fs::read(&shard).unwrap();
    for cut in [0, 3, 11, full.len() / 2, full.len() - 1] {
        std::fs::write(&shard, &full[..cut]).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(
            err.as_sketch_error().is_some(),
            "cut={cut} must be typed corruption, got {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let dir = TempDir::new("trailing");
    let s = sketches(2);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 1,
            threads: 1,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0000.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes.extend_from_slice(b"extra");
    std::fs::write(&shard, bytes).unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::Corrupt(_))
    ));
}

#[test]
fn corrupt_manifest_is_typed() {
    let dir = TempDir::new("manifest");
    pack_corpus(&dir.0, &sketches(2), &PackOptions::default()).unwrap();
    std::fs::write(dir.path(MANIFEST_NAME), "here be dragons\n").unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::Corrupt(_))
    ));
    std::fs::remove_file(dir.path(MANIFEST_NAME)).unwrap();
    // A directory with no manifest at all is typed as "not a store", so
    // front ends never print a raw `No such file or directory` string.
    assert!(matches!(
        read_corpus(&dir.0, 1),
        Err(StoreError::MissingManifest { .. })
    ));
}

/// A mutated corpus fixture: 4 base sketches, one delta appending two
/// more, one delta tombstoning a base sketch.
fn mutated_store(tag: &str) -> (TempDir, Vec<CorrelationSketch>) {
    let dir = TempDir::new(tag);
    let s = sketches(6);
    pack_corpus(
        &dir.0,
        &s[..4],
        &PackOptions {
            shards: 2,
            threads: 1,
        },
    )
    .unwrap();
    append_corpus(&dir.0, &s[4..6], 1).unwrap();
    remove_from_corpus(&dir.0, &[s[1].id().to_string()], 1).unwrap();
    (dir, s)
}

/// Every prefix of a delta shard file is rejected with a typed error.
#[test]
fn every_delta_truncation_is_detected() {
    let s = sketches(3);
    let bytes = encode_delta_shard(&[
        DeltaRecord::Sketch(s[0].clone()),
        DeltaRecord::Tombstone(s[1].id().to_string()),
        DeltaRecord::Sketch(s[2].clone()),
    ])
    .unwrap();
    for cut in 0..bytes.len() {
        match decode_delta_shard(&bytes[..cut]) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. },
            ) => {}
            other => panic!(
                "delta truncation at {cut}/{} not detected: {other:?}",
                bytes.len()
            ),
        }
    }
}

/// Bit-flip every byte of a delta shard holding both record kinds
/// (rotating which bit is flipped); every flip must produce a typed
/// error, not a panic and not an Ok.
#[test]
fn every_delta_byte_flip_is_detected() {
    let s = sketches(2);
    let good = encode_delta_shard(&[
        DeltaRecord::Sketch(s[0].clone()),
        DeltaRecord::Tombstone(s[1].id().to_string()),
    ])
    .unwrap();
    assert!(decode_delta_shard(&good).is_ok());
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 1 << (i % 8);
        match decode_delta_shard(&bad) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. }
                | SketchError::DuplicateId(_),
            ) => {}
            Ok(_) => panic!("delta flip of byte {i} (bit {}) went undetected", i % 8),
            Err(other) => panic!("delta flip of byte {i} gave unexpected error {other:?}"),
        }
    }
}

/// Truncating a delta shard *file* of a mutated corpus surfaces as typed
/// corruption naming the delta file — never a partial replay.
#[test]
fn truncated_delta_file_on_disk_is_detected() {
    let (dir, _) = mutated_store("delta-truncated");
    let delta = dir.path("delta-000001.cskb");
    let full = std::fs::read(&delta).unwrap();
    for cut in [0, 5, 11, full.len() / 2, full.len() - 1] {
        std::fs::write(&delta, &full[..cut]).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(
            err.as_sketch_error().is_some(),
            "cut={cut} must be typed corruption, got {err}"
        );
        assert!(
            err.to_string().contains("delta-000001.cskb"),
            "cut={cut}: {err}"
        );
    }
}

/// A tombstone naming an id that is not live at its point of the log is
/// the typed TombstoneForUnknownId — both via the write path and when a
/// hand-assembled store smuggles one in.
#[test]
fn tombstone_for_unknown_id_is_typed() {
    let (dir, s) = mutated_store("tomb-unknown");
    // Write path: unknown and already-removed ids are rejected up front.
    for id in ["ghost/k/v", "t1/k/v"] {
        let err = remove_from_corpus(&dir.0, &[id.to_string()], 1).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::TombstoneForUnknownId(bad)) if bad == id
            ),
            "{err}"
        );
    }
    // Read path: overwrite the tombstone delta with one for an id that
    // never existed; the replay must fail typed, naming the delta file.
    write_delta_shard(
        &dir.path("delta-000002.cskb"),
        &[DeltaRecord::Tombstone("never/k/v".into())],
    )
    .unwrap();
    for threads in [1usize, 2, 7] {
        let err = read_corpus(&dir.0, threads).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::TombstoneForUnknownId(id)) if id == "never/k/v"
            ),
            "threads={threads}: {err}"
        );
        assert!(err.to_string().contains("delta-000002.cskb"), "{err}");
    }
    let _ = s;
}

/// Stale and duplicate generation numbers in the manifest are the typed
/// StaleGeneration — a mis-merged manifest can never replay out of order.
#[test]
fn stale_and_duplicate_manifest_generations_are_typed() {
    let (dir, _) = mutated_store("stale-gen");
    let manifest_text = std::fs::read_to_string(dir.path(MANIFEST_NAME)).unwrap();
    // Duplicate generation: stamp the second delta with the first's.
    let dup = manifest_text.replace("delta-000002.cskb 1 2", "delta-000002.cskb 1 1");
    std::fs::write(dir.path(MANIFEST_NAME), dup).unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::StaleGeneration {
                found: 1,
                expected: 2
            })
        ),
        "{err}"
    );
    // Regressed generation: delta stamped at the base generation.
    let stale = manifest_text.replace("delta-000001.cskb 2 1", "delta-000001.cskb 2 0");
    std::fs::write(dir.path(MANIFEST_NAME), stale).unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::StaleGeneration { found: 0, .. })
        ),
        "{err}"
    );
    // Generation header beyond the last delta.
    let ahead = manifest_text.replace("generation 2", "generation 9");
    std::fs::write(dir.path(MANIFEST_NAME), ahead).unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::StaleGeneration { .. } | SketchError::Corrupt(_))
        ),
        "{err}"
    );
}

/// A manifest referencing shard files that are missing on disk is the
/// typed MissingShard naming the file — for base and delta shards alike.
#[test]
fn manifest_referencing_missing_files_is_typed() {
    let (dir, _) = mutated_store("missing-ref");
    for (victim, threads) in [("shard-0001.cskb", 1usize), ("delta-000002.cskb", 2)] {
        let path = dir.path(victim);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        let err = read_corpus(&dir.0, threads).unwrap_err();
        assert!(
            matches!(&err, StoreError::MissingShard { file } if file == victim),
            "{victim}: {err}"
        );
        assert!(err.to_string().contains(victim), "{err}");
        assert!(err.as_sketch_error().is_none(), "not corruption: {err}");
        std::fs::write(&path, bytes).unwrap();
    }
    // Restored intact, the corpus reads fine again.
    assert_eq!(read_corpus(&dir.0, 2).unwrap().len(), 5);
}

/// A duplicate id smuggled in through a delta append (bypassing the
/// write-path check) is still rejected at read time.
#[test]
fn duplicate_append_id_rejected_on_read() {
    let (dir, s) = mutated_store("dup-append");
    // Overwrite the append delta so it re-appends a live base sketch.
    write_delta_shard(
        &dir.path("delta-000001.cskb"),
        &[
            DeltaRecord::Sketch(s[4].clone()),
            DeltaRecord::Sketch(s[0].clone()),
        ],
    )
    .unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(id)) if id == "t0/k/v"
        ),
        "{err}"
    );
}

/// Swapping a base shard in where a delta is expected (and vice versa)
/// is typed corruption naming the kind mismatch.
#[test]
fn shard_kind_swaps_are_detected() {
    let (dir, s) = mutated_store("kind-swap");
    write_shard(&dir.path("delta-000001.cskb"), &s[4..6]).unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::Corrupt(msg)) if msg.contains("base shard")
        ),
        "{err}"
    );
}

/// Parallel readers surface the same typed error as serial ones.
#[test]
fn corruption_is_detected_at_every_thread_count() {
    let dir = TempDir::new("parallel-detect");
    let s = sketches(8);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 4,
            threads: 2,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0002.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() - 9; // inside the last record's checksum
    bytes[mid] ^= 0x20;
    std::fs::write(&shard, bytes).unwrap();
    for threads in [1usize, 2, 7, 16] {
        let err = read_corpus(&dir.0, threads).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::ChecksumMismatch { .. })
            ),
            "threads={threads}: {err}"
        );
        // The error names the offending shard so an operator of an
        // N-shard store knows which file to replace.
        assert!(
            err.to_string().contains("shard-0002.cskb"),
            "threads={threads}: {err}"
        );
    }
}
