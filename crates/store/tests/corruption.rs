//! The corruption battery: every way a shard file or corpus can be
//! damaged must surface as a *typed* [`SketchError`] — never a panic,
//! never a silent partial load.
//!
//! The centerpiece bit-flips every byte of a small shard (each byte with
//! a rotating bit position) and asserts that every single flip is
//! detected.

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig, SketchError};
use sketch_store::shard::{decode_shard, encode_shard};
use sketch_store::{
    pack_corpus, read_corpus, read_shard, write_shard, Manifest, PackOptions, StoreError,
    FORMAT_VERSION, MANIFEST_NAME,
};
use sketch_table::ColumnPair;

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("cskb-corruption-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> std::path::PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn sketches(n: usize) -> Vec<CorrelationSketch> {
    let b = SketchBuilder::new(SketchConfig::with_size(8));
    (0..n)
        .map(|t| {
            b.build(&ColumnPair::new(
                format!("t{t}"),
                "k",
                "v",
                (0..40).map(|i| format!("key-{i}")).collect(),
                (0..40).map(|i| (i * (t + 1)) as f64).collect(),
            ))
        })
        .collect()
}

/// Every prefix of a shard file is rejected with a typed error.
#[test]
fn every_truncation_is_detected() {
    let bytes = encode_shard(&sketches(3)).unwrap();
    for cut in 0..bytes.len() {
        match decode_shard(&bytes[..cut]) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. },
            ) => {}
            other => panic!(
                "truncation at {cut}/{} not detected: {other:?}",
                bytes.len()
            ),
        }
    }
}

/// Bit-flip every byte of a small shard (rotating which bit is flipped);
/// every flip must produce a typed error, not a panic and not an Ok.
#[test]
fn every_byte_flip_is_detected() {
    let good = encode_shard(&sketches(2)).unwrap();
    assert!(decode_shard(&good).is_ok());
    for i in 0..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 1 << (i % 8);
        match decode_shard(&bad) {
            Err(
                SketchError::Truncated { .. }
                | SketchError::Corrupt(_)
                | SketchError::BadMagic { .. }
                | SketchError::UnsupportedVersion { .. }
                | SketchError::ChecksumMismatch { .. }
                | SketchError::DuplicateId(_),
            ) => {}
            Ok(_) => panic!("flip of byte {i} (bit {}) went undetected", i % 8),
            Err(other) => panic!("flip of byte {i} gave unexpected error {other:?}"),
        }
    }
}

/// Flipping checksum bytes specifically must be diagnosed as a checksum
/// mismatch on the right record.
#[test]
fn flipped_checksum_bytes_name_the_record() {
    let s = sketches(2);
    let bytes = encode_shard(&s).unwrap();
    // Records start after the 12-byte header. Record 0: 4-byte length +
    // payload + 8-byte checksum.
    let len0 = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let ck0_start = 16 + len0;
    for off in ck0_start..ck0_start + 8 {
        let mut bad = bytes.clone();
        bad[off] ^= 0x01;
        match decode_shard(&bad) {
            Err(SketchError::ChecksumMismatch { record: 0, .. }) => {}
            other => panic!("checksum flip at {off}: {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_typed() {
    let bytes = encode_shard(&sketches(1)).unwrap();

    let mut bad = bytes.clone();
    bad[..4].copy_from_slice(b"JSON");
    assert_eq!(
        decode_shard(&bad).unwrap_err(),
        SketchError::BadMagic { found: *b"JSON" }
    );

    let mut bad = bytes;
    bad[4..6].copy_from_slice(&7u16.to_le_bytes());
    assert_eq!(
        decode_shard(&bad).unwrap_err(),
        SketchError::UnsupportedVersion {
            found: 7,
            supported: FORMAT_VERSION
        }
    );
}

#[test]
fn duplicate_record_ids_are_rejected_on_read() {
    let dir = TempDir::new("dup-read");
    let s = sketches(2);
    // Hand-assemble a corpus whose two shards contain the same sketch.
    write_shard(&dir.path("shard-0000.cskb"), &s).unwrap();
    write_shard(&dir.path("shard-0001.cskb"), &s[..1]).unwrap();
    Manifest {
        total: 3,
        shards: vec![
            sketch_store::ShardMeta {
                file: "shard-0000.cskb".into(),
                count: 2,
            },
            sketch_store::ShardMeta {
                file: "shard-0001.cskb".into(),
                count: 1,
            },
        ],
    }
    .save(&dir.0)
    .unwrap();
    let err = read_corpus(&dir.0, 1).unwrap_err();
    assert!(
        matches!(
            err.as_sketch_error(),
            Some(SketchError::DuplicateId(id)) if id == "t0/k/v"
        ),
        "{err}"
    );
    // Duplicates within a single shard are equally fatal.
    write_shard(&dir.path("solo.cskb"), &[s[0].clone(), s[0].clone()]).unwrap();
    let loaded = read_shard(&dir.path("solo.cskb")).unwrap();
    assert_eq!(loaded.len(), 2, "shard read is id-agnostic");
    Manifest {
        total: 2,
        shards: vec![sketch_store::ShardMeta {
            file: "solo.cskb".into(),
            count: 2,
        }],
    }
    .save(&dir.0)
    .unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::DuplicateId(_))
    ));
}

#[test]
fn truncated_shard_file_on_disk_is_detected() {
    let dir = TempDir::new("truncated-file");
    let s = sketches(4);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 1,
            threads: 1,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0000.cskb");
    let full = std::fs::read(&shard).unwrap();
    for cut in [0, 3, 11, full.len() / 2, full.len() - 1] {
        std::fs::write(&shard, &full[..cut]).unwrap();
        let err = read_corpus(&dir.0, 1).unwrap_err();
        assert!(
            err.as_sketch_error().is_some(),
            "cut={cut} must be typed corruption, got {err}"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let dir = TempDir::new("trailing");
    let s = sketches(2);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 1,
            threads: 1,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0000.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    bytes.extend_from_slice(b"extra");
    std::fs::write(&shard, bytes).unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::Corrupt(_))
    ));
}

#[test]
fn corrupt_manifest_is_typed() {
    let dir = TempDir::new("manifest");
    pack_corpus(&dir.0, &sketches(2), &PackOptions::default()).unwrap();
    std::fs::write(dir.path(MANIFEST_NAME), "here be dragons\n").unwrap();
    assert!(matches!(
        read_corpus(&dir.0, 1).unwrap_err().as_sketch_error(),
        Some(SketchError::Corrupt(_))
    ));
    std::fs::remove_file(dir.path(MANIFEST_NAME)).unwrap();
    assert!(matches!(read_corpus(&dir.0, 1), Err(StoreError::Io { .. })));
}

/// Parallel readers surface the same typed error as serial ones.
#[test]
fn corruption_is_detected_at_every_thread_count() {
    let dir = TempDir::new("parallel-detect");
    let s = sketches(8);
    pack_corpus(
        &dir.0,
        &s,
        &PackOptions {
            shards: 4,
            threads: 2,
        },
    )
    .unwrap();
    let shard = dir.path("shard-0002.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() - 9; // inside the last record's checksum
    bytes[mid] ^= 0x20;
    std::fs::write(&shard, bytes).unwrap();
    for threads in [1usize, 2, 7, 16] {
        let err = read_corpus(&dir.0, threads).unwrap_err();
        assert!(
            matches!(
                err.as_sketch_error(),
                Some(SketchError::ChecksumMismatch { .. })
            ),
            "threads={threads}: {err}"
        );
        // The error names the offending shard so an operator of an
        // N-shard store knows which file to replace.
        assert!(
            err.to_string().contains("shard-0002.cskb"),
            "threads={threads}: {err}"
        );
    }
}
