//! Rank transform with average-tie handling, shared by Spearman's rank
//! correlation and the RIN transformation.

/// Assign 1-based ranks to `data`, giving tied values the average of the
/// ranks they span ("fractional ranking", the convention used by
/// Spearman's ρ).
///
/// Example: `[10, 20, 20, 30]` → `[1.0, 2.5, 2.5, 4.0]`.
///
/// NaNs are not meaningful to rank; callers must filter them first (the
/// sketch join layer never produces NaN pairs). If NaNs are present they
/// sort last and receive the largest ranks, deterministically.
#[must_use]
pub fn average_ranks(data: &[f64]) -> Vec<f64> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    // Total order: NaN sorts last; total_cmp gives a deterministic order.
    order.sort_by(|&a, &b| data[a].total_cmp(&data[b]));

    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the run of ties [i, j).
        let mut j = i + 1;
        while j < n && data[order[j]].total_cmp(&data[order[i]]) == std::cmp::Ordering::Equal {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &idx in &order[i..j] {
            ranks[idx] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties_is_a_permutation_of_1_to_n() {
        let r = average_ranks(&[30.0, 10.0, 20.0]);
        assert_eq!(r, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn ties_get_average_rank() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn all_equal_values_share_middle_rank() {
        let r = average_ranks(&[7.0; 5]);
        assert_eq!(r, vec![3.0; 5]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn rank_sum_is_invariant() {
        // Σ ranks = n(n+1)/2 regardless of ties.
        let data = [5.0, 1.0, 5.0, 2.0, 2.0, 2.0, 9.0];
        let s: f64 = average_ranks(&data).iter().sum();
        let n = data.len() as f64;
        assert!((s - n * (n + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_monotone_in_values() {
        let data = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0, -2.0];
        let r = average_ranks(&data);
        for i in 0..data.len() {
            for j in 0..data.len() {
                if data[i] < data[j] {
                    assert!(r[i] < r[j]);
                }
            }
        }
    }

    #[test]
    fn negative_values_rank_correctly() {
        let r = average_ranks(&[-5.0, 0.0, -10.0]);
        assert_eq!(r, vec![2.0, 3.0, 1.0]);
    }
}
