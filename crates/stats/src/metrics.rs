//! Evaluation metrics: RMSE for estimation accuracy (Figure 4), mean
//! average precision and nDCG for ranking quality (Table 1, Figure 5).

/// Arithmetic mean; 0.0 for an empty slice (callers treat empty metric
/// sets explicitly).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Root mean squared error between paired estimate/truth slices.
///
/// # Panics
///
/// Panics if the slices differ in length (programmer error in a harness).
#[must_use]
pub fn rmse(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "rmse requires paired slices");
    if estimates.is_empty() {
        return 0.0;
    }
    let mse = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimates.len() as f64;
    mse.sqrt()
}

/// Average precision of a ranked list with binary relevance judgments.
///
/// `relevant[i]` says whether the item at rank `i` (0-based, best first)
/// is relevant. AP = mean over relevant positions of precision@that-rank.
/// Returns `None` when the list contains no relevant item (the query is
/// then conventionally excluded from MAP, matching trec-style evaluation).
#[must_use]
pub fn average_precision(relevant: &[bool]) -> Option<f64> {
    let mut hits = 0usize;
    let mut sum_prec = 0.0;
    for (i, &rel) in relevant.iter().enumerate() {
        if rel {
            hits += 1;
            sum_prec += hits as f64 / (i + 1) as f64;
        }
    }
    (hits > 0).then(|| sum_prec / hits as f64)
}

/// Recall at cutoff `k` of a ranked list with binary relevance
/// judgments: the fraction of *all* relevant items that appear in the
/// top `k` (`relevant[i]` says whether the item at rank `i`, 0-based and
/// best-first, is relevant). Returns `None` when the list contains no
/// relevant item, so such queries can be excluded from averages like the
/// MAP/nDCG conventions above.
#[must_use]
pub fn recall_at_k(relevant: &[bool], k: usize) -> Option<f64> {
    let total = relevant.iter().filter(|&&r| r).count();
    (total > 0).then(|| relevant.iter().take(k).filter(|&&r| r).count() as f64 / total as f64)
}

/// Discounted cumulative gain at cutoff `k` for graded relevance `gains`
/// (best-first ranked order): `Σ_{i<k} gain_i / log2(i + 2)`.
#[must_use]
pub fn dcg_at_k(gains: &[f64], k: usize) -> f64 {
    gains
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &g)| g / ((i + 2) as f64).log2())
        .sum()
}

/// Normalized DCG at cutoff `k`: DCG of the ranking divided by the DCG of
/// the ideal (descending-gain) ranking of the same items. Returns `None`
/// when the ideal DCG is zero (all gains zero).
#[must_use]
pub fn ndcg_at_k(gains: &[f64], k: usize) -> Option<f64> {
    let dcg = dcg_at_k(gains, k);
    let mut ideal: Vec<f64> = gains.to_vec();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg = dcg_at_k(&ideal, k);
    (idcg > 0.0).then(|| dcg / idcg)
}

/// Histogram of `values` over `bins` equal-width buckets spanning
/// `[lo, hi]`; values outside the range are clamped into the end buckets.
/// Used for the Figure 5 score distributions.
#[must_use]
pub fn histogram(values: &[f64], bins: usize, lo: f64, hi: f64) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram needs a non-empty range");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &v in values {
        let idx = (((v - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn rmse_length_mismatch_panics() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        assert_eq!(average_precision(&[true, true, false, false]), Some(1.0));
    }

    #[test]
    fn ap_worst_ranking() {
        // Single relevant item at the last of 4 positions: AP = 1/4.
        assert_eq!(average_precision(&[false, false, false, true]), Some(0.25));
    }

    #[test]
    fn ap_textbook_example() {
        // Relevant at ranks 1, 3, 5 → AP = (1/1 + 2/3 + 3/5)/3.
        let ap = average_precision(&[true, false, true, false, true]).unwrap();
        assert!((ap - (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ap_empty_or_no_relevant_is_none() {
        assert_eq!(average_precision(&[]), None);
        assert_eq!(average_precision(&[false, false]), None);
    }

    #[test]
    fn recall_counts_relevant_in_prefix() {
        let rel = [true, false, true, false, true];
        assert_eq!(recall_at_k(&rel, 1), Some(1.0 / 3.0));
        assert_eq!(recall_at_k(&rel, 3), Some(2.0 / 3.0));
        assert_eq!(recall_at_k(&rel, 5), Some(1.0));
        assert_eq!(recall_at_k(&rel, 100), Some(1.0));
        assert_eq!(recall_at_k(&rel, 0), Some(0.0));
        assert_eq!(recall_at_k(&[false, false], 2), None);
        assert_eq!(recall_at_k(&[], 2), None);
    }

    #[test]
    fn dcg_discounts_by_position() {
        let d = dcg_at_k(&[3.0, 2.0, 1.0], 3);
        let expected = 3.0 / 1.0 + 2.0 / 3f64.log2() + 1.0 / 2.0;
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn dcg_cutoff_truncates() {
        assert_eq!(dcg_at_k(&[1.0, 1.0, 1.0], 1), 1.0);
        assert_eq!(dcg_at_k(&[], 5), 0.0);
    }

    #[test]
    fn ndcg_of_ideal_ranking_is_one() {
        let gains = [0.9, 0.7, 0.5, 0.1];
        assert!((ndcg_at_k(&gains, 4).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_of_reversed_ranking_is_less_than_one() {
        let gains = [0.1, 0.5, 0.7, 0.9];
        let n = ndcg_at_k(&gains, 4).unwrap();
        assert!(n < 1.0 && n > 0.0);
    }

    #[test]
    fn ndcg_all_zero_gains_is_none() {
        assert_eq!(ndcg_at_k(&[0.0, 0.0], 2), None);
    }

    #[test]
    fn ndcg_invariant_to_items_beyond_cutoff_order() {
        let a = ndcg_at_k(&[0.9, 0.8, 0.1, 0.2], 2).unwrap();
        let b = ndcg_at_k(&[0.9, 0.8, 0.2, 0.1], 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[0.05, 0.15, 0.95, 1.5, -0.2], 10, 0.0, 1.0);
        assert_eq!(h.iter().sum::<usize>(), 5);
        assert_eq!(h[0], 2); // 0.05 and clamped −0.2
        assert_eq!(h[1], 1);
        assert_eq!(h[9], 2); // 0.95 and clamped 1.5
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = histogram(&[1.0], 0, 0.0, 1.0);
    }
}
