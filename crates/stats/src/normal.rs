//! Standard normal distribution functions: `Φ` (CDF) and `Φ⁻¹` (quantile).
//!
//! `Φ⁻¹` is the *rankit* building block of the Rank-based Inverse Normal
//! (RIN) correlation (paper Section 5.3, estimator 3). Implemented from
//! scratch: `Φ` via a Chebyshev-fitted complementary error function and
//! `Φ⁻¹` via Acklam's rational approximation refined with one Halley step;
//! both are accurate to ~1e-7 absolute error, ample for rankit scores and
//! confidence-interval critical values.

/// Complementary error function, |fractional error| < 1.2e-7 everywhere
/// (Numerical Recipes' Chebyshev fit), sign-symmetric.
fn erfc_cheb(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc_cheb(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(x)`.
#[must_use]
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Returns `-∞`/`+∞` for `p = 0`/`p = 1` and NaN outside `[0, 1]`.
/// Acklam's rational approximation (relative error < 1.15e-9) followed by
/// one Halley refinement step against [`normal_cdf`]; overall accuracy is
/// limited by the ~1e-7 absolute error of the Chebyshev-fitted CDF, which
/// is far below what any estimator in this workspace can resolve.
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }

    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        // Central region.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail (by symmetry).
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    };

    // One Halley refinement step sharpens the tail accuracy.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((normal_cdf(1.0) - 0.841_344_746_068_543).abs() < 1e-7);
        assert!((normal_cdf(-1.0) - 0.158_655_253_931_457).abs() < 1e-7);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-7);
        assert!((normal_cdf(3.0) - 0.998_650_101_968_37).abs() < 1e-7);
    }

    #[test]
    fn cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.5, 5.0] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7, "x={x}");
        }
    }

    #[test]
    fn inverse_known_points() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.025) + 1.959_963_984_540_054).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.841_344_746_068_543) - 1.0).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.95) - 1.644_853_626_951_472).abs() < 1e-6);
    }

    #[test]
    fn inverse_is_antisymmetric() {
        for &p in &[0.01, 0.1, 0.25, 0.4] {
            let a = inverse_normal_cdf(p);
            let b = inverse_normal_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-9, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn roundtrip_cdf_inverse() {
        for i in 1..100 {
            let p = f64::from(i) / 100.0;
            let x = inverse_normal_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(inverse_normal_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inverse_normal_cdf(1.0), f64::INFINITY);
        assert!(inverse_normal_cdf(-0.1).is_nan());
        assert!(inverse_normal_cdf(1.1).is_nan());
        assert!(inverse_normal_cdf(f64::NAN).is_nan());
    }

    #[test]
    fn deep_tails_are_monotone_and_finite() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..=50 {
            let p = f64::from(i) * 1e-6;
            let x = inverse_normal_cdf(p);
            assert!(x.is_finite());
            assert!(x > prev, "non-monotone at p={p}");
            prev = x;
        }
    }

    #[test]
    fn pdf_is_standard_normal_density() {
        assert!((normal_pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-15);
        assert!((normal_pdf(1.0) - 0.241_970_724_519_143_37).abs() < 1e-15);
    }
}
