//! Rank-based Inverse Normal (RIN) correlation (paper Section 5.3,
//! estimator 3; Bishara & Hittner 2015).
//!
//! Values are replaced by their *rankit* scores
//! `h(x) = Φ⁻¹((r(x) − 1/2) / n)` and Pearson's correlation is computed on
//! the transformed values. The transform gaussianizes arbitrary marginals,
//! which reduces the estimator error inflation caused by heavy tails.

use crate::error::StatsError;
use crate::normal::inverse_normal_cdf;
use crate::pearson::pearson;
use crate::rank::average_ranks;

/// Apply the rankit transformation `Φ⁻¹((r(x) − 1/2)/n)` to `data`.
///
/// Uses average ranks for ties, so tied inputs map to identical scores.
/// Outputs are always finite: the argument of `Φ⁻¹` lies in
/// `[1/(2n), 1 − 1/(2n)]`.
#[must_use]
pub fn rankit_transform(data: &[f64]) -> Vec<f64> {
    let n = data.len() as f64;
    average_ranks(data)
        .into_iter()
        .map(|r| inverse_normal_cdf((r - 0.5) / n))
        .collect()
}

/// RIN correlation: Pearson's correlation of the rankit transforms.
///
/// # Errors
///
/// Same failure modes as [`pearson`].
pub fn rin_correlation(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let hx = rankit_transform(x);
    let hy = rankit_transform(y);
    pearson(&hx, &hy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rankit_outputs_are_finite_and_symmetric() {
        let data: Vec<f64> = (1..=9).map(f64::from).collect();
        let h = rankit_transform(&data);
        assert!(h.iter().all(|v| v.is_finite()));
        // Odd count, distinct values: middle value maps to Φ⁻¹(0.5) = 0,
        // and scores are antisymmetric around it (up to the ~1e-7 CDF
        // approximation error).
        assert!(h[4].abs() < 1e-6);
        for i in 0..4 {
            assert!((h[i] + h[8 - i]).abs() < 1e-9, "i={i}");
        }
    }

    #[test]
    fn rankit_is_monotone() {
        let data = [5.0, -2.0, 100.0, 0.1, 3.0];
        let h = rankit_transform(&data);
        for i in 0..data.len() {
            for j in 0..data.len() {
                if data[i] < data[j] {
                    assert!(h[i] < h[j]);
                }
            }
        }
    }

    #[test]
    fn ties_map_to_identical_scores() {
        let h = rankit_transform(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(h[1], h[2]);
    }

    #[test]
    fn rin_equals_one_for_monotone_relationship() {
        let x: Vec<f64> = (1..=25).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v.sqrt()).collect();
        assert!((rin_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rin_matches_spearman_sign() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0];
        let y = [9.0, 4.0, 8.0, 1.0, 7.0, 0.5, 6.0];
        let rin = rin_correlation(&x, &y).unwrap();
        let rho = crate::spearman::spearman(&x, &y).unwrap();
        assert_eq!(rin.signum(), rho.signum());
    }

    #[test]
    fn rin_is_invariant_under_monotone_transforms() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 9.0, 1.0, 7.0];
        let a = rin_correlation(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let b = rin_correlation(&x2, &y).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn rin_tames_extreme_outliers() {
        let mut x: Vec<f64> = (1..=40).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v + 0.5).collect();
        x.push(1e9);
        y.push(-1e9);
        let rin = rin_correlation(&x, &y).unwrap();
        let r = crate::pearson::pearson(&x, &y).unwrap();
        assert!(rin > 0.7, "rin={rin}");
        assert!(r < 0.0, "raw pearson destroyed by the outlier: {r}");
    }

    #[test]
    fn length_mismatch_error() {
        assert!(matches!(
            rin_correlation(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { .. })
        ));
    }
}
