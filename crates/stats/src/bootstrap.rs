//! `PM1` bootstrap correlation estimator and the modified percentile
//! bootstrap confidence interval (paper Section 5.3, estimator 5, and the
//! `ci_b` risk factor of Section 4.4; Wilcox 1996).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::ci::ConfidenceInterval;
use crate::error::{validate_pairs, StatsError};
use crate::normal::normal_cdf;
use crate::pearson::pearson;

/// Tuning knobs for the PM1 bootstrap.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Resamples drawn before the adaptive stopping rule may trigger.
    pub min_resamples: usize,
    /// Hard cap on resamples.
    pub max_resamples: usize,
    /// The paper's stopping rule: stop once the probability of the next
    /// resample changing the running mean by more than this threshold…
    pub mean_change_threshold: f64,
    /// …falls below this probability (paper: 0.05% = 5e-4).
    pub stop_probability: f64,
    /// RNG seed (the estimator is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            min_resamples: 100,
            max_resamples: 10_000,
            mean_change_threshold: 0.01,
            stop_probability: 5e-4,
            seed: 0x5eed,
        }
    }
}

/// Outcome of a PM1 bootstrap run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Mean of the resampled Pearson correlations — the PM1 point estimate.
    pub estimate: f64,
    /// Number of successful resamples actually drawn.
    pub resamples: usize,
    /// Sample standard deviation of the resampled correlations.
    pub std_dev: f64,
}

/// Reusable buffers for the bootstrap estimators and intervals. One
/// scratch per worker amortizes the per-candidate allocations away on
/// the query hot path; results are identical to the allocating variants
/// (the buffers are resized and overwritten before every use), so
/// scratch reuse never affects determinism.
#[derive(Debug, Default, Clone)]
pub struct BootstrapScratch {
    bx: Vec<f64>,
    by: Vec<f64>,
    rs: Vec<f64>,
}

impl BootstrapScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fill `bx`/`by` with one resample (with replacement) of the paired
/// sample.
fn fill_resample(x: &[f64], y: &[f64], rng: &mut StdRng, bx: &mut [f64], by: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let j = rng.random_range(0..n);
        bx[i] = x[j];
        by[i] = y[j];
    }
}

/// Draw one bootstrap resample (with replacement) of the paired sample and
/// compute its Pearson correlation; `None` when the resample is degenerate
/// (e.g. it picked a single index n times).
fn resample_pearson(
    x: &[f64],
    y: &[f64],
    rng: &mut StdRng,
    bx: &mut [f64],
    by: &mut [f64],
) -> Option<f64> {
    fill_resample(x, y, rng, bx, by);
    pearson(bx, by).ok()
}

/// PM1 bootstrap estimate of Pearson's correlation.
///
/// Repeatedly resamples the paired data with replacement, recomputes the
/// Pearson sample correlation, and returns the running mean. Instead of a
/// fixed resample budget, it implements the paper's adaptive rule: stop as
/// soon as the (normal-approximation) probability that one more resample
/// moves the mean by more than `mean_change_threshold` drops below
/// `stop_probability`.
///
/// # Errors
///
/// Propagates the validation errors of [`pearson`]; additionally returns
/// [`StatsError::ZeroVariance`] if every resample is degenerate.
pub fn pm1_bootstrap(
    x: &[f64],
    y: &[f64],
    cfg: &BootstrapConfig,
) -> Result<BootstrapResult, StatsError> {
    pm1_bootstrap_with_scratch(x, y, cfg, &mut BootstrapScratch::new())
}

/// As [`pm1_bootstrap`], reusing caller-owned resample buffers.
/// Bit-identical to the allocating variant for every scratch state.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_bootstrap_with_scratch(
    x: &[f64],
    y: &[f64],
    cfg: &BootstrapConfig,
    scratch: &mut BootstrapScratch,
) -> Result<BootstrapResult, StatsError> {
    validate_pairs(x, y, 2)?;
    // Fail fast if the full sample is degenerate.
    pearson(x, y)?;

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    scratch.bx.clear();
    scratch.bx.resize(x.len(), 0.0);
    scratch.by.clear();
    scratch.by.resize(y.len(), 0.0);
    let (bx, by) = (&mut scratch.bx, &mut scratch.by);

    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.max_resamples.saturating_mul(2);

    while count < cfg.max_resamples && attempts < max_attempts {
        attempts += 1;
        let Some(r) = resample_pearson(x, y, &mut rng, bx, by) else {
            continue;
        };
        count += 1;
        sum += r;
        sum_sq += r * r;

        if count >= cfg.min_resamples {
            let mean = sum / count as f64;
            let var = (sum_sq / count as f64 - mean * mean).max(0.0);
            let sd = var.sqrt();
            if sd == 0.0 {
                break;
            }
            // The next resample r* changes the mean by (r* − mean)/(count+1).
            // P(|change| > θ) = P(|r* − mean| > θ(count+1))
            //                 ≈ 2(1 − Φ(θ(count+1)/sd)).
            let z = cfg.mean_change_threshold * (count as f64 + 1.0) / sd;
            let p_change = 2.0 * (1.0 - normal_cdf(z));
            if p_change < cfg.stop_probability {
                break;
            }
        }
    }

    if count == 0 {
        return Err(StatsError::ZeroVariance);
    }
    let mean = sum / count as f64;
    let var = (sum_sq / count as f64 - mean * mean).max(0.0);
    Ok(BootstrapResult {
        estimate: mean.clamp(-1.0, 1.0),
        resamples: count,
        std_dev: var.sqrt(),
    })
}

/// Number of bootstrap replicates used by the modified percentile interval.
const PM1_CI_REPLICATES: usize = 599;

/// Wilcox's sample-size-dependent order-statistic indices (1-based) for the
/// 95% modified percentile bootstrap interval over 599 replicates.
fn pm1_ci_indices(n: usize) -> (usize, usize) {
    match n {
        0..=39 => (7, 593),
        40..=79 => (8, 592),
        80..=179 => (11, 589),
        180..=249 => (14, 586),
        _ => (16, 584),
    }
}

/// Modified percentile bootstrap (PM1) 95% confidence interval for
/// Pearson's correlation (Wilcox 1996) — the basis of the paper's `ci_b`
/// risk-penalization factor.
///
/// Draws 599 resamples and returns the order statistics at
/// sample-size-adjusted positions; the adjustment corrects the percentile
/// method's poor small-sample coverage for `r`.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_ci(x: &[f64], y: &[f64], seed: u64) -> Result<ConfidenceInterval, StatsError> {
    pm1_ci_with_scratch(x, y, seed, &mut BootstrapScratch::new())
}

/// As [`pm1_ci`], reusing caller-owned resample buffers. Bit-identical
/// to the allocating variant for every scratch state.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_ci_with_scratch(
    x: &[f64],
    y: &[f64],
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<ConfidenceInterval, StatsError> {
    let rs = collect_replicates(
        &|a, b| pearson(a, b),
        x,
        y,
        PM1_CI_REPLICATES,
        seed,
        scratch,
    )?;
    let (a, c) = pm1_ci_indices(x.len());
    // Scale indices if we collected fewer than the nominal replicate count.
    let scale = rs.len() as f64 / PM1_CI_REPLICATES as f64;
    let lo_idx = (((a as f64) * scale).round() as usize).clamp(1, rs.len()) - 1;
    let hi_idx = (((c as f64) * scale).round() as usize).clamp(1, rs.len()) - 1;
    Ok(ConfidenceInterval::new(rs[lo_idx], rs[hi_idx]))
}

/// A paired-sample statistic as the generic bootstrap consumes it.
pub type PairedStat<'a> = dyn Fn(&[f64], &[f64]) -> Result<f64, StatsError> + 'a;

/// Resample `replicates` times, evaluate `stat` on each resample, and
/// return the sorted successful replicate values in `scratch.rs`.
/// Deterministic for a given `(stat, sample, seed)` — per-candidate
/// seeding, never thread or iteration state, is what keeps scored
/// queries bit-identical across thread counts.
fn collect_replicates<'s>(
    stat: &PairedStat<'_>,
    x: &[f64],
    y: &[f64],
    replicates: usize,
    seed: u64,
    scratch: &'s mut BootstrapScratch,
) -> Result<&'s [f64], StatsError> {
    validate_pairs(x, y, 2)?;
    // Fail fast if the full sample is degenerate.
    stat(x, y)?;

    let mut rng = StdRng::seed_from_u64(seed);
    scratch.bx.clear();
    scratch.bx.resize(x.len(), 0.0);
    scratch.by.clear();
    scratch.by.resize(y.len(), 0.0);
    scratch.rs.clear();
    let mut attempts = 0usize;
    while scratch.rs.len() < replicates && attempts < replicates * 4 {
        attempts += 1;
        fill_resample(x, y, &mut rng, &mut scratch.bx, &mut scratch.by);
        if let Ok(r) = stat(&scratch.bx, &scratch.by) {
            scratch.rs.push(r);
        }
    }
    if scratch.rs.len() < replicates / 2 {
        return Err(StatsError::ZeroVariance);
    }
    scratch.rs.sort_by(f64::total_cmp);
    Ok(&scratch.rs)
}

/// Plain percentile bootstrap confidence interval of an arbitrary paired
/// statistic at level `confidence` — the CI source for the robust
/// estimators (Spearman, RIN, Qn, Kendall, …) on the scored query path,
/// where no closed-form interval exists.
///
/// Draws `replicates` resamples with a fixed `seed` (fully deterministic)
/// and returns the empirical `(α/2, 1 − α/2)` order statistics of the
/// successful replicate values.
///
/// # Errors
///
/// Validation errors of the statistic itself, or
/// [`StatsError::ZeroVariance`] when more than half the resamples are
/// degenerate.
pub fn percentile_bootstrap_ci(
    stat: &PairedStat<'_>,
    x: &[f64],
    y: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<ConfidenceInterval, StatsError> {
    let alpha = (1.0 - confidence).clamp(1e-9, 1.0);
    let rs = collect_replicates(stat, x, y, replicates, seed, scratch)?;
    let b = rs.len();
    let lo_rank = ((alpha / 2.0 * b as f64).ceil() as usize).clamp(1, b);
    let hi_rank = (b + 1 - lo_rank).clamp(1, b);
    Ok(ConfidenceInterval::new(rs[lo_rank - 1], rs[hi_rank - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| 2.0 * v + 10.0 * ((v * 0.7).sin()))
            .collect();
        (x, y)
    }

    #[test]
    fn pm1_estimate_close_to_pearson_on_clean_data() {
        let (x, y) = linear_data(200);
        let r = pearson(&x, &y).unwrap();
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!((b.estimate - r).abs() < 0.02, "r={r} pm1={}", b.estimate);
        assert!(b.resamples >= 100);
    }

    #[test]
    fn pm1_is_deterministic_given_seed() {
        let (x, y) = linear_data(50);
        let cfg = BootstrapConfig::default();
        let a = pm1_bootstrap(&x, &y, &cfg).unwrap();
        let b = pm1_bootstrap(&x, &y, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_slightly_different_estimates() {
        let (x, y) = linear_data(30);
        let a = pm1_bootstrap(
            &x,
            &y,
            &BootstrapConfig {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = pm1_bootstrap(
            &x,
            &y,
            &BootstrapConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.estimate, b.estimate);
        assert!((a.estimate - b.estimate).abs() < 0.1);
    }

    #[test]
    fn adaptive_stopping_uses_fewer_resamples_for_stable_data() {
        // Near-perfect correlation → tiny resample variance → early stop.
        let x: Vec<f64> = (0..500).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!(
            b.resamples < 1_000,
            "expected early stop, used {}",
            b.resamples
        );
    }

    #[test]
    fn estimate_is_clamped() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!((-1.0..=1.0).contains(&b.estimate));
    }

    #[test]
    fn degenerate_input_is_an_error() {
        assert!(matches!(
            pm1_bootstrap(
                &[1.0, 1.0, 1.0],
                &[1.0, 2.0, 3.0],
                &BootstrapConfig::default()
            ),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn pm1_ci_contains_point_estimate_on_clean_data() {
        let (x, y) = linear_data(100);
        let r = pearson(&x, &y).unwrap();
        let ci = pm1_ci(&x, &y, 42).unwrap();
        assert!(ci.low <= r && r <= ci.high, "r={r} ci={ci:?}");
        assert!(ci.length() < 0.3);
    }

    #[test]
    fn pm1_ci_wider_for_smaller_samples() {
        let (x_big, y_big) = linear_data(400);
        let ci_big = pm1_ci(&x_big, &y_big, 7).unwrap();
        let (x_small, y_small) = linear_data(12);
        let ci_small = pm1_ci(&x_small, &y_small, 7).unwrap();
        assert!(
            ci_small.length() > ci_big.length(),
            "small={:?} big={:?}",
            ci_small,
            ci_big
        );
    }

    #[test]
    fn ci_index_table_is_monotone() {
        let mut prev = pm1_ci_indices(2);
        for n in [40, 80, 180, 250, 1000] {
            let cur = pm1_ci_indices(n);
            assert!(cur.0 >= prev.0);
            assert!(cur.1 <= prev.1);
            prev = cur;
        }
    }
}
