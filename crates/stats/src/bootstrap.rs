//! `PM1` bootstrap correlation estimator and the modified percentile
//! bootstrap confidence interval (paper Section 5.3, estimator 5, and the
//! `ci_b` risk factor of Section 4.4; Wilcox 1996).
//!
//! # Kernel layout (PR 6)
//!
//! The Pearson-backed resample loops run on the fused SoA kernel of
//! [`crate::kernel`]: the columns are centered once at their full-sample
//! means, each resample draws an index block into [`BootstrapScratch`],
//! and [`kernel::gather_sums`] accumulates the five Pearson sums in one
//! chunked pass — no `bx`/`by` materialization, no second pass, no
//! per-resample validation (the full columns are validated once; every
//! resample is a multiset of validated rows). The RNG index stream is
//! unchanged from the pre-kernel implementation, so resample *identity*
//! is preserved exactly; replicate values differ from the old two-pass
//! path only by float reassociation (property-tested tolerance in
//! `tests/prop_kernel.rs`). The generic robust-estimator path (Spearman,
//! Qn, …) still materializes resamples — those statistics need the
//! actual values — but shares the same draw/attempt semantics.
//!
//! Quantile steps select order statistics with `select_nth_unstable_by`
//! instead of sorting all replicates; the k-th element under the
//! `total_cmp` total order is the same multiset element either way, so
//! interval endpoints are bit-identical to the sorting implementation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::ci::ConfidenceInterval;
use crate::error::{validate_pairs, StatsError};
use crate::kernel;
use crate::normal::normal_cdf;
use crate::pearson::pearson;

/// Tuning knobs for the PM1 bootstrap.
#[derive(Debug, Clone, Copy)]
pub struct BootstrapConfig {
    /// Resamples drawn before the adaptive stopping rule may trigger.
    pub min_resamples: usize,
    /// Hard cap on resamples.
    pub max_resamples: usize,
    /// The paper's stopping rule: stop once the probability of the next
    /// resample changing the running mean by more than this threshold…
    pub mean_change_threshold: f64,
    /// …falls below this probability (paper: 0.05% = 5e-4).
    pub stop_probability: f64,
    /// RNG seed (the estimator is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            min_resamples: 100,
            max_resamples: 10_000,
            mean_change_threshold: 0.01,
            stop_probability: 5e-4,
            seed: 0x5eed,
        }
    }
}

/// Outcome of a PM1 bootstrap run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapResult {
    /// Mean of the resampled Pearson correlations — the PM1 point estimate.
    pub estimate: f64,
    /// Number of successful resamples actually drawn.
    pub resamples: usize,
    /// Sample standard deviation of the resampled correlations.
    pub std_dev: f64,
}

/// Reusable buffers for the bootstrap estimators and intervals. One
/// scratch per worker amortizes the per-candidate allocations away on
/// the query hot path; results are identical to the allocating variants
/// (the buffers are resized and overwritten before every use), so
/// scratch reuse never affects determinism.
///
/// `idx`/`cx`/`cy` serve the fused Pearson kernel (index blocks and
/// mean-centered columns); `bx`/`by` serve the generic robust-estimator
/// path, which must materialize each resample.
#[derive(Debug, Default, Clone)]
pub struct BootstrapScratch {
    bx: Vec<f64>,
    by: Vec<f64>,
    rs: Vec<f64>,
    idx: Vec<u32>,
    cx: Vec<f64>,
    cy: Vec<f64>,
}

impl BootstrapScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fill `bx`/`by` with one resample (with replacement) of the paired
/// sample.
fn fill_resample(x: &[f64], y: &[f64], rng: &mut StdRng, bx: &mut [f64], by: &mut [f64]) {
    let n = x.len();
    for i in 0..n {
        let j = rng.random_range(0..n);
        bx[i] = x[j];
        by[i] = y[j];
    }
}

/// Fill `idx` with one resample's index block. Draws the *same* RNG
/// stream as [`fill_resample`] (`n` calls of `random_range(0..n)`), so
/// the fused and materializing paths visit identical resamples.
fn fill_indices(n: usize, rng: &mut StdRng, idx: &mut [u32]) {
    for slot in idx.iter_mut() {
        *slot = rng.random_range(0..n) as u32;
    }
}

/// Center both columns at their full-sample means into `cx`/`cy`. The
/// corrected-sums finisher ([`kernel::pearson_from_gather`]) removes the
/// per-resample mean exactly, so centering here is purely for numerical
/// conditioning — it keeps the `Σx²`-style raw sums small relative to
/// the centered spread (the same reason `pearson` is two-pass).
fn center_columns(x: &[f64], y: &[f64], cx: &mut Vec<f64>, cy: &mut Vec<f64>) {
    let (mx, my) = kernel::column_means(x, y);
    cx.clear();
    cx.extend(x.iter().map(|v| v - mx));
    cy.clear();
    cy.extend(y.iter().map(|v| v - my));
}

/// Whether the fused u32-index kernel can address this sample. Columns
/// beyond `u32::MAX` rows (32 GiB per column) fall back to the
/// materializing path rather than truncate indices.
fn fits_u32(n: usize) -> bool {
    u32::try_from(n).is_ok()
}

/// PM1 bootstrap estimate of Pearson's correlation.
///
/// Repeatedly resamples the paired data with replacement, recomputes the
/// Pearson sample correlation, and returns the running mean. Instead of a
/// fixed resample budget, it implements the paper's adaptive rule: stop as
/// soon as the (normal-approximation) probability that one more resample
/// moves the mean by more than `mean_change_threshold` drops below
/// `stop_probability`.
///
/// # Errors
///
/// Propagates the validation errors of [`pearson`]; additionally returns
/// [`StatsError::ZeroVariance`] if every resample is degenerate.
pub fn pm1_bootstrap(
    x: &[f64],
    y: &[f64],
    cfg: &BootstrapConfig,
) -> Result<BootstrapResult, StatsError> {
    pm1_bootstrap_with_scratch(x, y, cfg, &mut BootstrapScratch::new())
}

/// As [`pm1_bootstrap`], reusing caller-owned resample buffers.
/// Bit-identical to the allocating variant for every scratch state.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_bootstrap_with_scratch(
    x: &[f64],
    y: &[f64],
    cfg: &BootstrapConfig,
    scratch: &mut BootstrapScratch,
) -> Result<BootstrapResult, StatsError> {
    validate_pairs(x, y, 2)?;
    // Fail fast if the full sample is degenerate.
    pearson(x, y)?;

    let n = x.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    if fits_u32(n) {
        let BootstrapScratch { idx, cx, cy, .. } = scratch;
        center_columns(x, y, cx, cy);
        idx.clear();
        idx.resize(n, 0);
        adaptive_mean_loop(cfg, || {
            fill_indices(n, &mut rng, idx);
            kernel::pearson_from_gather(n, &kernel::gather_sums(cx, cy, idx))
        })
    } else {
        let BootstrapScratch { bx, by, .. } = scratch;
        bx.clear();
        bx.resize(n, 0.0);
        by.clear();
        by.resize(n, 0.0);
        adaptive_mean_loop(cfg, || {
            fill_resample(x, y, &mut rng, bx, by);
            pearson(bx, by).ok()
        })
    }
}

/// The adaptive-stopping running-mean loop shared by the fused and
/// materializing PM1 paths. `draw` produces one resample's correlation
/// (`None` for a degenerate resample).
fn adaptive_mean_loop(
    cfg: &BootstrapConfig,
    mut draw: impl FnMut() -> Option<f64>,
) -> Result<BootstrapResult, StatsError> {
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut count = 0usize;
    let mut attempts = 0usize;
    let max_attempts = cfg.max_resamples.saturating_mul(2);

    while count < cfg.max_resamples && attempts < max_attempts {
        attempts += 1;
        let Some(r) = draw() else {
            continue;
        };
        count += 1;
        sum += r;
        sum_sq += r * r;

        if count >= cfg.min_resamples {
            let mean = sum / count as f64;
            let var = (sum_sq / count as f64 - mean * mean).max(0.0);
            let sd = var.sqrt();
            if sd == 0.0 {
                break;
            }
            // The next resample r* changes the mean by (r* − mean)/(count+1).
            // P(|change| > θ) = P(|r* − mean| > θ(count+1))
            //                 ≈ 2(1 − Φ(θ(count+1)/sd)).
            let z = cfg.mean_change_threshold * (count as f64 + 1.0) / sd;
            let p_change = 2.0 * (1.0 - normal_cdf(z));
            if p_change < cfg.stop_probability {
                break;
            }
        }
    }

    if count == 0 {
        return Err(StatsError::ZeroVariance);
    }
    let mean = sum / count as f64;
    let var = (sum_sq / count as f64 - mean * mean).max(0.0);
    Ok(BootstrapResult {
        estimate: mean.clamp(-1.0, 1.0),
        resamples: count,
        std_dev: var.sqrt(),
    })
}

/// Number of bootstrap replicates used by the modified percentile interval.
const PM1_CI_REPLICATES: usize = 599;

/// Wilcox's sample-size-dependent order-statistic indices (1-based) for the
/// 95% modified percentile bootstrap interval over 599 replicates.
fn pm1_ci_indices(n: usize) -> (usize, usize) {
    match n {
        0..=39 => (7, 593),
        40..=79 => (8, 592),
        80..=179 => (11, 589),
        180..=249 => (14, 586),
        _ => (16, 584),
    }
}

/// Modified percentile bootstrap (PM1) 95% confidence interval for
/// Pearson's correlation (Wilcox 1996) — the basis of the paper's `ci_b`
/// risk-penalization factor.
///
/// Draws 599 resamples and returns the order statistics at
/// sample-size-adjusted positions; the adjustment corrects the percentile
/// method's poor small-sample coverage for `r`.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_ci(x: &[f64], y: &[f64], seed: u64) -> Result<ConfidenceInterval, StatsError> {
    pm1_ci_with_scratch(x, y, seed, &mut BootstrapScratch::new())
}

/// As [`pm1_ci`], reusing caller-owned resample buffers. Bit-identical
/// to the allocating variant for every scratch state.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pm1_ci_with_scratch(
    x: &[f64],
    y: &[f64],
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<ConfidenceInterval, StatsError> {
    collect_pearson_replicates(x, y, PM1_CI_REPLICATES, seed, scratch)?;
    let (a, c) = pm1_ci_indices(x.len());
    let b = scratch.rs.len();
    // Scale indices if we collected fewer than the nominal replicate count.
    let scale = b as f64 / PM1_CI_REPLICATES as f64;
    let lo_idx = (((a as f64) * scale).round() as usize).clamp(1, b) - 1;
    let hi_idx = (((c as f64) * scale).round() as usize).clamp(1, b) - 1;
    let (lo, hi) = order_stat_pair(&mut scratch.rs, lo_idx.min(hi_idx), lo_idx.max(hi_idx));
    Ok(ConfidenceInterval::new(lo, hi))
}

/// A paired-sample statistic as the generic bootstrap consumes it.
pub type PairedStat<'a> = dyn Fn(&[f64], &[f64]) -> Result<f64, StatsError> + 'a;

/// Draw/attempt loop shared by every replicate collector: push successful
/// replicate values into `rs` until `replicates` are collected or the
/// attempt budget (4× the target) runs out. Deterministic for a given
/// draw closure — per-candidate seeding, never thread or iteration
/// state, is what keeps scored queries bit-identical across thread
/// counts.
fn collect_replicates_with(
    replicates: usize,
    rs: &mut Vec<f64>,
    mut draw: impl FnMut() -> Option<f64>,
) -> Result<(), StatsError> {
    rs.clear();
    let mut attempts = 0usize;
    while rs.len() < replicates && attempts < replicates * 4 {
        attempts += 1;
        if let Some(r) = draw() {
            rs.push(r);
        }
    }
    if rs.len() < replicates / 2 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(())
}

/// Collect Pearson replicate values on the fused kernel path into
/// `scratch.rs` (unsorted; quantile steps select order statistics
/// directly).
fn collect_pearson_replicates(
    x: &[f64],
    y: &[f64],
    replicates: usize,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<(), StatsError> {
    validate_pairs(x, y, 2)?;
    // Fail fast if the full sample is degenerate.
    pearson(x, y)?;

    let n = x.len();
    let mut rng = StdRng::seed_from_u64(seed);
    if fits_u32(n) {
        let BootstrapScratch {
            rs, idx, cx, cy, ..
        } = scratch;
        center_columns(x, y, cx, cy);
        idx.clear();
        idx.resize(n, 0);
        collect_replicates_with(replicates, rs, || {
            fill_indices(n, &mut rng, idx);
            kernel::pearson_from_gather(n, &kernel::gather_sums(cx, cy, idx))
        })
    } else {
        let BootstrapScratch { bx, by, rs, .. } = scratch;
        bx.clear();
        bx.resize(n, 0.0);
        by.clear();
        by.resize(n, 0.0);
        collect_replicates_with(replicates, rs, || {
            fill_resample(x, y, &mut rng, bx, by);
            pearson(bx, by).ok()
        })
    }
}

/// Collect replicate values of an arbitrary paired statistic into
/// `scratch.rs` (unsorted). The statistic needs materialized resample
/// values, so this path gathers into `bx`/`by`; the RNG stream matches
/// the fused path draw for draw.
fn collect_stat_replicates(
    stat: &PairedStat<'_>,
    x: &[f64],
    y: &[f64],
    replicates: usize,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<(), StatsError> {
    validate_pairs(x, y, 2)?;
    // Fail fast if the full sample is degenerate.
    stat(x, y)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let BootstrapScratch { bx, by, rs, .. } = scratch;
    bx.clear();
    bx.resize(x.len(), 0.0);
    by.clear();
    by.resize(y.len(), 0.0);
    collect_replicates_with(replicates, rs, || {
        fill_resample(x, y, &mut rng, bx, by);
        stat(bx, by).ok()
    })
}

/// Select the `(lo, hi)` order statistics (0-based, `lo <= hi`) of `rs`
/// under the `total_cmp` total order without sorting the whole buffer:
/// one `select_nth_unstable` for `lo`, a second over the right partition
/// for `hi`. The k-th element of a multiset under a total order is
/// unique, so the endpoints are bit-identical to
/// `sort_by(total_cmp)` + indexing (regression-tested below).
fn order_stat_pair(rs: &mut [f64], lo: usize, hi: usize) -> (f64, f64) {
    debug_assert!(lo <= hi && hi < rs.len());
    let (_, lo_v, rest) = rs.select_nth_unstable_by(lo, f64::total_cmp);
    let lo_v = *lo_v;
    let hi_v = if hi == lo {
        lo_v
    } else {
        *rest.select_nth_unstable_by(hi - lo - 1, f64::total_cmp).1
    };
    (lo_v, hi_v)
}

/// The empirical `(α/2, 1 − α/2)` interval of the replicate values in
/// `rs` at level `confidence`.
fn percentile_interval(rs: &mut [f64], confidence: f64) -> ConfidenceInterval {
    let alpha = (1.0 - confidence).clamp(1e-9, 1.0);
    let b = rs.len();
    let lo_rank = ((alpha / 2.0 * b as f64).ceil() as usize).clamp(1, b);
    let hi_rank = (b + 1 - lo_rank).clamp(1, b);
    let (lo, hi) = order_stat_pair(rs, lo_rank.min(hi_rank) - 1, lo_rank.max(hi_rank) - 1);
    ConfidenceInterval::new(lo, hi)
}

/// Plain percentile bootstrap confidence interval of an arbitrary paired
/// statistic at level `confidence` — the CI source for the robust
/// estimators (Spearman, RIN, Qn, Kendall, …) on the scored query path,
/// where no closed-form interval exists.
///
/// Draws `replicates` resamples with a fixed `seed` (fully deterministic)
/// and returns the empirical `(α/2, 1 − α/2)` order statistics of the
/// successful replicate values.
///
/// # Errors
///
/// Validation errors of the statistic itself, or
/// [`StatsError::ZeroVariance`] when more than half the resamples are
/// degenerate.
pub fn percentile_bootstrap_ci(
    stat: &PairedStat<'_>,
    x: &[f64],
    y: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<ConfidenceInterval, StatsError> {
    collect_stat_replicates(stat, x, y, replicates, seed, scratch)?;
    Ok(percentile_interval(&mut scratch.rs, confidence))
}

/// As [`percentile_bootstrap_ci`] specialized to Pearson's `r` on the
/// fused kernel path: no resample materialization, no per-replicate
/// validation. Used by the scored pipeline for PM1 intervals at
/// non-tabulated confidence levels.
///
/// # Errors
///
/// Same failure modes as [`pm1_bootstrap`].
pub fn pearson_percentile_ci(
    x: &[f64],
    y: &[f64],
    replicates: usize,
    confidence: f64,
    seed: u64,
    scratch: &mut BootstrapScratch,
) -> Result<ConfidenceInterval, StatsError> {
    collect_pearson_replicates(x, y, replicates, seed, scratch)?;
    Ok(percentile_interval(&mut scratch.rs, confidence))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| 2.0 * v + 10.0 * ((v * 0.7).sin()))
            .collect();
        (x, y)
    }

    #[test]
    fn pm1_estimate_close_to_pearson_on_clean_data() {
        let (x, y) = linear_data(200);
        let r = pearson(&x, &y).unwrap();
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!((b.estimate - r).abs() < 0.02, "r={r} pm1={}", b.estimate);
        assert!(b.resamples >= 100);
    }

    #[test]
    fn pm1_is_deterministic_given_seed() {
        let (x, y) = linear_data(50);
        let cfg = BootstrapConfig::default();
        let a = pm1_bootstrap(&x, &y, &cfg).unwrap();
        let b = pm1_bootstrap(&x, &y, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_slightly_different_estimates() {
        let (x, y) = linear_data(30);
        let a = pm1_bootstrap(
            &x,
            &y,
            &BootstrapConfig {
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let b = pm1_bootstrap(
            &x,
            &y,
            &BootstrapConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.estimate, b.estimate);
        assert!((a.estimate - b.estimate).abs() < 0.1);
    }

    #[test]
    fn adaptive_stopping_uses_fewer_resamples_for_stable_data() {
        // Near-perfect correlation → tiny resample variance → early stop.
        let x: Vec<f64> = (0..500).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 3.0).collect();
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!(
            b.resamples < 1_000,
            "expected early stop, used {}",
            b.resamples
        );
    }

    #[test]
    fn estimate_is_clamped() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let b = pm1_bootstrap(&x, &y, &BootstrapConfig::default()).unwrap();
        assert!((-1.0..=1.0).contains(&b.estimate));
    }

    #[test]
    fn degenerate_input_is_an_error() {
        assert!(matches!(
            pm1_bootstrap(
                &[1.0, 1.0, 1.0],
                &[1.0, 2.0, 3.0],
                &BootstrapConfig::default()
            ),
            Err(StatsError::ZeroVariance)
        ));
    }

    #[test]
    fn pm1_ci_contains_point_estimate_on_clean_data() {
        let (x, y) = linear_data(100);
        let r = pearson(&x, &y).unwrap();
        let ci = pm1_ci(&x, &y, 42).unwrap();
        assert!(ci.low <= r && r <= ci.high, "r={r} ci={ci:?}");
        assert!(ci.length() < 0.3);
    }

    #[test]
    fn pm1_ci_wider_for_smaller_samples() {
        let (x_big, y_big) = linear_data(400);
        let ci_big = pm1_ci(&x_big, &y_big, 7).unwrap();
        let (x_small, y_small) = linear_data(12);
        let ci_small = pm1_ci(&x_small, &y_small, 7).unwrap();
        assert!(
            ci_small.length() > ci_big.length(),
            "small={:?} big={:?}",
            ci_small,
            ci_big
        );
    }

    #[test]
    fn ci_index_table_is_monotone() {
        let mut prev = pm1_ci_indices(2);
        for n in [40, 80, 180, 250, 1000] {
            let cur = pm1_ci_indices(n);
            assert!(cur.0 >= prev.0);
            assert!(cur.1 <= prev.1);
            prev = cur;
        }
    }

    #[test]
    fn order_stat_pair_matches_full_sort() {
        // The select_nth quantile step must be bit-identical to the old
        // sort-then-index implementation, including ties, ±0.0, and
        // adversarial orderings.
        let fixtures: Vec<Vec<f64>> = vec![
            vec![3.0, 1.0, 2.0],
            vec![5.0, 5.0, 5.0, 5.0],
            vec![-0.0, 0.0, -1.0, 1.0, 0.5, -0.5],
            (0..599).map(|i| ((i * 37 % 599) as f64).sin()).collect(),
            vec![1.0, f64::MIN_POSITIVE, -f64::MIN_POSITIVE, 0.0, -0.0],
        ];
        for v in fixtures {
            let mut sorted = v.clone();
            sorted.sort_by(f64::total_cmp);
            for (lo, hi) in [(0, v.len() - 1), (0, 0), (v.len() / 3, 2 * v.len() / 3)] {
                let mut work = v.clone();
                let (a, b) = order_stat_pair(&mut work, lo, hi);
                assert_eq!(a.to_bits(), sorted[lo].to_bits(), "{v:?} lo={lo}");
                assert_eq!(b.to_bits(), sorted[hi].to_bits(), "{v:?} hi={hi}");
            }
        }
    }

    #[test]
    fn percentile_interval_matches_sorted_rank_formula() {
        // Regression for the select_nth refactor: endpoints must equal
        // the rank formula applied to a fully sorted buffer.
        let rs: Vec<f64> = (0..199)
            .map(|i| ((i * 83 % 199) as f64 * 0.01).tan())
            .collect();
        for confidence in [0.5f64, 0.8, 0.9, 0.95, 0.99] {
            let mut sorted = rs.clone();
            sorted.sort_by(f64::total_cmp);
            let alpha = (1.0 - confidence).clamp(1e-9, 1.0);
            let b = sorted.len();
            let lo_rank = ((alpha / 2.0 * b as f64).ceil() as usize).clamp(1, b);
            let hi_rank = (b + 1 - lo_rank).clamp(1, b);
            let mut work = rs.clone();
            let ci = percentile_interval(&mut work, confidence);
            assert_eq!(ci.low.to_bits(), sorted[lo_rank - 1].to_bits());
            assert_eq!(ci.high.to_bits(), sorted[hi_rank - 1].to_bits());
        }
    }

    #[test]
    fn pearson_percentile_ci_close_to_generic_stat_path() {
        // Fused Pearson replicates visit the same resamples as the
        // generic materializing path (same RNG stream), so the intervals
        // differ only by kernel float reassociation.
        let (x, y) = linear_data(90);
        let fused =
            pearson_percentile_ci(&x, &y, 599, 0.9, 17, &mut BootstrapScratch::new()).unwrap();
        let generic = percentile_bootstrap_ci(
            &|a, b| pearson(a, b),
            &x,
            &y,
            599,
            0.9,
            17,
            &mut BootstrapScratch::new(),
        )
        .unwrap();
        assert!(
            (fused.low - generic.low).abs() < 1e-9,
            "{fused:?} {generic:?}"
        );
        assert!(
            (fused.high - generic.high).abs() < 1e-9,
            "{fused:?} {generic:?}"
        );
    }
}
