//! Statistics substrate for the Correlation Sketches reproduction.
//!
//! This crate implements, from scratch, every statistical tool the paper
//! relies on:
//!
//! * **Correlation estimators** (paper Section 5.3): Pearson's sample
//!   correlation ([`pearson()`]), Spearman's rank correlation ([`spearman()`]),
//!   the Rank-based Inverse Normal transformation ([`rin`]), the robust
//!   `Qn` correlation ([`qn`]) and the `PM1` bootstrap ([`bootstrap`]).
//! * **Error-risk statistics** (Sections 4.2–4.3): Fisher's z standard
//!   error, the new distribution-free **Hoeffding confidence interval**
//!   (union bound over five Hoeffding inequalities) together with its
//!   small-sample `HFD` variant, and percentile-bootstrap intervals.
//! * **Ranking-evaluation metrics** (Section 5.4): mean average precision
//!   and nDCG@k.
//! * Supporting numerics: streaming moments, rank transforms with tie
//!   handling, the normal CDF `Φ` and its inverse `Φ⁻¹` (Acklam's
//!   algorithm plus a Halley refinement step).
//!
//! All estimators operate on plain `&[f64]` slices so they work equally on
//! full columns (ground truth) and on the paired samples reconstructed from
//! sketch joins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod ci;
pub mod distance;
pub mod error;
pub mod estimator;
pub mod kendall;
pub mod kernel;
pub mod metrics;
pub mod moments;
pub mod normal;
pub mod pearson;
pub mod qn;
pub mod rank;
pub mod rin;
pub mod scored;
pub mod spearman;

pub use bootstrap::{
    pearson_percentile_ci, percentile_bootstrap_ci, pm1_bootstrap, pm1_bootstrap_with_scratch,
    pm1_ci, pm1_ci_with_scratch, BootstrapConfig, BootstrapResult, BootstrapScratch,
};
pub use ci::{
    bernstein_interval, fisher_z_interval, fisher_z_se, hfd_interval, hoeffding_interval,
    ConfidenceInterval, ValueBounds,
};
pub use distance::distance_correlation;
pub use error::StatsError;
pub use estimator::{estimate_correlation, CorrelationEstimator};
pub use kendall::kendall_tau;
pub use metrics::{average_precision, dcg_at_k, mean, ndcg_at_k, recall_at_k, rmse};
pub use moments::{Moments, SummaryStats};
pub use normal::{inverse_normal_cdf, normal_cdf};
pub use pearson::pearson;
pub use qn::{qn_correlation, qn_scale};
pub use rank::average_ranks;
pub use rin::{rankit_transform, rin_correlation};
pub use scored::{scored_estimate, ScoredEstimate, SCORED_CI_SEED};
pub use spearman::spearman;
