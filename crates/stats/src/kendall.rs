//! Kendall's rank correlation τ-b.
//!
//! Not part of the paper's five evaluated estimators, but Theorem 1 makes
//! *any* paired-sample statistic estimable from a sketch join; Kendall's τ
//! is the most commonly requested addition (the paper's own framing:
//! "sketches … can be used to compute any statistics that are based on
//! paired numeric values"). Implemented with the `O(n log n)`
//! Knight (1966) merge-sort inversion count, with τ-b tie correction.

use crate::error::{validate_pairs, StatsError};

/// Merge-sort that counts inversions ("discordant swaps") in `values`.
fn count_swaps(values: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = values.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = values.split_at_mut(mid);
    let mut swaps = count_swaps(left, buf) + count_swaps(right, buf);

    // Merge, counting how many right elements jump over left elements.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            swaps += (left.len() - i) as u64;
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    values.copy_from_slice(&buf[..n]);
    swaps
}

/// Count `Σ t(t−1)/2` over runs of equal values in sorted `v`.
fn tie_pairs(sorted: &[f64]) -> u64 {
    let mut total = 0u64;
    let mut run = 1u64;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            total += run * (run - 1) / 2;
            run = 1;
        }
    }
    total + run * (run - 1) / 2
}

/// Kendall's τ-b between paired samples, tie-corrected:
///
/// ```text
/// τ_b = (C − D) / √((n0 − n1)(n0 − n2)),   n0 = n(n−1)/2
/// ```
///
/// where `C`/`D` count concordant/discordant pairs and `n1`/`n2` are the
/// tie-pair counts of each variable. `O(n log n)`.
///
/// # Errors
///
/// Same failure modes as [`crate::pearson::pearson`]; all-tied variables
/// yield [`StatsError::ZeroVariance`].
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(x, y, 2)?;
    let n = x.len();

    // Sort pairs by x (then y, to group x-ties deterministically).
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| x[a].total_cmp(&x[b]).then(y[a].total_cmp(&y[b])));
    let xs: Vec<f64> = idx.iter().map(|&i| x[i]).collect();
    let mut ys: Vec<f64> = idx.iter().map(|&i| y[i]).collect();

    let n0 = (n as u64) * (n as u64 - 1) / 2;
    let n1 = tie_pairs(&xs);
    let mut ys_sorted = ys.clone();
    ys_sorted.sort_by(f64::total_cmp);
    let n2 = tie_pairs(&ys_sorted);

    // Joint ties (pairs tied in both x and y) must not count as
    // discordant; they are excluded from both C and D.
    let mut joint = 0u64;
    {
        let mut pairs: Vec<(u64, u64)> = xs
            .iter()
            .zip(&ys)
            .map(|(a, b)| (a.to_bits(), b.to_bits()))
            .collect();
        pairs.sort_unstable();
        let mut run = 1u64;
        for w in pairs.windows(2) {
            if w[0] == w[1] {
                run += 1;
            } else {
                joint += run * (run - 1) / 2;
                run = 1;
            }
        }
        joint += run * (run - 1) / 2;
    }

    if n0 == n1 || n0 == n2 {
        return Err(StatsError::ZeroVariance);
    }

    // Discordant pairs = inversions of y within the x-sorted order,
    // except that y-values inside an x-tie group are sorted ascending (by
    // the secondary sort key) and therefore contribute no inversions.
    let mut buf = vec![0.0; n];
    let swaps = count_swaps(&mut ys, &mut buf);

    // C − D = n0 − n1 − n2 + joint − 2·D.
    let num = n0 as f64 - n1 as f64 - n2 as f64 + joint as f64 - 2.0 * swaps as f64;
    let den = ((n0 - n1) as f64 * (n0 - n2) as f64).sqrt();
    Ok((num / den).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reference implementation (O(n²)). Sign comparisons use
    /// `Ordering` — note `f64::signum` maps ±0.0 to ±1, so a subtraction
    /// trick would miscount ties.
    fn kendall_naive(x: &[f64], y: &[f64]) -> f64 {
        use std::cmp::Ordering;
        let n = x.len();
        let (mut c, mut d) = (0i64, 0i64);
        for i in 0..n {
            for j in (i + 1)..n {
                let sx = x[i].total_cmp(&x[j]);
                let sy = y[i].total_cmp(&y[j]);
                if sx == Ordering::Equal || sy == Ordering::Equal {
                    continue; // any tie: neither concordant nor discordant
                }
                if sx == sy {
                    c += 1;
                } else {
                    d += 1;
                }
            }
        }
        let n0 = (n * (n - 1) / 2) as f64;
        // τ-b uses total tie pairs per variable (including joint ties).
        let mut xs = x.to_vec();
        xs.sort_by(f64::total_cmp);
        let mut ys = y.to_vec();
        ys.sort_by(f64::total_cmp);
        let t1 = super::tie_pairs(&xs) as f64;
        let t2 = super::tie_pairs(&ys) as f64;
        (c - d) as f64 / ((n0 - t1) * (n0 - t2)).sqrt()
    }

    #[test]
    fn perfect_orderings() {
        let x: Vec<f64> = (1..=20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        assert!((kendall_tau(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yr: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((kendall_tau(&x, &yr).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_small_case() {
        // x = 1..5, y = [3,1,4,2,5]: C=6? compute via naive.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [3.0, 1.0, 4.0, 2.0, 5.0];
        let fast = kendall_tau(&x, &y).unwrap();
        let naive = kendall_naive(&x, &y);
        assert!((fast - naive).abs() < 1e-12, "{fast} vs {naive}");
    }

    #[test]
    fn matches_naive_on_pseudorandom_data_with_ties() {
        for seed in 0..10u64 {
            let n = 60;
            let x: Vec<f64> = (0..n)
                .map(|i| ((i as u64 * 2_654_435_761 + seed * 97) % 17) as f64)
                .collect();
            let y: Vec<f64> = (0..n)
                .map(|i| ((i as u64 * 40_503 + seed * 31) % 13) as f64)
                .collect();
            let fast = kendall_tau(&x, &y).unwrap();
            let naive = kendall_naive(&x, &y);
            assert!(
                (fast - naive).abs() < 1e-9,
                "seed {seed}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn invariant_under_monotone_transform() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let y = [2.0, 4.0, 9.0, 1.0, 7.0, 3.0];
        let a = kendall_tau(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        let b = kendall_tau(&x2, &y).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn symmetric() {
        let x = [1.0, 4.0, 2.0, 7.0, 7.0];
        let y = [3.0, 1.0, 9.0, 2.0, 2.0];
        assert!((kendall_tau(&x, &y).unwrap() - kendall_tau(&y, &x).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(matches!(
            kendall_tau(&[1.0], &[1.0]),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert_eq!(
            kendall_tau(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn tau_weaker_than_rho_for_noisy_data() {
        // |τ| ≤ |ρ_s| empirically for most monotone-ish data; just check
        // both see the same sign and τ ∈ [−1, 1].
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v + 10.0 * ((v * 1.3).sin())).collect();
        let tau = kendall_tau(&x, &y).unwrap();
        let rho = crate::spearman::spearman(&x, &y).unwrap();
        assert_eq!(tau.signum(), rho.signum());
        assert!((-1.0..=1.0).contains(&tau));
    }
}
