//! Streaming moments and summary statistics.
//!
//! [`Moments`] is a single-pass (Welford-style) accumulator for mean,
//! variance, skewness and excess kurtosis. The paper's analysis repeatedly
//! refers to fourth-order moments (kurtosis) as the driver of Pearson
//! estimator error on non-normal data (Section 2.2), so we expose them for
//! diagnostics, and the sketch builder uses the min/max tracked here for the
//! Hoeffding bounds (`C_low`/`C_high`, Section 4.3).

/// Single-pass accumulator for the first four central moments plus range.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    m4: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulate one observation (Welford/Pébay update).
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta2 * delta2;

        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of accumulated observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then_some(self.mean)
    }

    /// Population variance (divides by `n`); `None` if empty.
    #[must_use]
    pub fn population_variance(&self) -> Option<f64> {
        (self.n > 0).then(|| self.m2 / self.n as f64)
    }

    /// Sample variance (divides by `n − 1`); `None` if `n < 2`.
    #[must_use]
    pub fn sample_variance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.m2 / (self.n as f64 - 1.0))
    }

    /// Sample standard deviation; `None` if `n < 2`.
    #[must_use]
    pub fn sample_std(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Skewness `g1 = m3 / m2^{3/2}` (population form); `None` if `n < 2`
    /// or the variance is zero.
    #[must_use]
    pub fn skewness(&self) -> Option<f64> {
        if self.n < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some(n.sqrt() * self.m3 / self.m2.powf(1.5))
    }

    /// Excess kurtosis `g2 = n·m4/m2² − 3`; `None` if `n < 2` or the
    /// variance is zero.
    #[must_use]
    pub fn excess_kurtosis(&self) -> Option<f64> {
        if self.n < 2 || self.m2 <= 0.0 {
            return None;
        }
        let n = self.n as f64;
        Some(n * self.m4 / (self.m2 * self.m2) - 3.0)
    }

    /// Smallest observation; `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Freeze into a [`SummaryStats`] snapshot.
    #[must_use]
    pub fn summary(&self) -> Option<SummaryStats> {
        Some(SummaryStats {
            count: self.n,
            mean: self.mean()?,
            variance: self.population_variance()?,
            min: self.min()?,
            max: self.max()?,
            skewness: self.skewness(),
            excess_kurtosis: self.excess_kurtosis(),
        })
    }
}

impl Extend<f64> for Moments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = Self::new();
        m.extend(iter);
        m
    }
}

/// Immutable snapshot of column statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Skewness, if defined.
    pub skewness: Option<f64>,
    /// Excess kurtosis, if defined.
    pub excess_kurtosis: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn empty_moments_return_none() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert!(m.mean().is_none());
        assert!(m.population_variance().is_none());
        assert!(m.min().is_none());
        assert!(m.max().is_none());
        assert!(m.summary().is_none());
    }

    #[test]
    fn mean_variance_match_naive_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m: Moments = data.iter().copied().collect();
        assert_eq!(m.count(), 8);
        assert!(close(m.mean().unwrap(), 5.0, 1e-12));
        assert!(close(m.population_variance().unwrap(), 4.0, 1e-12));
        assert!(close(m.sample_variance().unwrap(), 32.0 / 7.0, 1e-12));
        assert_eq!(m.min().unwrap(), 2.0);
        assert_eq!(m.max().unwrap(), 9.0);
    }

    #[test]
    fn skewness_zero_for_symmetric_data() {
        let m: Moments = [-3.0, -1.0, 0.0, 1.0, 3.0].iter().copied().collect();
        assert!(close(m.skewness().unwrap(), 0.0, 1e-12));
    }

    #[test]
    fn kurtosis_of_two_point_mass_is_minus_two() {
        // {−1, +1} repeated: excess kurtosis = −2 exactly.
        let m: Moments = [-1.0, 1.0, -1.0, 1.0, -1.0, 1.0].iter().copied().collect();
        assert!(close(m.excess_kurtosis().unwrap(), -2.0, 1e-12));
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64).sin() * 10.0 + i as f64)
            .collect();
        let whole: Moments = data.iter().copied().collect();
        let mut left: Moments = data[..37].iter().copied().collect();
        let right: Moments = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(close(left.mean().unwrap(), whole.mean().unwrap(), 1e-9));
        assert!(close(
            left.population_variance().unwrap(),
            whole.population_variance().unwrap(),
            1e-9
        ));
        assert!(close(
            left.skewness().unwrap(),
            whole.skewness().unwrap(),
            1e-9
        ));
        assert!(close(
            left.excess_kurtosis().unwrap(),
            whole.excess_kurtosis().unwrap(),
            1e-9
        ));
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m: Moments = [1.0, 2.0, 3.0].iter().copied().collect();
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);

        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn constant_data_has_zero_variance_and_no_skew() {
        let m: Moments = std::iter::repeat_n(5.0, 10).collect();
        assert!(close(m.population_variance().unwrap(), 0.0, 1e-12));
        assert!(m.skewness().is_none());
        assert!(m.excess_kurtosis().is_none());
    }

    #[test]
    fn summary_snapshot_matches_accessors() {
        let m: Moments = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
        let s = m.summary().unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, m.mean().unwrap());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }
}
