//! Confidence-aware point estimates for the ranking pipeline (paper
//! Section 4): one estimate plus a matched confidence interval, computed
//! in a single pass over the join sample.
//!
//! The interval source is tied to the estimator:
//!
//! * **Pearson** — the Fisher z-transform interval
//!   ([`crate::fisher_z_interval`]): transform, add ±z·SE, transform
//!   back. Closed-form, O(1) after the moment pass.
//! * **PM1 bootstrap** — Wilcox's modified percentile bootstrap interval
//!   ([`crate::pm1_ci`]) at its native 95% level, the plain percentile
//!   interval at any other level.
//! * **Robust estimators** (Spearman, RIN, Qn, Kendall, distance
//!   correlation) — the plain percentile bootstrap
//!   ([`crate::percentile_bootstrap_ci`]) of the estimator itself.
//!
//! Every bootstrap draw is seeded per candidate from a fixed constant
//! (never from thread or iteration state) and reuses a caller-owned
//! [`BootstrapScratch`], so scored queries are bit-identical across
//! thread counts and allocation-free on the hot path.

use crate::bootstrap::{
    pearson_percentile_ci, percentile_bootstrap_ci, pm1_bootstrap_with_scratch,
    pm1_ci_with_scratch, BootstrapConfig, BootstrapScratch,
};
use crate::ci::{fisher_z_interval, ConfidenceInterval};
use crate::error::StatsError;
use crate::estimator::CorrelationEstimator;
use crate::pearson::pearson;

/// Fixed seed for the robust-estimator bootstrap intervals. A constant —
/// not worker or query state — so a candidate's interval depends only on
/// its own join sample.
pub const SCORED_CI_SEED: u64 = 0x00c1_5eed;

/// Bootstrap replicates for the robust-estimator intervals. Fewer than
/// the 599 of the PM1 interval: the robust estimators cost `O(n log n)`
/// or worse per replicate and the scorers only consume the interval
/// *length*, which converges much faster than its endpoints.
const ROBUST_REPLICATES: usize = 199;

/// A correlation estimate with its matched confidence interval — what
/// the `s1`–`s4` scoring functions consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEstimate {
    /// The point estimate.
    pub estimate: f64,
    /// Lower endpoint of the confidence interval.
    pub ci_lo: f64,
    /// Upper endpoint of the confidence interval.
    pub ci_hi: f64,
    /// Join-sample size `n` the estimate was computed from.
    pub sample_size: usize,
}

impl ScoredEstimate {
    /// Interval length `ci_hi − ci_lo` — the risk signal the `s3`/`s4`
    /// penalization factors consume.
    #[must_use]
    pub fn ci_length(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }

    /// The interval as a [`ConfidenceInterval`].
    #[must_use]
    pub fn interval(&self) -> ConfidenceInterval {
        ConfidenceInterval::new(self.ci_lo, self.ci_hi)
    }
}

/// Estimate the correlation of the paired sample and attach the
/// estimator-matched confidence interval at level `confidence`
/// (e.g. `0.95`), reusing `scratch` for any bootstrap resampling.
///
/// Deterministic: the result is a pure function of
/// `(estimator, x, y, confidence)` — scratch state, thread count, and
/// evaluation order never affect it.
///
/// # Errors
///
/// Propagates the estimator's [`StatsError`]s (too few samples, zero
/// variance, …) — the same failure modes as
/// [`CorrelationEstimator::estimate`].
pub fn scored_estimate(
    estimator: CorrelationEstimator,
    x: &[f64],
    y: &[f64],
    confidence: f64,
    scratch: &mut BootstrapScratch,
) -> Result<ScoredEstimate, StatsError> {
    crate::error::validate_pairs(x, y, estimator.min_samples())?;
    let confidence = confidence.clamp(1e-6, 1.0 - 1e-6);
    let alpha = 1.0 - confidence;
    let (estimate, ci) = match estimator {
        CorrelationEstimator::Pearson => {
            let r = pearson(x, y)?;
            // The |r| → 1 degeneracy guard lives inside
            // [`fisher_z_interval`] now: |r| is bounded away from ±1 by
            // 1/(2n) for the transform and the interval re-widened to
            // contain the point estimate, so a 4-row perfect-fit fluke
            // never gets a sharper interval than a genuine large-sample
            // candidate.
            (r, fisher_z_interval(r, x.len(), alpha))
        }
        CorrelationEstimator::Pm1Bootstrap { seed } => {
            let cfg = BootstrapConfig {
                seed,
                ..BootstrapConfig::default()
            };
            let est = pm1_bootstrap_with_scratch(x, y, &cfg, scratch)?.estimate;
            // Wilcox's small-sample index adjustment is tabulated for
            // 95% only; other levels fall back to the plain percentile
            // interval over the same replicate budget.
            let ci = if (confidence - 0.95).abs() < 1e-12 {
                pm1_ci_with_scratch(x, y, seed, scratch)?
            } else {
                pearson_percentile_ci(x, y, 599, confidence, seed, scratch)?
            };
            (est, ci)
        }
        other => {
            let est = other.estimate(x, y)?;
            let ci = percentile_bootstrap_ci(
                &|a, b| other.estimate(a, b),
                x,
                y,
                ROBUST_REPLICATES,
                confidence,
                SCORED_CI_SEED,
                scratch,
            )?;
            (est, ci)
        }
    };
    Ok(ScoredEstimate {
        estimate,
        ci_lo: ci.low,
        ci_hi: ci.high,
        sample_size: x.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_linear(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + ((i as f64) * 1.3).cos())
            .collect();
        (x, y)
    }

    #[test]
    fn pearson_interval_contains_estimate_and_shrinks_with_n() {
        let (x, y) = noisy_linear(800);
        let mut scratch = BootstrapScratch::new();
        let small = scored_estimate(
            CorrelationEstimator::Pearson,
            &x[..30],
            &y[..30],
            0.95,
            &mut scratch,
        )
        .unwrap();
        let large =
            scored_estimate(CorrelationEstimator::Pearson, &x, &y, 0.95, &mut scratch).unwrap();
        for s in [&small, &large] {
            assert!(s.ci_lo <= s.estimate && s.estimate <= s.ci_hi, "{s:?}");
        }
        assert_eq!(small.sample_size, 30);
        assert!(small.ci_length() > large.ci_length());
    }

    #[test]
    fn every_estimator_yields_a_finite_interval() {
        let (x, y) = noisy_linear(120);
        let mut scratch = BootstrapScratch::new();
        for est in CorrelationEstimator::EXTENDED {
            let s = scored_estimate(est, &x, &y, 0.95, &mut scratch).unwrap_or_else(|e| {
                panic!("{est}: {e}");
            });
            assert!(s.ci_lo.is_finite() && s.ci_hi.is_finite(), "{est}: {s:?}");
            assert!(s.ci_lo <= s.ci_hi, "{est}: {s:?}");
            assert!(s.ci_length() > 0.0, "{est}: {s:?}");
        }
    }

    #[test]
    fn deterministic_and_scratch_independent() {
        let (x, y) = noisy_linear(60);
        for est in [
            CorrelationEstimator::Spearman,
            CorrelationEstimator::Pm1Bootstrap { seed: 7 },
        ] {
            let fresh = scored_estimate(est, &x, &y, 0.95, &mut BootstrapScratch::new()).unwrap();
            // A scratch polluted by unrelated prior work must not change
            // a single bit of the result.
            let mut dirty = BootstrapScratch::new();
            let (a, b) = noisy_linear(333);
            let _ = scored_estimate(CorrelationEstimator::Qn, &a, &b, 0.8, &mut dirty).unwrap();
            let reused = scored_estimate(est, &x, &y, 0.95, &mut dirty).unwrap();
            assert_eq!(fresh, reused, "{est}");
        }
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let (x, y) = noisy_linear(100);
        let mut scratch = BootstrapScratch::new();
        for est in [
            CorrelationEstimator::Pearson,
            CorrelationEstimator::Spearman,
        ] {
            let loose = scored_estimate(est, &x, &y, 0.80, &mut scratch).unwrap();
            let strict = scored_estimate(est, &x, &y, 0.99, &mut scratch).unwrap();
            assert!(
                strict.ci_length() >= loose.ci_length(),
                "{est}: strict={strict:?} loose={loose:?}"
            );
        }
    }

    #[test]
    fn perfect_correlation_stays_finite_and_sample_size_aware() {
        // r = 1 exactly: atanh(1) = ∞. The guarded transform must come
        // back finite, contain the estimate, and still be much wider for
        // a tiny sample than a large one — a 4-row perfect fit is weak
        // evidence, a 200-row one is strong.
        let perfect = |n: usize| {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
            scored_estimate(
                CorrelationEstimator::Pearson,
                &x,
                &y,
                0.95,
                &mut BootstrapScratch::new(),
            )
            .unwrap()
        };
        let tiny = perfect(4);
        let big = perfect(200);
        for s in [&tiny, &big] {
            assert!((s.estimate - 1.0).abs() < 1e-12, "{s:?}");
            assert!(s.ci_lo.is_finite() && s.ci_hi.is_finite(), "{s:?}");
            assert!(s.ci_lo <= s.estimate && s.estimate <= s.ci_hi, "{s:?}");
            assert!(s.ci_length() > 0.0, "{s:?}");
        }
        assert!(
            tiny.ci_length() > 5.0 * big.ci_length(),
            "tiny={tiny:?} big={big:?}"
        );
    }

    #[test]
    fn degenerate_sample_is_a_typed_error() {
        let x = [3.0, 3.0, 3.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        for est in CorrelationEstimator::ALL {
            assert!(
                scored_estimate(est, &x, &y, 0.95, &mut BootstrapScratch::new()).is_err(),
                "{est}"
            );
        }
    }

    #[test]
    fn pm1_scored_matches_standalone_pieces() {
        let (x, y) = noisy_linear(80);
        let est = CorrelationEstimator::Pm1Bootstrap { seed: 42 };
        let s = scored_estimate(est, &x, &y, 0.95, &mut BootstrapScratch::new()).unwrap();
        let standalone = crate::bootstrap::pm1_bootstrap(
            &x,
            &y,
            &BootstrapConfig {
                seed: 42,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        let ci = crate::bootstrap::pm1_ci(&x, &y, 42).unwrap();
        assert_eq!(s.estimate, standalone.estimate);
        assert_eq!((s.ci_lo, s.ci_hi), (ci.low, ci.high));
    }
}
