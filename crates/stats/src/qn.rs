//! The robust `Qn` scale estimator (Rousseeuw & Croux, 1993) and the
//! `Qn`-based robust correlation (paper Section 5.3, estimator 4; see
//! Shevlyakov & Oja, *Robust Correlation*, 2016).

use crate::error::{validate_pairs, StatsError};

/// Asymptotic consistency constant making `Qn` unbiased for the standard
/// deviation under normality.
const QN_CONSTANT: f64 = 2.219_144;

/// Finite-sample correction factor `d_n` for the `Qn` estimator
/// (Croux & Rousseeuw, 1992).
fn small_sample_factor(n: usize) -> f64 {
    match n {
        0 | 1 => 0.0,
        2 => 0.399,
        3 => 0.994,
        4 => 0.512,
        5 => 0.844,
        6 => 0.611,
        7 => 0.857,
        8 => 0.669,
        9 => 0.872,
        _ => {
            let nf = n as f64;
            if n % 2 == 1 {
                nf / (nf + 1.4)
            } else {
                nf / (nf + 3.8)
            }
        }
    }
}

/// The `Qn` scale estimate of `data`: the k-th order statistic of the
/// `n(n−1)/2` pairwise absolute differences, where `k = C(h, 2)` and
/// `h = ⌊n/2⌋ + 1`, scaled for consistency at the normal distribution.
///
/// This is the plain `O(n² log n)` formulation — sketch samples are at most
/// a few thousand values, far below the size where the `O(n log n)`
/// algorithm of Croux & Rousseeuw pays off.
///
/// # Errors
///
/// [`StatsError::TooFewSamples`] for fewer than 2 observations.
pub fn qn_scale(data: &[f64]) -> Result<f64, StatsError> {
    let n = data.len();
    if n < 2 {
        return Err(StatsError::TooFewSamples { needed: 2, got: n });
    }
    if !data.iter().all(|v| v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    let h = n / 2 + 1;
    let k = h * (h - 1) / 2; // C(h, 2), 1-based order statistic index

    let mut diffs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            diffs.push((data[i] - data[j]).abs());
        }
    }
    let (_, kth, _) = diffs.select_nth_unstable_by(k - 1, f64::total_cmp);
    Ok(QN_CONSTANT * small_sample_factor(n) * *kth)
}

/// Robust correlation from robust scales (Gnanadesikan–Kettenring
/// construction with `Qn`):
///
/// ```text
/// r_Qn = ( Qn(x̃ + ỹ)² − Qn(x̃ − ỹ)² ) / ( Qn(x̃ + ỹ)² + Qn(x̃ − ỹ)² )
/// ```
///
/// where `x̃ = x / Qn(x)` and `ỹ = y / Qn(y)` are robustly standardized
/// variables (centering is unnecessary since `Qn` is translation
/// invariant). The result lies in `[−1, 1]` by construction and resists
/// outlier contamination that destroys Pearson's estimator.
///
/// # Errors
///
/// * [`StatsError::ZeroVariance`] if either variable has zero `Qn` scale
///   (more than half of the pairwise differences are zero).
/// * Other failure modes as in [`qn_scale`].
pub fn qn_correlation(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(x, y, 2)?;
    let sx = qn_scale(x)?;
    let sy = qn_scale(y)?;
    if sx <= 0.0 || sy <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let u: Vec<f64> = x.iter().zip(y).map(|(&a, &b)| a / sx + b / sy).collect();
    let v: Vec<f64> = x.iter().zip(y).map(|(&a, &b)| a / sx - b / sy).collect();
    let qu = qn_scale(&u)?.powi(2);
    let qv = qn_scale(&v)?.powi(2);
    if qu + qv <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(((qu - qv) / (qu + qv)).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qn_scale_of_constant_data_is_zero() {
        assert_eq!(qn_scale(&[3.0; 8]).unwrap(), 0.0);
    }

    #[test]
    fn qn_scale_is_translation_invariant_and_scale_equivariant() {
        let data = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0, 3.0];
        let q = qn_scale(&data).unwrap();
        let shifted: Vec<f64> = data.iter().map(|v| v + 1000.0).collect();
        assert!((qn_scale(&shifted).unwrap() - q).abs() < 1e-9);
        let scaled: Vec<f64> = data.iter().map(|v| v * 3.0).collect();
        assert!((qn_scale(&scaled).unwrap() - 3.0 * q).abs() < 1e-9);
    }

    #[test]
    fn qn_scale_estimates_sigma_under_normality() {
        // Deterministic "normal" sample via the inverse CDF over a uniform
        // grid: Qn should be close to 1.
        let n = 500;
        let data: Vec<f64> = (1..=n)
            .map(|i| crate::normal::inverse_normal_cdf((i as f64 - 0.5) / n as f64))
            .collect();
        let q = qn_scale(&data).unwrap();
        assert!((q - 1.0).abs() < 0.1, "Qn={q}");
    }

    #[test]
    fn qn_scale_resists_outliers() {
        let mut data: Vec<f64> = (1..=100)
            .map(|i| crate::normal::inverse_normal_cdf((f64::from(i) - 0.5) / 100.0))
            .collect();
        let clean = qn_scale(&data).unwrap();
        // Replace 20% with huge outliers; Qn has a 50% breakdown point.
        for v in data.iter_mut().take(20) {
            *v = 1e6;
        }
        let dirty = qn_scale(&data).unwrap();
        assert!(dirty < 4.0 * clean, "clean={clean} dirty={dirty}");
    }

    #[test]
    fn qn_correlation_perfect_linear() {
        let x: Vec<f64> = (1..=30).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        let r = qn_correlation(&x, &y).unwrap();
        assert!(r > 0.99, "r={r}");
        let yn: Vec<f64> = x.iter().map(|v| -v).collect();
        let r = qn_correlation(&x, &yn).unwrap();
        assert!(r < -0.99, "r={r}");
    }

    #[test]
    fn qn_correlation_near_zero_for_independent_grids() {
        // A deterministic "independent" pattern: x cycles fast, y slow.
        let x: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
        let y: Vec<f64> = (0..64).map(|i| f64::from(i / 8)).collect();
        let r = qn_correlation(&x, &y).unwrap();
        assert!(r.abs() < 0.3, "r={r}");
    }

    #[test]
    fn qn_correlation_survives_outliers() {
        let mut x: Vec<f64> = (1..=60).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v * 1.5 + 2.0).collect();
        x.push(1e6);
        y.push(-1e6);
        let rq = qn_correlation(&x, &y).unwrap();
        let rp = crate::pearson::pearson(&x, &y).unwrap();
        assert!(rq > 0.9, "qn correlation should survive: {rq}");
        assert!(rp < 0.0, "pearson should be destroyed: {rp}");
    }

    #[test]
    fn errors() {
        assert!(matches!(
            qn_scale(&[1.0]),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert_eq!(
            qn_correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
        assert!(matches!(
            qn_scale(&[1.0, f64::NAN]),
            Err(StatsError::NonFiniteInput)
        ));
    }

    #[test]
    fn result_in_unit_range_for_messy_data() {
        let x = [0.0, 0.0, 1.0, 1.0, 2.0, 5.0, 5.0, 9.0];
        let y = [1.0, 3.0, 1.0, 4.0, 2.0, 8.0, 2.0, 9.0];
        let r = qn_correlation(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
