//! Error type shared by all estimators in this crate.

/// Why a statistic could not be computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsError {
    /// Fewer samples than the estimator's minimum (`needed`) were supplied.
    TooFewSamples {
        /// Minimum number of samples the estimator requires.
        needed: usize,
        /// Number of samples that were actually supplied.
        got: usize,
    },
    /// The paired input slices have different lengths.
    LengthMismatch {
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
    /// One of the variables is (numerically) constant, so correlation is
    /// undefined (zero variance appears in the denominator).
    ZeroVariance,
    /// An input contained a non-finite value (NaN or ±∞).
    NonFiniteInput,
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooFewSamples { needed, got } => {
                write!(f, "too few samples: estimator needs {needed}, got {got}")
            }
            Self::LengthMismatch { left, right } => {
                write!(f, "paired slices differ in length: {left} vs {right}")
            }
            Self::ZeroVariance => write!(f, "zero variance: correlation undefined"),
            Self::NonFiniteInput => write!(f, "input contains NaN or infinite values"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Validate that `x` and `y` form a usable paired sample of at least
/// `min_len` observations with only finite values.
pub(crate) fn validate_pairs(x: &[f64], y: &[f64], min_len: usize) -> Result<(), StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < min_len {
        return Err(StatsError::TooFewSamples {
            needed: min_len,
            got: x.len(),
        });
    }
    if !x.iter().chain(y.iter()).all(|v| v.is_finite()) {
        return Err(StatsError::NonFiniteInput);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::TooFewSamples { needed: 3, got: 1 };
        assert!(e.to_string().contains("needs 3"));
        let e = StatsError::LengthMismatch { left: 2, right: 5 };
        assert!(e.to_string().contains("2 vs 5"));
        assert!(StatsError::ZeroVariance.to_string().contains("variance"));
        assert!(StatsError::NonFiniteInput.to_string().contains("NaN"));
    }

    #[test]
    fn validate_rejects_mismatched_lengths() {
        assert_eq!(
            validate_pairs(&[1.0], &[1.0, 2.0], 1),
            Err(StatsError::LengthMismatch { left: 1, right: 2 })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        assert_eq!(
            validate_pairs(&[1.0, f64::NAN], &[1.0, 2.0], 2),
            Err(StatsError::NonFiniteInput)
        );
        assert_eq!(
            validate_pairs(&[1.0, 2.0], &[f64::INFINITY, 2.0], 2),
            Err(StatsError::NonFiniteInput)
        );
    }

    #[test]
    fn validate_accepts_good_input() {
        assert!(validate_pairs(&[1.0, 2.0], &[3.0, 4.0], 2).is_ok());
    }
}
