//! Unified interface over the five correlation estimators the paper
//! evaluates (Section 5.3).

use crate::bootstrap::{pm1_bootstrap, BootstrapConfig};
use crate::distance::distance_correlation;
use crate::error::StatsError;
use crate::kendall::kendall_tau;
use crate::pearson::pearson;
use crate::qn::qn_correlation;
use crate::rin::rin_correlation;
use crate::spearman::spearman;

/// The correlation estimators studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrelationEstimator {
    /// Pearson's sample correlation (Eq. 3).
    Pearson,
    /// Spearman's rank correlation.
    Spearman,
    /// Rank-based Inverse Normal (rankit + Pearson).
    Rin,
    /// Robust correlation via the `Qn` scale estimator.
    Qn,
    /// PM1 bootstrap (mean of resampled Pearson correlations) with the
    /// given RNG seed.
    Pm1Bootstrap {
        /// Seed for the deterministic resampling stream.
        seed: u64,
    },
    /// Kendall's τ-b rank correlation (extension beyond the paper's five;
    /// Theorem 1 makes any paired statistic estimable).
    Kendall,
    /// Distance correlation (Székely et al.) — detects arbitrary
    /// dependence, sign-blind, in `[0, 1]` (extension, cited in paper §6).
    DistanceCorrelation,
}

impl CorrelationEstimator {
    /// The five estimators evaluated in the paper (Section 5.3), in the
    /// paper's order — what Figure 4 sweeps over.
    pub const ALL: [Self; 5] = [
        Self::Pearson,
        Self::Spearman,
        Self::Rin,
        Self::Qn,
        Self::Pm1Bootstrap { seed: 0x5eed },
    ];

    /// Paper estimators plus the extensions (Kendall, distance
    /// correlation).
    pub const EXTENDED: [Self; 7] = [
        Self::Pearson,
        Self::Spearman,
        Self::Rin,
        Self::Qn,
        Self::Pm1Bootstrap { seed: 0x5eed },
        Self::Kendall,
        Self::DistanceCorrelation,
    ];

    /// Short machine-friendly name (matches the labels in Figure 4).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Pearson => "pearson",
            Self::Spearman => "spearman",
            Self::Rin => "rin",
            Self::Qn => "qn",
            Self::Pm1Bootstrap { .. } => "pm1",
            Self::Kendall => "kendall",
            Self::DistanceCorrelation => "dcor",
        }
    }

    /// Minimum paired-sample size this estimator needs to produce
    /// *meaningful* output — enforced by [`Self::estimate`], so "n below
    /// the minimum ⇒ always `Err`" is a contract admission checks (like
    /// the query planner's pass-2 gate) can rely on.
    ///
    /// The moment/rank estimators are honest at `n = 2` (two distinct
    /// points carry sign information). The two resampling-free composites
    /// need one more row: at `n = 2` every nondegenerate PM1 resample is
    /// the full sample (the bootstrap mean degenerates to plain Pearson),
    /// and the distance-correlation centering algebra returns exactly 1
    /// for *any* two distinct points — no information about the data.
    #[must_use]
    pub fn min_samples(&self) -> usize {
        match self {
            Self::Pearson | Self::Spearman | Self::Rin | Self::Qn | Self::Kendall => 2,
            Self::Pm1Bootstrap { .. } | Self::DistanceCorrelation => 3,
        }
    }

    /// Estimate the correlation of the paired sample.
    ///
    /// # Errors
    ///
    /// Propagates the underlying estimator's [`StatsError`]s; any sample
    /// smaller than [`Self::min_samples`] is a
    /// [`StatsError::TooFewSamples`].
    pub fn estimate(&self, x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
        crate::error::validate_pairs(x, y, self.min_samples())?;
        match self {
            Self::Pearson => pearson(x, y),
            Self::Spearman => spearman(x, y),
            Self::Rin => rin_correlation(x, y),
            Self::Qn => qn_correlation(x, y),
            Self::Pm1Bootstrap { seed } => {
                let cfg = BootstrapConfig {
                    seed: *seed,
                    ..BootstrapConfig::default()
                };
                pm1_bootstrap(x, y, &cfg).map(|b| b.estimate)
            }
            Self::Kendall => kendall_tau(x, y),
            Self::DistanceCorrelation => distance_correlation(x, y),
        }
    }

    /// The population-level quantity this estimator targets, computed on
    /// full columns. For the rank-based estimators this applies the same
    /// transformation to the population data (the paper compares sketch
    /// estimates "to their corresponding population correlations,
    /// including the transformations of the population data when
    /// applicable"); PM1 targets the plain Pearson correlation.
    ///
    /// # Errors
    ///
    /// Propagates the underlying estimator's [`StatsError`]s.
    pub fn population_target(&self, x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
        match self {
            Self::Pearson | Self::Pm1Bootstrap { .. } => pearson(x, y),
            Self::Spearman => spearman(x, y),
            Self::Rin => rin_correlation(x, y),
            Self::Qn => qn_correlation(x, y),
            Self::Kendall => kendall_tau(x, y),
            Self::DistanceCorrelation => distance_correlation(x, y),
        }
    }
}

impl std::fmt::Display for CorrelationEstimator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for CorrelationEstimator {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "pearson" | "rp" => Ok(Self::Pearson),
            "spearman" | "rs" => Ok(Self::Spearman),
            "rin" => Ok(Self::Rin),
            "qn" => Ok(Self::Qn),
            "pm1" | "bootstrap" => Ok(Self::Pm1Bootstrap { seed: 0x5eed }),
            "kendall" | "tau" => Ok(Self::Kendall),
            "dcor" | "distance" => Ok(Self::DistanceCorrelation),
            other => Err(format!(
                "unknown estimator '{other}' (expected pearson|spearman|rin|qn|pm1|kendall|dcor)"
            )),
        }
    }
}

/// Free-function convenience wrapper around
/// [`CorrelationEstimator::estimate`].
///
/// # Errors
///
/// Propagates the underlying estimator's [`StatsError`]s.
pub fn estimate_correlation(
    estimator: CorrelationEstimator,
    x: &[f64],
    y: &[f64],
) -> Result<f64, StatsError> {
    estimator.estimate(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_estimators_agree_on_perfect_linear_data() {
        let x: Vec<f64> = (1..=50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 2.0).collect();
        for est in CorrelationEstimator::ALL {
            let r = est.estimate(&x, &y).unwrap();
            assert!(r > 0.98, "{est}: r={r}");
        }
    }

    #[test]
    fn all_estimators_agree_on_sign() {
        let x: Vec<f64> = (1..=50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| -v + 0.01 * (v * 10.0).sin()).collect();
        for est in CorrelationEstimator::ALL {
            let r = est.estimate(&x, &y).unwrap();
            assert!(r < -0.9, "{est}: r={r}");
        }
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for est in CorrelationEstimator::ALL {
            let parsed: CorrelationEstimator = est.name().parse().unwrap();
            assert_eq!(parsed.name(), est.name());
        }
        assert!("nope".parse::<CorrelationEstimator>().is_err());
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(
            "rp".parse::<CorrelationEstimator>().unwrap(),
            CorrelationEstimator::Pearson
        );
        assert_eq!(
            "rs".parse::<CorrelationEstimator>().unwrap(),
            CorrelationEstimator::Spearman
        );
    }

    #[test]
    fn population_target_of_pm1_is_pearson() {
        let x = [1.0, 2.0, 3.0, 4.0, 10.0];
        let y = [1.0, 4.0, 9.0, 16.0, 100.0];
        let pm1 = CorrelationEstimator::Pm1Bootstrap { seed: 1 };
        assert_eq!(
            pm1.population_target(&x, &y).unwrap(),
            pearson(&x, &y).unwrap()
        );
        // But Spearman's target is the rank correlation (here exactly 1).
        let sp = CorrelationEstimator::Spearman;
        assert!((sp.population_target(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn errors_propagate() {
        // Non-collinear, non-constant data so nothing but the sample-size
        // gate can reject: every n below the estimator's honest minimum
        // must be a typed error, and the minimum itself must succeed.
        let x = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0];
        let y = [2.0, 5.0, 7.0, 12.0, 18.0, 25.0];
        for est in CorrelationEstimator::EXTENDED {
            let min = est.min_samples();
            for n in 0..min {
                assert!(
                    matches!(
                        est.estimate(&x[..n], &y[..n]),
                        Err(StatsError::TooFewSamples { needed, got })
                            if needed == min && got == n
                    ),
                    "{est}: n={n} below min={min} must be TooFewSamples"
                );
            }
            assert!(
                est.estimate(&x[..min], &y[..min]).is_ok(),
                "{est}: n={min} (the minimum) must succeed"
            );
        }
    }
}
