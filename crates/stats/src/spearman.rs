//! Spearman's rank correlation coefficient (paper Section 5.3, estimator 2).

use crate::error::StatsError;
use crate::pearson::pearson;
use crate::rank::average_ranks;

/// Spearman's rank correlation: Pearson's correlation of the
/// (average-tie) rank transforms of `x` and `y`.
///
/// Captures monotone (not only linear) relationships; this is the paper's
/// definition — "the numeric column values are transformed using r(x) and
/// then the Pearson's correlation over the transformed values is computed".
///
/// ```
/// // A monotone but nonlinear relationship: Spearman sees a perfect link.
/// let x: Vec<f64> = (1..=10).map(f64::from).collect();
/// let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
/// assert!((sketch_stats::spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// Same failure modes as [`pearson`]; in particular a variable whose values
/// are all tied has zero rank variance and yields
/// [`StatsError::ZeroVariance`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_nonlinear_relationship() {
        // y = x³ is monotone: Spearman = 1 even though Pearson < 1.
        let x: Vec<f64> = (1..=20).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn perfect_antitone_relationship() {
        let x: Vec<f64> = (1..=10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| (-v).exp()).collect();
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn classic_tie_free_formula_agreement() {
        // Without ties, Spearman = 1 − 6Σd²/(n(n²−1)).
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [3.0, 1.0, 4.0, 2.0, 5.0];
        let rx = average_ranks(&x);
        let ry = average_ranks(&y);
        let d2: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - b).powi(2)).sum();
        let n = x.len() as f64;
        let classic = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
        assert!((spearman(&x, &y).unwrap() - classic).abs() < 1e-12);
    }

    #[test]
    fn invariant_under_monotone_transform() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0];
        let y = [2.0, 4.0, 9.0, 1.0, 7.0, 3.0];
        let rho = spearman(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        let y2: Vec<f64> = y.iter().map(|v| v.ln()).collect();
        assert!((spearman(&x2, &y2).unwrap() - rho).abs() < 1e-12);
    }

    #[test]
    fn handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let rho = spearman(&x, &y).unwrap();
        assert!(rho > 0.9 && rho <= 1.0);
    }

    #[test]
    fn constant_column_is_error() {
        assert_eq!(
            spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn robust_to_a_single_outlier_unlike_pearson() {
        let mut x: Vec<f64> = (1..=30).map(f64::from).collect();
        let mut y: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        // Corrupt one pair with a huge outlier in opposite direction.
        x.push(1000.0);
        y.push(-1000.0);
        let rho = spearman(&x, &y).unwrap();
        let r = pearson(&x, &y).unwrap();
        assert!(rho > 0.8, "spearman should stay high, got {rho}");
        assert!(r < rho, "pearson should be dragged down more: {r} vs {rho}");
    }
}
