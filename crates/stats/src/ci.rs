//! Confidence intervals and error-risk statistics for correlation
//! estimates (paper Sections 4.2–4.3).
//!
//! Three mechanisms are implemented:
//!
//! 1. **Fisher's z standard error** `SE_z = 1/√(n−3)` — cheap, but assumes
//!    bivariate normality ([`fisher_z_se`], [`fisher_z_interval`]).
//! 2. The paper's new **Hoeffding confidence interval**
//!    ([`hoeffding_interval`]): distribution-free bounds built from five
//!    individual Hoeffding inequalities on the sufficient statistics
//!    `{μ_A, μ_B, ν_A, ν_B, ν_AB}` of the Pearson estimator, combined with
//!    a union bound at level `α/5` each. Requires only the global value
//!    range `C` of the columns — which a single data pass provides — and
//!    the sketch-join sample size `n`.
//! 3. The **HFD variant** ([`hfd_interval`]): at small `n` the Hoeffding
//!    bounds on the variance terms can go negative, collapsing the
//!    denominator; HFD substitutes the *sample* standard deviations in the
//!    denominator. Not a true probabilistic bound, but its length is still
//!    a useful risk signal — it is what the `s4 = r_p · ci_h` scoring
//!    function of Section 4.4 consumes.

use crate::error::{validate_pairs, StatsError};

/// A closed interval `[low, high]`, always clamped to `[−1, 1]` by the
/// constructors in this module when it bounds a correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub low: f64,
    /// Upper endpoint.
    pub high: f64,
}

impl ConfidenceInterval {
    /// Create an interval; endpoints are swapped if given out of order.
    /// A NaN endpoint carries no information, so it yields the vacuous
    /// interval — never an interval whose `contains`/`length` lie (and
    /// never a bound a pruning planner could act on).
    #[must_use]
    pub fn new(low: f64, high: f64) -> Self {
        if low.is_nan() || high.is_nan() {
            Self::vacuous()
        } else if low <= high {
            Self { low, high }
        } else {
            Self {
                low: high,
                high: low,
            }
        }
    }

    /// Interval covering the whole correlation range — the "no information"
    /// interval.
    #[must_use]
    pub const fn vacuous() -> Self {
        Self {
            low: -1.0,
            high: 1.0,
        }
    }

    /// Interval length `high − low`.
    #[must_use]
    pub fn length(&self) -> f64 {
        self.high - self.low
    }

    /// Does the interval contain `v`?
    #[must_use]
    pub fn contains(&self, v: f64) -> bool {
        self.low <= v && v <= self.high
    }

    /// Clamp both endpoints into `[−1, 1]`.
    #[must_use]
    pub fn clamped_to_unit(self) -> Self {
        Self {
            low: self.low.clamp(-1.0, 1.0),
            high: self.high.clamp(-1.0, 1.0),
        }
    }
}

/// Standard error of the Fisher z-transformed correlation,
/// `SE_z = 1/√(n−3)` (paper Section 4.2).
///
/// Following the paper's `se_z` scoring factor, `n` is floored at 4 so the
/// result is always finite and at most 1.
#[must_use]
pub fn fisher_z_se(n: usize) -> f64 {
    1.0 / ((n.max(4) - 3) as f64).sqrt()
}

/// Fisher z 95%-style confidence interval at level `alpha` around estimate
/// `r` for sample size `n`: transform to z-space, add ±`z_{α/2}`·SE, and
/// transform back with `tanh`.
///
/// `atanh` diverges at |r| = 1, which would collapse the interval to a
/// zero-width `[±1, ±1]` — false certainty for exactly the perfect-fit
/// small samples where uncertainty is largest. The transform therefore
/// bounds |r| away from 1 by `1/(2n)` (a continuity-correction-style
/// guard that tightens as evidence accumulates) and re-widens the result
/// to contain the (unit-clamped) point estimate, so the interval is
/// never degenerate at |r| = 1 and tolerates r marginally outside
/// `[−1, 1]` from float error.
#[must_use]
pub fn fisher_z_interval(r: f64, n: usize, alpha: f64) -> ConfidenceInterval {
    let guard = 1.0 - 1.0 / (2.0 * n.max(2) as f64);
    let bounded = r.clamp(-guard, guard);
    let z = 0.5 * ((1.0 + bounded) / (1.0 - bounded)).ln(); // atanh(bounded)
    let zcrit = crate::normal::inverse_normal_cdf(1.0 - alpha / 2.0);
    let se = fisher_z_se(n);
    let ci =
        ConfidenceInterval::new((z - zcrit * se).tanh(), (z + zcrit * se).tanh()).clamped_to_unit();
    let r_unit = r.clamp(-1.0, 1.0);
    ConfidenceInterval::new(ci.low.min(r_unit), ci.high.max(r_unit))
}

/// Global value bounds of the two *full* columns, `C_low = min{x∈X, y∈Y}`
/// and `C_high = max{x∈X, y∈Y}` (paper Section 4.3).
///
/// These are computed during the single sketch-construction pass; the
/// joined columns are subsets of the originals, so the bounds remain valid
/// after any join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueBounds {
    /// Smallest value across both columns.
    pub c_low: f64,
    /// Largest value across both columns.
    pub c_high: f64,
}

impl ValueBounds {
    /// Bounds from explicit endpoints.
    #[must_use]
    pub fn new(c_low: f64, c_high: f64) -> Self {
        if c_low <= c_high {
            Self { c_low, c_high }
        } else {
            Self {
                c_low: c_high,
                c_high: c_low,
            }
        }
    }

    /// Combine per-column ranges into the pairwise bounds.
    #[must_use]
    pub fn union(a: Self, b: Self) -> Self {
        Self {
            c_low: a.c_low.min(b.c_low),
            c_high: a.c_high.max(b.c_high),
        }
    }

    /// Bounds observed in a paired sample (used when the caller has no
    /// pre-computed column statistics; valid but looser than full-column
    /// bounds only in the sense that they may *under*-estimate `C` — the
    /// sketch layer always passes full-column bounds).
    #[must_use]
    pub fn from_samples(x: &[f64], y: &[f64]) -> Self {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in x.iter().chain(y) {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Self {
            c_low: lo,
            c_high: hi,
        }
    }

    /// Range width `C = C_high − C_low`.
    #[must_use]
    pub fn range(&self) -> f64 {
        self.c_high - self.c_low
    }
}

/// The five sufficient statistics of the Pearson estimator on the shifted
/// sample `a = x − C_low`, `b = y − C_low`, plus the sample variance of
/// each underlying term (needed by the empirical-Bernstein bounds).
struct SampleParams {
    mu_a: f64,
    mu_b: f64,
    nu_a: f64,
    nu_b: f64,
    nu_ab: f64,
    /// Sample variances of `a`, `b`, `a²`, `b²`, `ab` (population form).
    var_terms: [f64; 5],
}

fn sample_params(x: &[f64], y: &[f64], c_low: f64) -> SampleParams {
    let n = x.len() as f64;
    let mut sums = [0.0f64; 5];
    let mut sq_sums = [0.0f64; 5];
    for (&xi, &yi) in x.iter().zip(y) {
        let a = xi - c_low;
        let b = yi - c_low;
        let terms = [a, b, a * a, b * b, a * b];
        for (i, t) in terms.into_iter().enumerate() {
            sums[i] += t;
            sq_sums[i] += t * t;
        }
    }
    let means = sums.map(|s| s / n);
    let mut var_terms = [0.0; 5];
    for i in 0..5 {
        var_terms[i] = (sq_sums[i] / n - means[i] * means[i]).max(0.0);
    }
    SampleParams {
        mu_a: means[0],
        mu_b: means[1],
        nu_a: means[2],
        nu_b: means[3],
        nu_ab: means[4],
        var_terms,
    }
}

/// Numerator/denominator bound assembly shared by the true Hoeffding
/// interval and the HFD variant (paper Eqs. 6–7).
fn assemble_interval(
    p: &SampleParams,
    widths: [f64; 5],
    c: f64,
    hfd_denominator: Option<f64>,
    clamp: bool,
) -> ConfidenceInterval {
    // Parameter bounds, clamped to their feasible ranges: means lie in
    // [0, C], raw second moments in [0, C²] (the clamp is valid because A
    // and B are bounded in [0, C] by construction, and only tightens the
    // interval). `widths` are the per-parameter deviation bounds for
    // (μ_A, μ_B, ν_A, ν_B, ν_AB).
    let c2 = c * c;
    let mu_a_low = (p.mu_a - widths[0]).max(0.0);
    let mu_a_high = (p.mu_a + widths[0]).min(c);
    let mu_b_low = (p.mu_b - widths[1]).max(0.0);
    let mu_b_high = (p.mu_b + widths[1]).min(c);
    let nu_a_low = (p.nu_a - widths[2]).max(0.0);
    let nu_a_high = (p.nu_a + widths[2]).min(c2);
    let nu_b_low = (p.nu_b - widths[3]).max(0.0);
    let nu_b_high = (p.nu_b + widths[3]).min(c2);
    let nu_ab_low = (p.nu_ab - widths[4]).max(0.0);
    let nu_ab_high = (p.nu_ab + widths[4]).min(c2);

    let num_low = nu_ab_low - mu_a_high * mu_b_high;
    let num_high = nu_ab_high - mu_a_low * mu_b_low;

    let (den_low, den_high) = if let Some(d) = hfd_denominator {
        (d, d)
    } else {
        let dl = ((nu_a_low - mu_a_high * mu_a_high).max(0.0)
            * (nu_b_low - mu_b_high * mu_b_high).max(0.0))
        .sqrt();
        let dh = ((nu_a_high - mu_a_low * mu_a_low).max(0.0)
            * (nu_b_high - mu_b_low * mu_b_low).max(0.0))
        .sqrt();
        (dl, dh)
    };

    // Eq. 6: ρ_low uses the larger denominator when the numerator is
    // positive (shrinks it towards zero) and the smaller one when negative
    // (pushes it further down). Eq. 7 mirrors this for ρ_high. A zero
    // denominator yields ±∞, which the final clamp turns into the vacuous
    // endpoint — exactly the "no information" semantics we want.
    let rho_low = if num_low >= 0.0 {
        num_low / den_high
    } else {
        num_low / den_low
    };
    let rho_high = if num_high >= 0.0 {
        num_high / den_low
    } else {
        num_high / den_high
    };

    let low = if rho_low.is_nan() { -1.0 } else { rho_low };
    let high = if rho_high.is_nan() { 1.0 } else { rho_high };
    let ci = ConfidenceInterval::new(low, high);
    if clamp {
        ci.clamped_to_unit()
    } else {
        // Cap at a finite width so downstream length normalization stays
        // well-behaved when the denominator collapses.
        ConfidenceInterval::new(ci.low.max(-1e12), ci.high.min(1e12))
    }
}

/// Hoeffding deviation widths `t` (for means) and `t'` (for second
/// moments) at level `α/5` each: `t = √(ln(10/α)·C²/2n)`,
/// `t' = √(ln(10/α)·C⁴/2n)`.
fn hoeffding_widths(n: usize, c: f64, alpha: f64) -> (f64, f64) {
    let ln_term = (10.0 / alpha).ln();
    let n = n as f64;
    let t = (ln_term * c * c / (2.0 * n)).sqrt();
    let t2 = (ln_term * c.powi(4) / (2.0 * n)).sqrt();
    (t, t2)
}

/// The paper's distribution-free confidence interval for the population
/// Pearson correlation `ρ` of the joined columns (Section 4.3).
///
/// `x`/`y` is the paired sample reconstructed from the sketch join,
/// `bounds` the full-column value range (`C_low`, `C_high`), and `alpha`
/// the total failure probability (each of the five parameter bounds gets
/// `α/5`; a union bound yields `Pr[ρ_low ≤ ρ ≤ ρ_high] ≥ 1 − α`).
///
/// ```
/// use sketch_stats::{hoeffding_interval, pearson, ValueBounds};
/// let x: Vec<f64> = (0..500).map(|i| (f64::from(i) * 0.1).sin()).collect();
/// let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 0.1).collect();
/// let bounds = ValueBounds::from_samples(&x, &y);
/// let ci = hoeffding_interval(&x, &y, bounds, 0.05).unwrap();
/// let r = pearson(&x, &y).unwrap();
/// assert!(ci.contains(r));
/// ```
///
/// # Errors
///
/// Standard paired-sample validation errors; sample values outside
/// `bounds` also produce [`StatsError::NonFiniteInput`]-style rejection via
/// debug assertions (callers construct bounds from the same columns, so
/// this cannot occur in normal operation).
pub fn hoeffding_interval(
    x: &[f64],
    y: &[f64],
    bounds: ValueBounds,
    alpha: f64,
) -> Result<ConfidenceInterval, StatsError> {
    validate_pairs(x, y, 1)?;
    let c = bounds.range();
    if c <= 0.0 {
        // All values identical: correlation undefined, no information.
        return Ok(ConfidenceInterval::vacuous());
    }
    let p = sample_params(x, y, bounds.c_low);
    let (t, t2) = hoeffding_widths(x.len(), c, alpha);
    Ok(assemble_interval(&p, [t, t, t2, t2, t2], c, None, true))
}

/// The HFD small-sample variant (paper Section 4.3, "Effect of Small
/// Sample Sizes"): same numerator bounds as [`hoeffding_interval`] but the
/// denominator is replaced by the product of the *sample* standard
/// deviations. The resulting `[ρ_low_HFD, ρ_high_HFD]` is not a true
/// probabilistic bound, but its length is a meaningful risk measure and is
/// what the `ci_h` scoring factor uses.
///
/// Unlike [`hoeffding_interval`], the endpoints are **not clamped** to
/// `[−1, 1]`: the interval *length* is the signal here, and clamping
/// would flatten exactly the high-risk (small `n`, large range `C`)
/// candidates the scorer must discriminate between.
///
/// # Errors
///
/// Standard paired-sample validation errors.
pub fn hfd_interval(
    x: &[f64],
    y: &[f64],
    bounds: ValueBounds,
    alpha: f64,
) -> Result<ConfidenceInterval, StatsError> {
    validate_pairs(x, y, 1)?;
    let c = bounds.range();
    if c <= 0.0 {
        return Ok(ConfidenceInterval::vacuous());
    }
    let p = sample_params(x, y, bounds.c_low);
    let (t, t2) = hoeffding_widths(x.len(), c, alpha);
    let var_a = (p.nu_a - p.mu_a * p.mu_a).max(0.0);
    let var_b = (p.nu_b - p.mu_b * p.mu_b).max(0.0);
    let den = (var_a * var_b).sqrt();
    Ok(assemble_interval(
        &p,
        [t, t, t2, t2, t2],
        c,
        Some(den),
        false,
    ))
}

/// Empirical-Bernstein confidence interval for the population Pearson
/// correlation — the "tighter confidence bounds" direction the paper
/// names as future work (Section 7).
///
/// Same five-parameter union-bound construction as
/// [`hoeffding_interval`], but each parameter's deviation uses the
/// Maurer–Pontil empirical Bernstein inequality
///
/// ```text
/// |μ − μ̂| ≤ √(2·V̂·ln(2/δ)/n) + 7·R·ln(2/δ)/(3(n−1))
/// ```
///
/// where `V̂` is the *sample variance* of the term and `R` its range
/// (`C` for means, `C²` for second moments). When the data's spread is
/// much smaller than its range — ubiquitous for real columns with a few
/// outliers — the variance term dominates and the interval is far
/// tighter than Hoeffding's range-only bound, at identical
/// distribution-free validity and still O(1) evaluation after the single
/// data pass.
///
/// # Errors
///
/// Standard paired-sample validation errors (needs `n ≥ 2`).
pub fn bernstein_interval(
    x: &[f64],
    y: &[f64],
    bounds: ValueBounds,
    alpha: f64,
) -> Result<ConfidenceInterval, StatsError> {
    validate_pairs(x, y, 2)?;
    let c = bounds.range();
    if c <= 0.0 {
        return Ok(ConfidenceInterval::vacuous());
    }
    let p = sample_params(x, y, bounds.c_low);
    let n = x.len() as f64;
    let ln_term = (10.0 / alpha).ln(); // ln(2/δ) with δ = α/5
    let ranges = [c, c, c * c, c * c, c * c];
    let mut widths = [0.0f64; 5];
    for i in 0..5 {
        widths[i] = (2.0 * p.var_terms[i] * ln_term / n).sqrt()
            + 7.0 * ranges[i] * ln_term / (3.0 * (n - 1.0));
    }
    Ok(assemble_interval(&p, widths, c, None, true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearson::pearson;

    fn correlated_sample(n: usize, noise: f64) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-random pattern, bounded in [0, ~3].
        let x: Vec<f64> = (0..n)
            .map(|i| 1.5 + (i as f64 * 0.37).sin() * 1.4)
            .collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + noise * ((i as f64) * 1.7).cos())
            .collect();
        (x, y)
    }

    #[test]
    fn interval_basics() {
        let ci = ConfidenceInterval::new(0.7, 0.2);
        assert_eq!(ci.low, 0.2);
        assert_eq!(ci.high, 0.7);
        assert!((ci.length() - 0.5).abs() < 1e-12);
        assert!(ci.contains(0.3));
        assert!(!ci.contains(0.9));
        assert_eq!(ConfidenceInterval::vacuous().length(), 2.0);
    }

    #[test]
    fn fisher_se_shrinks_with_n() {
        assert!((fisher_z_se(4) - 1.0).abs() < 1e-12);
        assert!((fisher_z_se(103) - 0.1).abs() < 1e-12);
        assert!(fisher_z_se(1) <= 1.0); // floored at n = 4
        assert!(fisher_z_se(1000) < fisher_z_se(100));
    }

    #[test]
    fn fisher_interval_contains_estimate() {
        let ci = fisher_z_interval(0.6, 50, 0.05);
        assert!(ci.contains(0.6));
        assert!(ci.low > 0.0 && ci.high < 1.0);
    }

    #[test]
    fn nan_endpoints_yield_vacuous_interval() {
        // NaN fails every comparison, so the old swap-sort path built an
        // interval whose contains/length lied. A planner pruning on such
        // a bound would silently drop candidates.
        for (lo, hi) in [(f64::NAN, 0.5), (0.5, f64::NAN), (f64::NAN, f64::NAN)] {
            let ci = ConfidenceInterval::new(lo, hi);
            assert_eq!(ci, ConfidenceInterval::vacuous(), "({lo}, {hi})");
            assert!(ci.contains(0.0));
            assert_eq!(ci.length(), 2.0);
        }
    }

    #[test]
    fn fisher_interval_guarded_at_perfect_correlation() {
        // |r| = 1 used to collapse to zero-width [±1, ±1] via atanh(±1)
        // = ±inf — falsely certain exactly where uncertainty is largest.
        for n in [4usize, 10, 100] {
            for r in [1.0, -1.0] {
                let ci = fisher_z_interval(r, n, 0.05);
                assert!(ci.length() > 0.0, "n={n} r={r} degenerate {ci:?}");
                assert!(ci.contains(r), "n={n} r={r} {ci:?}");
                assert!(ci.low >= -1.0 && ci.high <= 1.0, "n={n} r={r} {ci:?}");
            }
        }
        // More evidence at the same perfect fit ⇒ a tighter interval.
        let small = fisher_z_interval(1.0, 5, 0.05);
        let large = fisher_z_interval(1.0, 500, 0.05);
        assert!(large.length() < small.length(), "{large:?} vs {small:?}");
    }

    #[test]
    fn fisher_interval_tolerates_float_error_outside_unit_range() {
        // Accumulated float error can push a computed r marginally past
        // ±1; the guard must absorb it instead of producing NaN bounds.
        for r in [1.0 + 1e-12, -(1.0 + 1e-12), 1.0 + 1e-6, -1.000001] {
            let ci = fisher_z_interval(r, 12, 0.05);
            assert!(ci.low.is_finite() && ci.high.is_finite(), "r={r} {ci:?}");
            assert!(ci.low >= -1.0 && ci.high <= 1.0, "r={r} {ci:?}");
            assert!(ci.length() > 0.0, "r={r} degenerate {ci:?}");
            assert!(ci.contains(r.clamp(-1.0, 1.0)), "r={r} {ci:?}");
        }
    }

    #[test]
    fn value_bounds_construction() {
        let b = ValueBounds::new(5.0, 1.0);
        assert_eq!(b.c_low, 1.0);
        assert_eq!(b.c_high, 5.0);
        let u = ValueBounds::union(ValueBounds::new(0.0, 2.0), ValueBounds::new(-1.0, 1.0));
        assert_eq!(u.c_low, -1.0);
        assert_eq!(u.c_high, 2.0);
        let s = ValueBounds::from_samples(&[1.0, 3.0], &[-2.0, 0.5]);
        assert_eq!(s.c_low, -2.0);
        assert_eq!(s.c_high, 3.0);
        assert_eq!(s.range(), 5.0);
    }

    #[test]
    fn hoeffding_interval_contains_truth_for_large_samples() {
        let (x, y) = correlated_sample(5_000, 0.4);
        let r_full = pearson(&x, &y).unwrap();
        let bounds = ValueBounds::from_samples(&x, &y);
        // Use the first 2000 points as "the sample".
        let ci = hoeffding_interval(&x[..2000], &y[..2000], bounds, 0.05).unwrap();
        assert!(
            ci.contains(r_full),
            "true r = {r_full} not in {ci:?} (len {})",
            ci.length()
        );
    }

    #[test]
    fn hoeffding_interval_shrinks_with_sample_size() {
        let (x, y) = correlated_sample(20_000, 0.3);
        let bounds = ValueBounds::from_samples(&x, &y);
        let small = hoeffding_interval(&x[..100], &y[..100], bounds, 0.05).unwrap();
        let large = hoeffding_interval(&x[..10_000], &y[..10_000], bounds, 0.05).unwrap();
        assert!(
            large.length() < small.length(),
            "large={large:?} small={small:?}"
        );
    }

    #[test]
    fn hoeffding_scaling_matches_one_over_sqrt_n() {
        // For fixed data distribution, width should scale ≈ 1/√n.
        let (x, y) = correlated_sample(40_000, 0.3);
        let bounds = ValueBounds::from_samples(&x, &y);
        let w1 = hoeffding_interval(&x[..2_000], &y[..2_000], bounds, 0.05)
            .unwrap()
            .length();
        let w2 = hoeffding_interval(&x[..32_000], &y[..32_000], bounds, 0.05)
            .unwrap()
            .length();
        // 16× more samples → width ratio ≈ 4 (allow generous slack: the
        // vacuous clamp at ±1 can compress w1).
        let ratio = w1 / w2;
        assert!(ratio > 2.0, "ratio={ratio} w1={w1} w2={w2}");
    }

    #[test]
    fn hoeffding_small_sample_is_vacuous_but_valid() {
        let (x, y) = correlated_sample(5, 0.1);
        let bounds = ValueBounds::from_samples(&x, &y);
        let ci = hoeffding_interval(&x, &y, bounds, 0.05).unwrap();
        // At n=5 the bound has no power — must clamp to (nearly) [−1, 1].
        assert!(ci.length() > 1.9, "{ci:?}");
        assert!(ci.low >= -1.0 && ci.high <= 1.0);
    }

    #[test]
    fn hfd_interval_length_discriminates_where_hoeffding_saturates() {
        // At small n the (clamped) Hoeffding interval saturates at length
        // 2 for both candidates; the unclamped HFD lengths still order
        // them by risk.
        let (x, y) = correlated_sample(4_000, 0.3);
        let bounds = ValueBounds::from_samples(&x, &y);
        let h_small = hoeffding_interval(&x[..10], &y[..10], bounds, 0.05).unwrap();
        let h_big = hoeffding_interval(&x[..40], &y[..40], bounds, 0.05).unwrap();
        assert_eq!(h_small.length(), 2.0);
        assert_eq!(h_big.length(), 2.0);
        let f_small = hfd_interval(&x[..10], &y[..10], bounds, 0.05).unwrap();
        let f_big = hfd_interval(&x[..40], &y[..40], bounds, 0.05).unwrap();
        assert!(
            f_small.length() > f_big.length(),
            "hfd lengths must discriminate: {f_small:?} vs {f_big:?}"
        );
    }

    #[test]
    fn hfd_length_orders_risk_by_sample_size() {
        // The s4 ranking factor needs: more samples ⇒ shorter HFD interval.
        let (x, y) = correlated_sample(4_000, 0.5);
        let bounds = ValueBounds::from_samples(&x, &y);
        let mut prev = f64::INFINITY;
        for &n in &[20usize, 100, 500, 3_000] {
            let len = hfd_interval(&x[..n], &y[..n], bounds, 0.05)
                .unwrap()
                .length();
            assert!(len <= prev + 1e-9, "n={n} len={len} prev={prev}");
            prev = len;
        }
    }

    #[test]
    fn bernstein_informative_where_hoeffding_saturates() {
        // Bulk of the data spread over [30, 70], with outlier pairs at 0
        // and 100 stretching the range. At n = 20k the Hoeffding ν-width
        // scales with C² and saturates the interval, while the empirical
        // Bernstein width scales with the (much smaller) sample variance
        // and stays informative.
        let n = 40_000usize;
        let mut x: Vec<f64> = (0..n)
            .map(|i| 50.0 + 20.0 * ((i as f64) * 0.37).sin())
            .collect();
        let mut y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, &v)| v + 6.0 * ((i as f64) * 1.1).cos())
            .collect();
        x.push(0.0);
        y.push(100.0);
        x.push(100.0);
        y.push(0.0);
        let r_full = pearson(&x, &y).unwrap();
        let bounds = ValueBounds::from_samples(&x, &y);

        let m = 20_000;
        let h = hoeffding_interval(&x[..m], &y[..m], bounds, 0.05).unwrap();
        let b = bernstein_interval(&x[..m], &y[..m], bounds, 0.05).unwrap();
        assert!(h.length() > 1.9, "range-only bound ~saturates: {h:?}");
        assert!(
            b.length() < 1.5,
            "variance-aware bound must stay informative: {b:?} (hoeffding {h:?})"
        );
        assert!(b.contains(r_full), "r={r_full} vs {b:?}");
    }

    #[test]
    fn bernstein_contains_sample_estimate() {
        let (x, y) = correlated_sample(400, 0.5);
        let bounds = ValueBounds::from_samples(&x, &y);
        let r = pearson(&x, &y).unwrap();
        let ci = bernstein_interval(&x, &y, bounds, 0.05).unwrap();
        assert!(ci.contains(r), "r={r} not in {ci:?}");
        assert!(ci.low >= -1.0 && ci.high <= 1.0);
    }

    #[test]
    fn bernstein_never_much_worse_than_hoeffding() {
        // Both bounds clamp the same plug-in estimator; for uniform-ish
        // data (variance ≈ C²/12) Bernstein ≈ Hoeffding up to constants.
        let (x, y) = correlated_sample(5_000, 0.4);
        let bounds = ValueBounds::from_samples(&x, &y);
        let h = hoeffding_interval(&x, &y, bounds, 0.05).unwrap();
        let b = bernstein_interval(&x, &y, bounds, 0.05).unwrap();
        assert!(b.length() <= 2.5 * h.length() + 0.1, "b={b:?} h={h:?}");
    }

    #[test]
    fn bernstein_coverage_on_subsamples() {
        let (x, y) = correlated_sample(10_000, 0.6);
        let rho = pearson(&x, &y).unwrap();
        let bounds = ValueBounds::from_samples(&x, &y);
        let mut covered = 0;
        let trials = 40;
        for t in 0..trials {
            let xs: Vec<f64> = x.iter().skip(t).step_by(25).copied().take(400).collect();
            let ys: Vec<f64> = y.iter().skip(t).step_by(25).copied().take(400).collect();
            let ci = bernstein_interval(&xs, &ys, bounds, 0.05).unwrap();
            covered += usize::from(ci.contains(rho));
        }
        assert!(covered >= 38, "coverage {covered}/{trials}");
    }

    #[test]
    fn degenerate_range_gives_vacuous_interval() {
        let x = [2.0, 2.0, 2.0];
        let y = [2.0, 2.0, 2.0];
        let bounds = ValueBounds::from_samples(&x, &y);
        let ci = hoeffding_interval(&x, &y, bounds, 0.05).unwrap();
        assert_eq!(ci, ConfidenceInterval::vacuous());
    }

    #[test]
    fn interval_endpoints_always_in_unit_range() {
        let (x, y) = correlated_sample(64, 1.5);
        let bounds = ValueBounds::from_samples(&x, &y);
        for alpha in [0.01, 0.05, 0.2] {
            let ci = hoeffding_interval(&x, &y, bounds, alpha).unwrap();
            assert!(ci.low >= -1.0 && ci.high <= 1.0, "alpha={alpha} {ci:?}");
            // HFD endpoints are deliberately unclamped but must be finite.
            let ci = hfd_interval(&x, &y, bounds, alpha).unwrap();
            assert!(
                ci.low.is_finite() && ci.high.is_finite(),
                "alpha={alpha} {ci:?}"
            );
        }
    }

    #[test]
    fn smaller_alpha_gives_wider_interval() {
        let (x, y) = correlated_sample(2_000, 0.4);
        let bounds = ValueBounds::from_samples(&x, &y);
        let strict = hoeffding_interval(&x, &y, bounds, 0.01).unwrap();
        let loose = hoeffding_interval(&x, &y, bounds, 0.20).unwrap();
        assert!(strict.length() >= loose.length());
    }

    #[test]
    fn empirical_coverage_at_95_percent() {
        // Repeatedly subsample and check the Hoeffding CI covers the
        // full-population correlation at least 95% of the time (it is a
        // conservative bound, so coverage should be ~100%).
        let (x, y) = correlated_sample(10_000, 0.6);
        let rho = pearson(&x, &y).unwrap();
        let bounds = ValueBounds::from_samples(&x, &y);
        let mut covered = 0;
        let trials = 50;
        for t in 0..trials {
            // Deterministic strided subsamples of size 500.
            let xs: Vec<f64> = x.iter().skip(t).step_by(20).copied().take(500).collect();
            let ys: Vec<f64> = y.iter().skip(t).step_by(20).copied().take(500).collect();
            let ci = hoeffding_interval(&xs, &ys, bounds, 0.05).unwrap();
            if ci.contains(rho) {
                covered += 1;
            }
        }
        assert!(covered >= 48, "coverage {covered}/{trials}");
    }
}
