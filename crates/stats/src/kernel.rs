//! SoA sum kernels for the estimator hot path — std-only, portable,
//! autovectorizable.
//!
//! # Layout and chunking
//!
//! Every kernel consumes contiguous column slices (`x[]`, `y[]`, index
//! blocks) and accumulates into [`LANES`] independent partial sums:
//! element `i` always lands in lane `i % LANES`, and the lanes are
//! reduced left-to-right at the end. Splitting the accumulation across
//! independent lanes removes the loop-carried dependence on a single
//! float accumulator, so the optimizer is free to keep the lanes in
//! vector registers (`LANES = 8` f64 lanes = two AVX2 or one AVX-512
//! register per sum) — without any `target-cpu` flag, intrinsics, or
//! unsafe code. On a target with no vector units the same code runs as
//! plain scalar arithmetic.
//!
//! # Determinism contract
//!
//! Chunking reassociates float addition, so the kernels' results differ
//! from a single-accumulator loop in the last bits — but they are a pure
//! function of the input columns alone:
//!
//! * The lane assignment (`i % LANES`) and the reduction order are fixed
//!   by `LANES`, a compile-time constant. Thread counts, chunk sizes of
//!   the caller's fan-out, and scratch state never influence a bit of
//!   the output.
//! * Each optimized kernel has a scalar reference twin in this module
//!   (`*_scalar`) written as per-lane strided loops — the obviously
//!   correct spelling of the same association. The two are bit-identical
//!   by construction (identical op sequence per lane) for every numeric
//!   result, and the `prop_kernel` battery asserts it over arbitrary
//!   shapes, including ∞/signed-zero payloads and degenerate resamples.
//!   The sole exception is the sign/payload of NaN *outputs*: IEEE 754
//!   and LLVM leave NaN propagation unspecified (float adds may be
//!   commuted per inlining context), so two spellings of the same sum
//!   can produce differently-signed quiet NaNs. Whether a result is NaN
//!   is still exact, and every caller collapses NaN to `None` before it
//!   can reach an answer, so no observable output depends on a payload.
//! * For inputs shorter than `LANES` every lane holds at most one
//!   element, so the reduction degenerates to the plain left-to-right
//!   sum — tiny fixtures are bit-identical to the textbook loop.
//!
//! The kernels are raw sum machines: they accept NaN/∞ and simply
//! propagate them (IEEE semantics); validation and degeneracy policy
//! live in the callers ([`crate::pearson`], [`crate::bootstrap`]).

/// Number of independent accumulator lanes. Eight f64 lanes fill two
/// AVX2 registers (or one AVX-512 register) per sum and still fit the
/// 16 architectural vector registers of x86-64 when five sums are live.
pub const LANES: usize = 8;

/// The five raw sums of one gathered resample over (centered) columns:
/// Σx, Σy, Σx², Σy², Σxy — everything Pearson's `r` needs, in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GatherSums {
    /// Σ x[idx[i]]
    pub sx: f64,
    /// Σ y[idx[i]]
    pub sy: f64,
    /// Σ x[idx[i]]²
    pub sxx: f64,
    /// Σ y[idx[i]]²
    pub syy: f64,
    /// Σ x[idx[i]]·y[idx[i]]
    pub sxy: f64,
}

/// Centered second-moment sums for the direct (identity-gather) Pearson
/// pass: Σdx², Σdy², Σdx·dy with `dx = x − mean_x`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CenteredSums {
    /// Σ (x − mean_x)²
    pub sxx: f64,
    /// Σ (y − mean_y)²
    pub syy: f64,
    /// Σ (x − mean_x)(y − mean_y)
    pub sxy: f64,
}

/// Reduce one lane array left-to-right. The single reduction order every
/// kernel (optimized and reference) shares.
#[inline]
fn reduce(lanes: &[f64; LANES]) -> f64 {
    let mut total = 0.0;
    for &lane in lanes {
        total += lane;
    }
    total
}

/// Fused gather + five-sum kernel: accumulate the Pearson sums of the
/// resample `(x[idx[i]], y[idx[i]])` in one chunked pass — no `bx`/`by`
/// materialization, no second pass.
///
/// # Panics
///
/// Panics if any index is out of bounds for `x`/`y` (the callers
/// generate indices in `0..x.len()`).
#[must_use]
#[inline]
pub fn gather_sums(x: &[f64], y: &[f64], idx: &[u32]) -> GatherSums {
    let mut sx = [0.0f64; LANES];
    let mut sy = [0.0f64; LANES];
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];

    let mut chunks = idx.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        // Gather the chunk into dense lane temporaries first, then do
        // the pure-arithmetic lane update the vectorizer can lift whole.
        let mut xv = [0.0f64; LANES];
        let mut yv = [0.0f64; LANES];
        for lane in 0..LANES {
            let j = chunk[lane] as usize;
            xv[lane] = x[j];
            yv[lane] = y[j];
        }
        for lane in 0..LANES {
            sx[lane] += xv[lane];
            sy[lane] += yv[lane];
            sxx[lane] += xv[lane] * xv[lane];
            syy[lane] += yv[lane] * yv[lane];
            sxy[lane] += xv[lane] * yv[lane];
        }
    }
    for (lane, &j) in chunks.remainder().iter().enumerate() {
        let (xv, yv) = (x[j as usize], y[j as usize]);
        sx[lane] += xv;
        sy[lane] += yv;
        sxx[lane] += xv * xv;
        syy[lane] += yv * yv;
        sxy[lane] += xv * yv;
    }

    GatherSums {
        sx: reduce(&sx),
        sy: reduce(&sy),
        sxx: reduce(&sxx),
        syy: reduce(&syy),
        sxy: reduce(&sxy),
    }
}

/// Scalar reference twin of [`gather_sums`]: per-lane strided loops —
/// the same association spelled the obvious way. Bit-identical to the
/// optimized kernel for every input (property-tested); kept in-tree as
/// the correctness oracle and the microbench baseline shape.
#[must_use]
#[inline]
pub fn gather_sums_scalar(x: &[f64], y: &[f64], idx: &[u32]) -> GatherSums {
    let mut out = GatherSums::default();
    let mut sx = [0.0f64; LANES];
    let mut sy = [0.0f64; LANES];
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    for lane in 0..LANES {
        for &j in idx.iter().skip(lane).step_by(LANES) {
            let (xv, yv) = (x[j as usize], y[j as usize]);
            sx[lane] += xv;
            sy[lane] += yv;
            sxx[lane] += xv * xv;
            syy[lane] += yv * yv;
            sxy[lane] += xv * yv;
        }
    }
    out.sx = reduce(&sx);
    out.sy = reduce(&sy);
    out.sxx = reduce(&sxx);
    out.syy = reduce(&syy);
    out.sxy = reduce(&sxy);
    out
}

/// Chunked column means: `(Σx/n, Σy/n)` with lane-split sums. The first
/// pass of [`crate::pearson`] and the centering step of the bootstrap
/// kernels.
#[must_use]
#[inline]
pub fn column_means(x: &[f64], y: &[f64]) -> (f64, f64) {
    let n = x.len() as f64;
    (lane_sum(x) / n, lane_sum(y) / n)
}

/// Lane-split sum of one column.
#[must_use]
#[inline]
pub fn lane_sum(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = v.chunks_exact(LANES);
    for chunk in chunks.by_ref() {
        for lane in 0..LANES {
            acc[lane] += chunk[lane];
        }
    }
    for (lane, &value) in chunks.remainder().iter().enumerate() {
        acc[lane] += value;
    }
    reduce(&acc)
}

/// Scalar reference twin of [`lane_sum`] (per-lane strided).
#[must_use]
#[inline]
pub fn lane_sum_scalar(v: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (lane, slot) in acc.iter_mut().enumerate() {
        for &value in v.iter().skip(lane).step_by(LANES) {
            *slot += value;
        }
    }
    reduce(&acc)
}

/// Chunked centered second moments — the fused second pass of
/// [`crate::pearson`]: Σdx², Σdy², Σdx·dy in one loop.
#[must_use]
#[inline]
pub fn centered_sums(x: &[f64], y: &[f64], mean_x: f64, mean_y: f64) -> CenteredSums {
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &y[..n]);
    let mut xc = x.chunks_exact(LANES);
    let mut yc = y.chunks_exact(LANES);
    for (cx, cy) in xc.by_ref().zip(yc.by_ref()) {
        for lane in 0..LANES {
            let dx = cx[lane] - mean_x;
            let dy = cy[lane] - mean_y;
            sxx[lane] += dx * dx;
            syy[lane] += dy * dy;
            sxy[lane] += dx * dy;
        }
    }
    for (lane, (&xv, &yv)) in xc.remainder().iter().zip(yc.remainder()).enumerate() {
        let dx = xv - mean_x;
        let dy = yv - mean_y;
        sxx[lane] += dx * dx;
        syy[lane] += dy * dy;
        sxy[lane] += dx * dy;
    }
    CenteredSums {
        sxx: reduce(&sxx),
        syy: reduce(&syy),
        sxy: reduce(&sxy),
    }
}

/// Scalar reference twin of [`centered_sums`] (per-lane strided).
#[must_use]
#[inline]
pub fn centered_sums_scalar(x: &[f64], y: &[f64], mean_x: f64, mean_y: f64) -> CenteredSums {
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    let n = x.len().min(y.len());
    for lane in 0..LANES {
        let mut i = lane;
        while i < n {
            let dx = x[i] - mean_x;
            let dy = y[i] - mean_y;
            sxx[lane] += dx * dx;
            syy[lane] += dy * dy;
            sxy[lane] += dx * dy;
            i += LANES;
        }
    }
    CenteredSums {
        sxx: reduce(&sxx),
        syy: reduce(&syy),
        sxy: reduce(&sxy),
    }
}

/// Finish a gathered resample: Pearson's `r` from the five raw sums of a
/// sample of `n` draws over full-sample-centered columns, with the
/// mean-correction applied (`Sxx − Sx²/n`, …). `None` when the corrected
/// variance of either side is not strictly positive (a degenerate
/// resample — e.g. one index drawn `n` times) or any sum went non-finite.
#[must_use]
#[inline]
pub fn pearson_from_gather(n: usize, sums: &GatherSums) -> Option<f64> {
    let nf = n as f64;
    let sxx = sums.sxx - sums.sx * sums.sx / nf;
    let syy = sums.syy - sums.sy * sums.sy / nf;
    let sxy = sums.sxy - sums.sx * sums.sy / nf;
    // Requiring a strictly-positive comparison to *hold* (rather than
    // rejecting `<= 0.0`) also catches NaN from ∞−∞ cancellation.
    let positive = |v: f64| matches!(v.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater));
    if !positive(sxx) || !positive(syy) || !sxy.is_finite() {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// The pre-kernel resample path, retained in-tree as the numerical
/// baseline: gather `(x[idx[i]], y[idx[i]])` into `bx`/`by`, then run the
/// classic two-pass mean-centered Pearson over the materialized buffers.
/// The `prop_kernel` battery bounds the fused kernel's divergence from
/// this path, and the `bootstrap_kernel` microbench reports the speedup
/// against it.
///
/// # Panics
///
/// Panics if `bx`/`by` are shorter than `idx` or any index is out of
/// bounds.
#[must_use]
#[inline]
pub fn resample_pearson_twopass(
    x: &[f64],
    y: &[f64],
    idx: &[u32],
    bx: &mut [f64],
    by: &mut [f64],
) -> Option<f64> {
    let n = idx.len();
    for (i, &j) in idx.iter().enumerate() {
        bx[i] = x[j as usize];
        by[i] = y[j as usize];
    }
    let (bx, by) = (&bx[..n], &by[..n]);
    let nf = n as f64;
    let mean_x = bx.iter().sum::<f64>() / nf;
    let mean_y = by.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in bx.iter().zip(by) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn columns(n: usize) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin() * 3.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + ((i as f64) * 1.3).cos())
            .collect();
        (x, y)
    }

    #[test]
    fn gather_matches_scalar_reference_bitwise() {
        for n in [0usize, 1, 3, 7, 8, 9, 16, 31, 200] {
            let (x, y) = columns(n.max(1));
            let idx: Vec<u32> = (0..n).map(|i| ((i * 5 + 1) % x.len()) as u32).collect();
            let a = gather_sums(&x, &y, &idx);
            let b = gather_sums_scalar(&x, &y, &idx);
            assert_eq!(a.sx.to_bits(), b.sx.to_bits(), "n={n}");
            assert_eq!(a.sy.to_bits(), b.sy.to_bits(), "n={n}");
            assert_eq!(a.sxx.to_bits(), b.sxx.to_bits(), "n={n}");
            assert_eq!(a.syy.to_bits(), b.syy.to_bits(), "n={n}");
            assert_eq!(a.sxy.to_bits(), b.sxy.to_bits(), "n={n}");
        }
    }

    #[test]
    fn short_inputs_reduce_to_plain_left_to_right_sums() {
        // Below LANES each element owns a lane, so the kernel result is
        // bit-identical to the naive sequential sum.
        let x = [1.5, -2.25, 3.0, 0.5];
        let y = [2.0, 4.0, -1.0, 8.0];
        let idx = [0u32, 1, 2, 3];
        let s = gather_sums(&x, &y, &idx);
        assert_eq!(s.sx.to_bits(), (1.5 + -2.25 + 3.0 + 0.5f64).to_bits());
        assert_eq!(
            s.sxy.to_bits(),
            (1.5 * 2.0 + -2.25 * 4.0 + -3.0 + 0.5 * 8.0f64).to_bits()
        );
        assert_eq!(
            lane_sum(&x).to_bits(),
            (1.5 + -2.25 + 3.0 + 0.5f64).to_bits()
        );
    }

    #[test]
    fn fused_resample_close_to_twopass() {
        let (x, y) = columns(257);
        let (mx, my) = column_means(&x, &y);
        let cx: Vec<f64> = x.iter().map(|v| v - mx).collect();
        let cy: Vec<f64> = y.iter().map(|v| v - my).collect();
        let idx: Vec<u32> = (0..257).map(|i| ((i * 31 + 7) % 257) as u32).collect();
        let fused = pearson_from_gather(idx.len(), &gather_sums(&cx, &cy, &idx)).unwrap();
        let mut bx = vec![0.0; idx.len()];
        let mut by = vec![0.0; idx.len()];
        let twopass = resample_pearson_twopass(&x, &y, &idx, &mut bx, &mut by).unwrap();
        assert!((fused - twopass).abs() < 1e-12, "{fused} vs {twopass}");
    }

    #[test]
    fn degenerate_resample_is_none() {
        let (x, y) = columns(64);
        let (mx, my) = column_means(&x, &y);
        let cx: Vec<f64> = x.iter().map(|v| v - mx).collect();
        let cy: Vec<f64> = y.iter().map(|v| v - my).collect();
        // Every draw picks the same row: zero variance.
        let idx = vec![5u32; 64];
        assert_eq!(pearson_from_gather(64, &gather_sums(&cx, &cy, &idx)), None);
    }

    #[test]
    fn nan_inputs_propagate_to_none_not_panic() {
        let x = [1.0, f64::NAN, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0, 8.0, 6.0, 7.0, 9.0];
        let idx: Vec<u32> = (0..9).collect();
        let sums = gather_sums(&x, &y, &idx);
        assert!(sums.sx.is_nan());
        assert_eq!(pearson_from_gather(9, &sums), None);
    }

    #[test]
    fn centered_sums_match_scalar_reference_bitwise() {
        for n in [1usize, 5, 8, 13, 64, 100] {
            let (x, y) = columns(n);
            let (mx, my) = column_means(&x, &y);
            let a = centered_sums(&x, &y, mx, my);
            let b = centered_sums_scalar(&x, &y, mx, my);
            assert_eq!(a.sxx.to_bits(), b.sxx.to_bits(), "n={n}");
            assert_eq!(a.syy.to_bits(), b.syy.to_bits(), "n={n}");
            assert_eq!(a.sxy.to_bits(), b.sxy.to_bits(), "n={n}");
        }
    }

    #[test]
    fn lane_sum_matches_scalar_reference_bitwise() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let v: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.31).cos() * 7.5).collect();
            assert_eq!(lane_sum(&v).to_bits(), lane_sum_scalar(&v).to_bits());
        }
    }
}
