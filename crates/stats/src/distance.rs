//! Distance correlation (Székely, Rizzo & Bakirov 2007) — cited by the
//! paper (§6) as an example of the statistics a sketch-join sample
//! supports beyond classical correlations.
//!
//! Distance correlation is zero **iff** the variables are independent (for
//! finite first moments), so it detects arbitrary — not just monotone —
//! dependence. The plug-in estimator is `O(n²)`, fine for sketch-join
//! samples (≤ a few thousand pairs).

use crate::error::{validate_pairs, StatsError};

/// Doubly-centered pairwise-distance matrix of a 1-D sample, flattened
/// row-major.
fn centered_distances(v: &[f64]) -> Vec<f64> {
    let n = v.len();
    let mut d = vec![0.0; n * n];
    let mut row_means = vec![0.0; n];
    let mut grand = 0.0;
    for i in 0..n {
        for j in 0..n {
            let dist = (v[i] - v[j]).abs();
            d[i * n + j] = dist;
            row_means[i] += dist;
        }
        grand += row_means[i];
        row_means[i] /= n as f64;
    }
    grand /= (n * n) as f64;
    for i in 0..n {
        for j in 0..n {
            d[i * n + j] += grand - row_means[i] - row_means[j];
        }
    }
    d
}

/// Sample distance correlation `dCor(x, y) ∈ [0, 1]`.
///
/// Returns the square root of `dCov² / √(dVar_x · dVar_y)`; by
/// construction non-negative, and (asymptotically) zero exactly under
/// independence.
///
/// # Errors
///
/// Standard paired-sample validation errors; a constant variable yields
/// [`StatsError::ZeroVariance`].
pub fn distance_correlation(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(x, y, 2)?;
    let n = x.len();
    let a = centered_distances(x);
    let b = centered_distances(y);

    let n2 = (n * n) as f64;
    let mut dcov2 = 0.0;
    let mut dvar_x = 0.0;
    let mut dvar_y = 0.0;
    for (ai, bi) in a.iter().zip(&b) {
        dcov2 += ai * bi;
        dvar_x += ai * ai;
        dvar_y += bi * bi;
    }
    dcov2 /= n2;
    dvar_x /= n2;
    dvar_y /= n2;

    if dvar_x <= 0.0 || dvar_y <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let r2 = dcov2 / (dvar_x * dvar_y).sqrt();
    Ok(r2.max(0.0).sqrt().min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_dependence_gives_one() {
        let x: Vec<f64> = (0..40).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v - 7.0).collect();
        let d = distance_correlation(&x, &y).unwrap();
        assert!(d > 0.999, "d={d}");
        // Negative linear dependence too: dCor is sign-blind.
        let yn: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!(distance_correlation(&x, &yn).unwrap() > 0.999);
    }

    #[test]
    fn detects_nonmonotone_dependence_that_spearman_misses() {
        // y = (x − 0.5)² over a symmetric grid: ρ_s ≈ 0, dCor ≫ 0.
        let x: Vec<f64> = (0..101).map(|i| f64::from(i) / 100.0).collect();
        let y: Vec<f64> = x.iter().map(|v| (v - 0.5) * (v - 0.5)).collect();
        let rho = crate::spearman::spearman(&x, &y).unwrap();
        assert!(rho.abs() < 0.05, "spearman blind: {rho}");
        let d = distance_correlation(&x, &y).unwrap();
        assert!(d > 0.4, "dCor must see the parabola: {d}");
    }

    #[test]
    fn near_zero_for_independent_grids() {
        let x: Vec<f64> = (0..400).map(|i| f64::from(i % 20)).collect();
        let y: Vec<f64> = (0..400).map(|i| f64::from(i / 20)).collect();
        let d = distance_correlation(&x, &y).unwrap();
        assert!(d < 0.1, "d={d}");
    }

    #[test]
    fn symmetric_and_bounded() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0];
        let y = [3.0, 1.0, 9.0, 2.0, 7.0, 4.0];
        let a = distance_correlation(&x, &y).unwrap();
        let b = distance_correlation(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn invariant_under_shift_and_positive_scale() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [3.0, 1.0, 9.0, 2.0, 7.0];
        let a = distance_correlation(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 5.0 * v + 100.0).collect();
        let b = distance_correlation(&x2, &y).unwrap();
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(matches!(
            distance_correlation(&[1.0], &[2.0]),
            Err(StatsError::TooFewSamples { .. })
        ));
        assert_eq!(
            distance_correlation(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::ZeroVariance)
        );
    }
}
