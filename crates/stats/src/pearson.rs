//! Pearson's sample correlation coefficient `r` (paper Eq. 3).

use crate::error::{validate_pairs, StatsError};
use crate::kernel::{centered_sums, column_means};

/// Pearson's sample correlation between paired samples `x` and `y`.
///
/// Implements Eq. 3 of the paper:
///
/// ```text
/// r = Σ (xᵢ − x̄)(yᵢ − ȳ) / ( √Σ(xᵢ − x̄)² · √Σ(yᵢ − ȳ)² )
/// ```
///
/// Uses a two-pass, mean-centred computation for numerical stability (the
/// textbook one-pass `E[XY] − E[X]E[Y]` form loses catastrophic precision
/// when means are large relative to the spread, which is common for
/// monetary columns). The result is clamped to `[−1, 1]` to absorb
/// last-bit rounding.
///
/// Both passes run on the chunked lane kernels of [`crate::kernel`]
/// (means, then the three centered sums fused in one loop), so the
/// moment accumulation autovectorizes. Lane-splitting reassociates the
/// float additions, which can move the result by a few ulps relative to
/// a single-accumulator loop for `n >` [`crate::kernel::LANES`]; for
/// shorter inputs the kernels degenerate to the plain left-to-right sum
/// and the result is bit-identical to the textbook implementation. The
/// result remains a pure function of `(x, y)` — see the determinism
/// contract in [`crate::kernel`].
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let y = [2.0, 1.0, 4.0, 3.0, 5.0];
/// let r = sketch_stats::pearson(&x, &y).unwrap();
/// assert!((r - 0.8).abs() < 1e-12);
/// ```
///
/// # Errors
///
/// * [`StatsError::TooFewSamples`] if fewer than 2 pairs are supplied.
/// * [`StatsError::LengthMismatch`] if the slices differ in length.
/// * [`StatsError::ZeroVariance`] if either variable is constant.
/// * [`StatsError::NonFiniteInput`] on NaN/∞ inputs.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    validate_pairs(x, y, 2)?;
    let (mean_x, mean_y) = column_means(x, y);
    let s = centered_sums(x, y, mean_x, mean_y);
    if s.sxx <= 0.0 || s.syy <= 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok((s.sxy / (s.sxx.sqrt() * s.syy.sqrt())).clamp(-1.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let yn = [40.0, 30.0, 20.0, 10.0];
        assert!((pearson(&x, &yn).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_fixture() {
        // Hand-computed: x = [1,2,3,4,5], y = [2,1,4,3,5] → r = 0.8.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((pearson(&x, &y).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn invariant_under_affine_transform_with_positive_scale() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 9.0, 1.0, 7.0];
        let r = pearson(&x, &y).unwrap();
        let x2: Vec<f64> = x.iter().map(|v| 3.5 * v + 100.0).collect();
        let y2: Vec<f64> = y.iter().map(|v| 0.25 * v - 42.0).collect();
        assert!((pearson(&x2, &y2).unwrap() - r).abs() < 1e-12);
    }

    #[test]
    fn sign_flips_under_negative_scale() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 4.0, 9.0, 1.0, 7.0];
        let r = pearson(&x, &y).unwrap();
        let y2: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &y2).unwrap() + r).abs() < 1e-12);
    }

    #[test]
    fn symmetric_in_arguments() {
        let x = [1.0, 4.0, 2.0, 7.0];
        let y = [3.0, 1.0, 9.0, 2.0];
        assert_eq!(pearson(&x, &y).unwrap(), pearson(&y, &x).unwrap());
    }

    #[test]
    fn numerically_stable_with_large_offsets() {
        // Same shape shifted by 1e9 must give the same correlation.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0, 5.0];
        let r = pearson(&x, &y).unwrap();
        let xs: Vec<f64> = x.iter().map(|v| v + 1e9).collect();
        let ys: Vec<f64> = y.iter().map(|v| v + 1e9).collect();
        assert!((pearson(&xs, &ys).unwrap() - r).abs() < 1e-6);
    }

    #[test]
    fn errors() {
        assert_eq!(
            pearson(&[1.0], &[1.0]),
            Err(StatsError::TooFewSamples { needed: 2, got: 1 })
        );
        assert_eq!(
            pearson(&[1.0, 2.0, 3.0], &[1.0, 1.0, 1.0]),
            Err(StatsError::ZeroVariance)
        );
        assert_eq!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatsError::LengthMismatch { left: 2, right: 3 })
        );
    }

    #[test]
    fn result_always_in_unit_range() {
        // Nearly collinear data can round outside [−1,1] without the clamp.
        let x: Vec<f64> = (0..50).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1e-14 * v.sin()).collect();
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
