//! Property battery for the SoA estimator kernels (the PR-6 hot path).
//!
//! Two distinct contracts are asserted here, and they are deliberately
//! different strengths:
//!
//! 1. **Bit-equivalence, unconditional**: the chunk-major optimized
//!    kernels and their per-lane-strided scalar references perform the
//!    same float operations in the same order, so they must agree
//!    `to_bits`-exactly for *every* numeric input — arbitrary shapes, ∞
//!    and signed-zero payloads, constant columns, degenerate resamples.
//!    No tolerance. The one carve-out is the *payload of NaN outputs*:
//!    IEEE 754 and LLVM leave NaN sign/payload propagation unspecified
//!    (`fadd` operands may be commuted per inlining context, and x86
//!    returns the first NaN operand), so two spellings of the same sum
//!    may yield differently-signed quiet NaNs. The battery therefore
//!    compares NaN as a class — *whether* a result is NaN is still exact
//!    — and [`bits_eq`] encodes that rule.
//! 2. **Old-vs-new tolerance, documented**: the fused corrected-sums
//!    resample kernel reassociates additions relative to the pre-kernel
//!    gather-then-two-pass path, so those paths agree only within a
//!    tolerance — `1e-9` per resample and per CI endpoint on bounded,
//!    well-conditioned data (order statistics are 1-Lipschitz under
//!    sup-norm perturbation of the replicate multiset). Resamples whose
//!    centered variance cancels below ~1e-6 of the raw second moment are
//!    outside the contract: there the old path already returned
//!    rounding noise, and the new path may classify them degenerate
//!    (`None`) instead. The PM1 *estimate* under the adaptive stopping
//!    rule gets a looser documented bound (the stopping iteration can
//!    flip on an ε change in one replicate), so the tight property runs
//!    on a fixed replicate budget.

use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sketch_stats::kernel::{
    centered_sums, centered_sums_scalar, column_means, gather_sums, gather_sums_scalar, lane_sum,
    lane_sum_scalar, pearson_from_gather, resample_pearson_twopass,
};
use sketch_stats::{
    pearson, percentile_bootstrap_ci, pm1_bootstrap, pm1_ci, spearman, BootstrapConfig,
    BootstrapScratch,
};

/// Bitwise equality with NaN compared as a class: every non-NaN value
/// (including -0.0 vs 0.0 and ±∞) must match to the bit, but any NaN
/// equals any NaN — NaN sign/payload is unspecified by IEEE 754/LLVM
/// and legitimately differs between spellings of the same sum.
fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
}

/// Special values the sum kernels must propagate identically.
fn special() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(0.0),
        Just(-0.0),
        Just(1e300),
        Just(-1e300),
        Just(5e-324),
    ]
}

/// Arbitrary paired columns with special-value injections, plus a
/// resample index block over them (arbitrary length, including shorter
/// and much longer than the columns).
fn wild_columns() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<u32>)> {
    (2usize..160).prop_flat_map(|n| {
        (
            vec(-1e4f64..1e4, n..n + 1),
            vec(-1e4f64..1e4, n..n + 1),
            vec(0usize..n, 1..350),
            vec((0usize..n, special()), 0..6),
            vec((0usize..n, special()), 0..6),
        )
            .prop_map(|(mut x, mut y, idx, inj_x, inj_y)| {
                for (i, v) in inj_x {
                    x[i] = v;
                }
                for (i, v) in inj_y {
                    y[i] = v;
                }
                let idx = idx.into_iter().map(|i| i as u32).collect();
                (x, y, idx)
            })
    })
}

/// Well-conditioned paired columns: strictly spread `x`, linear `y` with
/// bounded noise — every realistic resample keeps most of its variance,
/// which is what the old-vs-new tolerance contract covers.
fn conditioned_columns(len: std::ops::Range<usize>) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    len.prop_flat_map(|n| {
        (
            vec(-0.4f64..0.4, n..n + 1),
            vec(-3.0f64..3.0, n..n + 1),
            -5.0f64..5.0,
        )
            .prop_map(|(jitter, noise, slope)| {
                let x: Vec<f64> = jitter
                    .iter()
                    .enumerate()
                    .map(|(i, j)| i as f64 + j)
                    .collect();
                let y: Vec<f64> = x.iter().zip(&noise).map(|(v, e)| slope * v + e).collect();
                (x, y)
            })
    })
}

/// The pre-PR-6 replicate collector, reimplemented literally: gather the
/// resample into buffers, run two-pass `pearson`, keep successes, with
/// the same RNG stream and attempt budget as the production collectors.
fn legacy_replicates(x: &[f64], y: &[f64], replicates: usize, seed: u64) -> Vec<f64> {
    let n = x.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut bx, mut by) = (vec![0.0; n], vec![0.0; n]);
    let mut rs = Vec::new();
    let mut attempts = 0usize;
    while rs.len() < replicates && attempts < replicates * 4 {
        attempts += 1;
        for i in 0..n {
            let j = rng.random_range(0..n);
            bx[i] = x[j];
            by[i] = y[j];
        }
        if let Ok(r) = pearson(&bx, &by) {
            rs.push(r);
        }
    }
    rs
}

/// Wilcox's index table, duplicated from the implementation for the
/// legacy oracle.
fn pm1_indices(n: usize) -> (usize, usize) {
    match n {
        0..=39 => (7, 593),
        40..=79 => (8, 592),
        80..=179 => (11, 589),
        180..=249 => (14, 586),
        _ => (16, 584),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Contract 1: five-sum gather kernel, bitwise, over everything —
    /// including the shared finisher.
    #[test]
    fn gather_sums_bit_identical_to_scalar_reference((x, y, idx) in wild_columns()) {
        let a = gather_sums(&x, &y, &idx);
        let b = gather_sums_scalar(&x, &y, &idx);
        prop_assert!(bits_eq(a.sx, b.sx), "sx {:?} vs {:?}", a.sx, b.sx);
        prop_assert!(bits_eq(a.sy, b.sy), "sy {:?} vs {:?}", a.sy, b.sy);
        prop_assert!(bits_eq(a.sxx, b.sxx), "sxx {:?} vs {:?}", a.sxx, b.sxx);
        prop_assert!(bits_eq(a.syy, b.syy), "syy {:?} vs {:?}", a.syy, b.syy);
        prop_assert!(bits_eq(a.sxy, b.sxy), "sxy {:?} vs {:?}", a.sxy, b.sxy);
        // The finisher maps every NaN sum to `None`, so its output is
        // payload-free and must match exactly.
        let ra = pearson_from_gather(idx.len(), &a).map(f64::to_bits);
        let rb = pearson_from_gather(idx.len(), &b).map(f64::to_bits);
        prop_assert_eq!(ra, rb);
    }

    /// Contract 1 for the direct-pass kernels (`pearson`'s two passes).
    #[test]
    fn centered_and_lane_sums_bit_identical_to_scalar((x, y, _) in wild_columns()) {
        prop_assert!(bits_eq(lane_sum(&x), lane_sum_scalar(&x)));
        let (mx, my) = column_means(&x, &y);
        let a = centered_sums(&x, &y, mx, my);
        let b = centered_sums_scalar(&x, &y, mx, my);
        prop_assert!(bits_eq(a.sxx, b.sxx), "sxx {:?} vs {:?}", a.sxx, b.sxx);
        prop_assert!(bits_eq(a.syy, b.syy), "syy {:?} vs {:?}", a.syy, b.syy);
        prop_assert!(bits_eq(a.sxy, b.sxy), "sxy {:?} vs {:?}", a.sxy, b.sxy);
    }

    /// A resample of an integer-valued constant column cancels exactly
    /// in the corrected sums and must classify degenerate — never a
    /// fabricated correlation.
    #[test]
    fn integer_constant_columns_classify_degenerate(
        n in 2usize..100,
        c in -1000i32..1000,
        m in 2usize..200,
    ) {
        let x = vec![f64::from(c); n];
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let idx: Vec<u32> = (0..m).map(|i| (i % n) as u32).collect();
        let (mx, my) = column_means(&x, &y);
        let cx: Vec<f64> = x.iter().map(|v| v - mx).collect();
        let cy: Vec<f64> = y.iter().map(|v| v - my).collect();
        prop_assert_eq!(pearson_from_gather(m, &gather_sums(&cx, &cy, &idx)), None);
    }

    /// Contract 2, per resample: fused corrected-sums vs the literal
    /// old gather-then-two-pass path, on full-mean-centered columns,
    /// within 1e-9 wherever the resample keeps ≥1e-6 of its raw second
    /// moment. (Both paths see the *same* resample by construction.)
    #[test]
    fn fused_resample_within_1e9_of_twopass_when_conditioned(
        (x, y) in conditioned_columns(4..120),
        draws in vec(any::<u32>(), 2..240),
    ) {
        let n = x.len();
        let idx: Vec<u32> = draws.into_iter().map(|d| d % n as u32).collect();
        let (mx, my) = column_means(&x, &y);
        let cx: Vec<f64> = x.iter().map(|v| v - mx).collect();
        let cy: Vec<f64> = y.iter().map(|v| v - my).collect();
        let sums = gather_sums(&cx, &cy, &idx);
        let m = idx.len() as f64;
        let sxx_c = sums.sxx - sums.sx * sums.sx / m;
        let syy_c = sums.syy - sums.sy * sums.sy / m;
        prop_assume!(sxx_c > 1e-6 * sums.sxx && syy_c > 1e-6 * sums.syy);

        let fused = pearson_from_gather(idx.len(), &sums);
        let (mut bx, mut by) = (vec![0.0; idx.len()], vec![0.0; idx.len()]);
        let twopass = resample_pearson_twopass(&x, &y, &idx, &mut bx, &mut by);
        match (fused, twopass) {
            (Some(a), Some(b)) => {
                prop_assert!((a - b).abs() < 1e-9, "fused={a} twopass={b}");
            }
            (a, b) => prop_assert!(false, "classification split: {a:?} vs {b:?}"),
        }
    }

    /// Contract 2, interval endpoints: the fused `pm1_ci` vs the legacy
    /// sort-and-index implementation over the same RNG stream, within
    /// 1e-9 per endpoint on well-conditioned data.
    #[test]
    fn pm1_ci_endpoints_within_1e9_of_legacy(
        (x, y) in conditioned_columns(10..60),
        seed in any::<u64>(),
    ) {
        let new = pm1_ci(&x, &y, seed).unwrap();
        let mut rs = legacy_replicates(&x, &y, 599, seed);
        prop_assume!(rs.len() == 599); // knife-edge resamples excluded
        rs.sort_by(f64::total_cmp);
        let (a, c) = pm1_indices(x.len());
        prop_assert!((new.low - rs[a - 1]).abs() < 1e-9, "{} vs {}", new.low, rs[a - 1]);
        prop_assert!((new.high - rs[c - 1]).abs() < 1e-9, "{} vs {}", new.high, rs[c - 1]);
    }

    /// Contract 2, point estimate on a *fixed* replicate budget (the
    /// adaptive stopping rule disabled by `min == max`): the mean of 200
    /// replicates each within 1e-9 stays within 1e-9.
    #[test]
    fn pm1_fixed_budget_estimate_within_1e9_of_legacy(
        (x, y) in conditioned_columns(10..60),
        seed in any::<u64>(),
    ) {
        let cfg = BootstrapConfig {
            min_resamples: 200,
            max_resamples: 200,
            seed,
            ..BootstrapConfig::default()
        };
        let new = pm1_bootstrap(&x, &y, &cfg).unwrap();
        let rs = legacy_replicates(&x, &y, 200, seed);
        prop_assume!(rs.len() == 200);
        let legacy_mean = (rs.iter().sum::<f64>() / 200.0).clamp(-1.0, 1.0);
        prop_assert_eq!(new.resamples, 200);
        prop_assert!(
            (new.estimate - legacy_mean).abs() < 1e-9,
            "new={} legacy={legacy_mean}",
            new.estimate
        );
    }

    /// Satellite regression: the generic (robust-estimator) percentile
    /// CI kept its replicate values — only the quantile step moved to
    /// `select_nth_unstable` — so its endpoints must be *bit-identical*
    /// to the old sort-then-rank implementation.
    #[test]
    fn generic_percentile_ci_bit_identical_to_sorting(
        (x, y) in conditioned_columns(8..50),
        seed in any::<u64>(),
        confidence in 0.5f64..0.99,
    ) {
        let ci = percentile_bootstrap_ci(
            &|a, b| spearman(a, b),
            &x,
            &y,
            99,
            confidence,
            seed,
            &mut BootstrapScratch::new(),
        )
        .unwrap();
        // Legacy path: same draws evaluated through the same statistic,
        // then a full sort and the rank formula.
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut bx, mut by) = (vec![0.0; n], vec![0.0; n]);
        let mut rs = Vec::new();
        let mut attempts = 0usize;
        while rs.len() < 99 && attempts < 99 * 4 {
            attempts += 1;
            for i in 0..n {
                let j = rng.random_range(0..n);
                bx[i] = x[j];
                by[i] = y[j];
            }
            if let Ok(r) = spearman(&bx, &by) {
                rs.push(r);
            }
        }
        rs.sort_by(f64::total_cmp);
        let alpha = (1.0 - confidence).clamp(1e-9, 1.0);
        let b = rs.len();
        let lo_rank = ((alpha / 2.0 * b as f64).ceil() as usize).clamp(1, b);
        let hi_rank = (b + 1 - lo_rank).clamp(1, b);
        prop_assert_eq!(ci.low.to_bits(), rs[lo_rank - 1].to_bits());
        prop_assert_eq!(ci.high.to_bits(), rs[hi_rank - 1].to_bits());
    }
}

/// Contract 2 under the *adaptive* stopping rule, as a deterministic
/// fixture: the stopping iteration may flip on an ε replicate change, so
/// the documented old-vs-new bound for the default config is loose
/// (0.02 — the same scale as the rule's own mean-change threshold).
#[test]
fn adaptive_pm1_documented_divergence_bound() {
    for n in [20usize, 50, 137, 400] {
        let x: Vec<f64> = (0..n)
            .map(|i| i as f64 + ((i * 7 % 13) as f64) * 0.1)
            .collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 0.7 * v + 10.0 * ((i as f64) * 0.9).sin())
            .collect();
        let cfg = BootstrapConfig::default();
        let new = pm1_bootstrap(&x, &y, &cfg).unwrap();

        // Legacy adaptive loop, literally (two-pass pearson resamples).
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let (mut bx, mut by) = (vec![0.0; n], vec![0.0; n]);
        let (mut sum, mut sum_sq, mut count, mut attempts) = (0.0f64, 0.0f64, 0usize, 0usize);
        while count < cfg.max_resamples && attempts < cfg.max_resamples * 2 {
            attempts += 1;
            for i in 0..n {
                let j = rng.random_range(0..n);
                bx[i] = x[j];
                by[i] = y[j];
            }
            let Ok(r) = pearson(&bx, &by) else { continue };
            count += 1;
            sum += r;
            sum_sq += r * r;
            if count >= cfg.min_resamples {
                let mean = sum / count as f64;
                let sd = (sum_sq / count as f64 - mean * mean).max(0.0).sqrt();
                if sd == 0.0 {
                    break;
                }
                let z = cfg.mean_change_threshold * (count as f64 + 1.0) / sd;
                let p = 2.0 * (1.0 - sketch_stats::normal_cdf(z));
                if p < cfg.stop_probability {
                    break;
                }
            }
        }
        let legacy = (sum / count as f64).clamp(-1.0, 1.0);
        assert!(
            (new.estimate - legacy).abs() < 0.02,
            "n={n}: new={} legacy={legacy} (counts {} vs {count})",
            new.estimate,
            new.resamples
        );
    }
}
