//! Property-based tests for the statistics substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use sketch_stats::{
    average_ranks, hfd_interval, hoeffding_interval, pearson, rankit_transform, rin_correlation,
    spearman, Moments, ValueBounds,
};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    vec(-1e4f64..1e4, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Pearson is symmetric and bounded.
    #[test]
    fn pearson_symmetric_and_bounded(x in finite_vec(2..200), y in finite_vec(2..200)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let Ok(r) = pearson(x, y) {
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert_eq!(r, pearson(y, x).unwrap());
        }
    }

    /// Pearson is invariant under positive affine maps and flips sign
    /// under negation.
    #[test]
    fn pearson_affine_invariance(
        x in finite_vec(3..100),
        y in finite_vec(3..100),
        scale in 0.001f64..100.0,
        shift in -1e4f64..1e4,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let Ok(r) = pearson(x, y) {
            let x2: Vec<f64> = x.iter().map(|v| scale * v + shift).collect();
            if let Ok(r2) = pearson(&x2, y) {
                prop_assert!((r - r2).abs() < 1e-6, "{r} vs {r2}");
            }
            let x3: Vec<f64> = x.iter().map(|v| -v).collect();
            if let Ok(r3) = pearson(&x3, y) {
                prop_assert!((r + r3).abs() < 1e-6);
            }
        }
    }

    /// Spearman is invariant under strictly monotone transforms.
    #[test]
    fn spearman_monotone_invariance(x in finite_vec(3..100), y in finite_vec(3..100)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        if let Ok(rho) = spearman(x, y) {
            // v³ is strictly monotone and overflow-free on the input range.
            let x2: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
            if let Ok(rho2) = spearman(&x2, y) {
                prop_assert!((rho - rho2).abs() < 1e-9);
            }
        }
    }

    /// Rank sums are invariant: Σ ranks = n(n+1)/2.
    #[test]
    fn rank_sum_invariant(x in finite_vec(1..300)) {
        let ranks = average_ranks(&x);
        let n = x.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    /// Rankit scores are finite and order-isomorphic to the data.
    #[test]
    fn rankit_is_finite_and_monotone(x in finite_vec(1..200)) {
        let h = rankit_transform(&x);
        prop_assert!(h.iter().all(|v| v.is_finite()));
        for i in 0..x.len() {
            for j in 0..x.len() {
                if x[i] < x[j] {
                    prop_assert!(h[i] < h[j]);
                }
            }
        }
    }

    /// RIN correlation is bounded when defined.
    #[test]
    fn rin_bounded(x in finite_vec(3..100), y in finite_vec(3..100)) {
        let n = x.len().min(y.len());
        if let Ok(r) = rin_correlation(&x[..n], &y[..n]) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    /// Welford moments agree with naive two-pass computations.
    #[test]
    fn moments_match_naive(x in finite_vec(1..300)) {
        let m: Moments = x.iter().copied().collect();
        let n = x.len() as f64;
        let mean = x.iter().sum::<f64>() / n;
        let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((m.mean().unwrap() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((m.population_variance().unwrap() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(m.min().unwrap(), x.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(m.max().unwrap(), x.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Merging moment accumulators equals one-shot accumulation.
    #[test]
    fn moments_merge_associative(x in finite_vec(2..200), split in any::<prop::sample::Index>()) {
        let k = split.index(x.len() - 1) + 1;
        let whole: Moments = x.iter().copied().collect();
        let mut left: Moments = x[..k].iter().copied().collect();
        let right: Moments = x[k..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6 * (1.0 + whole.mean().unwrap().abs()));
    }

    /// The Hoeffding interval always contains the plain Pearson estimate
    /// computed on the same sample, for any alpha.
    #[test]
    fn hoeffding_contains_sample_estimate(
        x in finite_vec(3..150),
        y in finite_vec(3..150),
        alpha in 0.01f64..0.5,
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let bounds = ValueBounds::from_samples(x, y);
        if let (Ok(r), Ok(ci)) = (pearson(x, y), hoeffding_interval(x, y, bounds, alpha)) {
            prop_assert!(ci.contains(r), "r={r} not in {ci:?}");
            prop_assert!(ci.low >= -1.0 && ci.high <= 1.0);
        }
    }

    /// Hoeffding intervals shrink (weakly) as alpha grows.
    #[test]
    fn hoeffding_monotone_in_alpha(x in finite_vec(5..100), y in finite_vec(5..100)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let bounds = ValueBounds::from_samples(x, y);
        if let (Ok(strict), Ok(loose)) = (
            hoeffding_interval(x, y, bounds, 0.01),
            hoeffding_interval(x, y, bounds, 0.3),
        ) {
            prop_assert!(strict.length() >= loose.length() - 1e-12);
        }
    }

    /// HFD lengths are finite and non-negative.
    #[test]
    fn hfd_length_sane(x in finite_vec(3..100), y in finite_vec(3..100)) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let bounds = ValueBounds::from_samples(x, y);
        if let Ok(ci) = hfd_interval(x, y, bounds, 0.05) {
            prop_assert!(ci.length() >= 0.0);
            prop_assert!(ci.length().is_finite());
        }
    }
}
