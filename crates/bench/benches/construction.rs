//! Criterion micro-benchmark: sketch construction throughput — one data
//! pass with k-min maintenance — across row counts and sketch sizes.
//! Supports the space/accuracy axis of paper Figure 4 and the indexing
//! cost of Section 5.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use correlation_sketches::{SketchBuilder, SketchConfig};
use sketch_table::ColumnPair;

fn make_pair(rows: usize) -> ColumnPair {
    ColumnPair::new(
        "bench",
        "k",
        "v",
        (0..rows).map(|i| format!("key-{i}")).collect(),
        (0..rows).map(|i| (i as f64 * 0.7).sin() * 100.0).collect(),
    )
}

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_construction");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for rows in [10_000usize, 100_000] {
        let pair = make_pair(rows);
        group.throughput(Throughput::Elements(rows as u64));
        for size in [256usize, 1024] {
            let builder = SketchBuilder::new(SketchConfig::with_size(size));
            group.bench_with_input(
                BenchmarkId::new(format!("rows_{rows}"), size),
                &size,
                |b, _| b.iter(|| black_box(builder.build(black_box(&pair)))),
            );
        }
    }
    group.finish();
}

fn bench_threshold_construction(c: &mut Criterion) {
    let pair = make_pair(50_000);
    let mut group = c.benchmark_group("sketch_construction_strategies");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(50_000));
    let fixed = SketchBuilder::new(SketchConfig::with_size(512));
    group.bench_function("fixed_512", |b| {
        b.iter(|| black_box(fixed.build(black_box(&pair))))
    });
    let thr = SketchBuilder::new(SketchConfig::with_threshold(512.0 / 50_000.0));
    group.bench_function("threshold_matched", |b| {
        b.iter(|| black_box(thr.build(black_box(&pair))))
    });
    group.finish();
}

criterion_group!(benches, bench_construction, bench_threshold_construction);
criterion_main!(benches);
