//! Criterion micro-benchmark: per-estimator cost on join samples of the
//! sizes produced by realistic sketches (the cost axis of Figure 4's
//! estimator comparison, and the rationale for the paper's adaptive PM1
//! stopping rule).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sketch_stats::CorrelationEstimator;

fn sample(n: usize) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() * 5.0).collect();
    let y: Vec<f64> = x
        .iter()
        .enumerate()
        .map(|(i, v)| v * 0.8 + ((i as f64) * 0.7).cos())
        .collect();
    (x, y)
}

fn bench_estimators(c: &mut Criterion) {
    let mut group = c.benchmark_group("correlation_estimators");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [64usize, 256, 1024] {
        let (x, y) = sample(n);
        for est in CorrelationEstimator::ALL {
            if matches!(
                est,
                CorrelationEstimator::Pm1Bootstrap { .. } | CorrelationEstimator::Qn
            ) && n > 256
            {
                // Quadratic/resampling estimators get slow; keep the suite
                // fast while still covering the sketch-realistic sizes.
                continue;
            }
            group.bench_with_input(BenchmarkId::new(est.name(), n), &n, |b, _| {
                b.iter(|| black_box(est.estimate(black_box(&x), black_box(&y)).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_hashing(c: &mut Criterion) {
    use sketch_hashing::{murmur3_x64_128, murmur3_x86_32, unit_hash_u64};
    let keys: Vec<String> = (0..1000).map(|i| format!("key-{i}")).collect();
    let mut group = c.benchmark_group("hashing");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("murmur3_x86_32_1k_keys", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for k in &keys {
                acc ^= murmur3_x86_32(black_box(k.as_bytes()), 0);
            }
            black_box(acc)
        })
    });
    group.bench_function("murmur3_x64_128_1k_keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= murmur3_x64_128(black_box(k.as_bytes()), 0).0;
            }
            black_box(acc)
        })
    });
    group.bench_function("fibonacci_unit_hash_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for i in 0..1000u64 {
                acc += unit_hash_u64(black_box(i));
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_hashing);
criterion_main!(benches);
