//! Criterion micro-benchmark behind **Table 2**: sketch join + correlation
//! estimation vs. full-data join + correlation, at several table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_stats::{pearson, spearman, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation, ColumnPair};

fn make_pair(table: &str, rows: usize, offset: usize) -> ColumnPair {
    ColumnPair::new(
        table,
        "k",
        "v",
        (offset..offset + rows)
            .map(|i| format!("key-{i}"))
            .collect(),
        (0..rows)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + i as f64 * 0.01)
            .collect(),
    )
}

fn bench_full_vs_sketch(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_join_correlation");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for rows in [10_000usize, 100_000] {
        let a = make_pair("a", rows, 0);
        let b = make_pair("b", rows, rows / 4); // 75% overlap

        group.bench_with_input(BenchmarkId::new("full_join", rows), &rows, |bch, _| {
            bch.iter(|| black_box(exact_join(black_box(&a), black_box(&b), Aggregation::Mean)))
        });
        let joined = exact_join(&a, &b, Aggregation::Mean);
        group.bench_with_input(BenchmarkId::new("full_pearson", rows), &rows, |bch, _| {
            bch.iter(|| black_box(pearson(&joined.x, &joined.y).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_spearman", rows), &rows, |bch, _| {
            bch.iter(|| black_box(spearman(&joined.x, &joined.y).unwrap()))
        });

        let builder = SketchBuilder::new(SketchConfig::with_size(1024));
        let (sa, sb) = (builder.build(&a), builder.build(&b));
        group.bench_with_input(BenchmarkId::new("sketch_join", rows), &rows, |bch, _| {
            bch.iter(|| black_box(join_sketches(black_box(&sa), black_box(&sb)).unwrap()))
        });
        let sample = join_sketches(&sa, &sb).unwrap();
        group.bench_with_input(BenchmarkId::new("sketch_pearson", rows), &rows, |bch, _| {
            bch.iter(|| black_box(sample.estimate(CorrelationEstimator::Pearson).unwrap()))
        });
        group.bench_with_input(
            BenchmarkId::new("sketch_spearman", rows),
            &rows,
            |bch, _| {
                bch.iter(|| black_box(sample.estimate(CorrelationEstimator::Spearman).unwrap()))
            },
        );
    }
    group.finish();
}

fn bench_ci_cost(c: &mut Criterion) {
    // The cost argument of Section 4.2: Hoeffding CI is constant-time,
    // bootstrap is hundreds of resamples.
    let a = make_pair("a", 20_000, 0);
    let b = make_pair("b", 20_000, 0);
    let builder = SketchBuilder::new(SketchConfig::with_size(1024));
    let sample = join_sketches(&builder.build(&a), &builder.build(&b)).unwrap();

    let mut group = c.benchmark_group("ci_methods");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("hoeffding", |bch| {
        bch.iter(|| black_box(sample.hoeffding_ci(0.05).unwrap()))
    });
    group.bench_function("hfd", |bch| {
        bch.iter(|| black_box(sample.hfd_ci(0.05).unwrap()))
    });
    group.bench_function("fisher_z", |bch| {
        bch.iter(|| black_box(sketch_stats::fisher_z_interval(0.5, sample.len(), 0.05)))
    });
    group.sample_size(10);
    group.bench_function("pm1_bootstrap", |bch| {
        bch.iter(|| black_box(sample.pm1_ci(7).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_full_vs_sketch, bench_ci_cost);
criterion_main!(benches);
