//! Criterion micro-benchmark behind the **Section 5.5** query-latency
//! study: end-to-end top-k join-correlation queries against the inverted
//! index at increasing corpus sizes, plus the `top_k_with_reports` path
//! (the PR-over-PR perf tripwire) at 1/2/4 worker threads over a
//! ~5k-sketch corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};

fn build_index(
    tables: usize,
    sketch_size: usize,
    seed: u64,
) -> (SketchIndex, Vec<CorrelationSketch>) {
    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        min_rows: 50,
        max_rows: 1_000,
        ..OpenDataConfig::nyc(seed)
    });
    let split = split_corpus(&corpus_tables, 0.2, seed);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));
    let sketches =
        correlation_sketches::build_sketches_parallel(&split.corpus, *builder.config(), 8);
    let mut idx = SketchIndex::new();
    for s in sketches {
        idx.insert(s).expect("uniform hasher");
    }
    let queries = split
        .queries
        .iter()
        .take(16)
        .map(|p| builder.build(p))
        .collect();
    (idx, queries)
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for tables in [50usize, 200] {
        let (idx, queries) = build_index(tables, 1024, 0xbe_ec);
        let opts = QueryOptions::default();
        group.bench_with_input(
            BenchmarkId::new("top10_of_top100", tables),
            &tables,
            |b, _| {
                let mut qi = 0usize;
                b.iter(|| {
                    let q = &queries[qi % queries.len()];
                    qi += 1;
                    black_box(engine::top_k_join_correlation(&idx, q, &opts))
                })
            },
        );
    }
    group.finish();
}

/// `top_k_with_reports` over a ~5k-sketch corpus — the acceptance-criteria
/// benchmark: single-thread speed versus the seed implementation, plus
/// scaling from the `threads` knob.
fn bench_reports_5k(c: &mut Criterion) {
    // ~2900 NYC-style tables yield ≈5k corpus column pairs after the
    // 20% query split; sketch size 256 keeps setup tractable while the
    // per-query work stays join-dominated.
    let (idx, queries) = build_index(2_900, 256, 0x0005_eed5);
    eprintln!("reports_5k corpus: {} sketches", idx.len());
    let mut group = c.benchmark_group("top_k_with_reports_5k");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let opts = QueryOptions {
            overlap_candidates: 100,
            k: 10,
            threads,
            ..QueryOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            let mut qi = 0usize;
            b.iter(|| {
                let q = &queries[qi % queries.len()];
                qi += 1;
                black_box(engine::top_k_with_reports(&idx, q, &opts, 0.05))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query, bench_reports_5k, bench_retrieval_only);

fn bench_retrieval_only(c: &mut Criterion) {
    let (idx, queries) = build_index(200, 1024, 0xbe_ed);
    let mut group = c.benchmark_group("overlap_retrieval");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("top100", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(idx.overlap_candidates(q, 100))
        })
    });
    group.finish();
}

criterion_main!(benches);
