//! Criterion micro-benchmark behind the **Section 5.5** query-latency
//! study: end-to-end top-k join-correlation queries against the inverted
//! index at increasing corpus sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};

fn build_index(tables: usize, seed: u64) -> (SketchIndex, Vec<CorrelationSketch>) {
    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        min_rows: 50,
        max_rows: 1_000,
        ..OpenDataConfig::nyc(seed)
    });
    let split = split_corpus(&corpus_tables, 0.2, seed);
    let builder = SketchBuilder::new(SketchConfig::with_size(1024));
    let mut idx = SketchIndex::new();
    for p in &split.corpus {
        idx.insert(builder.build(p)).expect("uniform hasher");
    }
    let queries = split
        .queries
        .iter()
        .take(16)
        .map(|p| builder.build(p))
        .collect();
    (idx, queries)
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_latency");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(20);
    for tables in [50usize, 200] {
        let (idx, queries) = build_index(tables, 0xbe_ec);
        let opts = QueryOptions::default();
        group.bench_with_input(
            BenchmarkId::new("top10_of_top100", tables),
            &tables,
            |b, _| {
                let mut qi = 0usize;
                b.iter(|| {
                    let q = &queries[qi % queries.len()];
                    qi += 1;
                    black_box(engine::top_k_join_correlation(&idx, q, &opts))
                })
            },
        );
    }
    group.finish();
}

fn bench_retrieval_only(c: &mut Criterion) {
    let (idx, queries) = build_index(200, 0xbe_ed);
    let mut group = c.benchmark_group("overlap_retrieval");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("top100", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            let q = &queries[qi % queries.len()];
            qi += 1;
            black_box(idx.overlap_candidates(q, 100))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query, bench_retrieval_only);
criterion_main!(benches);
