//! Corpus selection shared by the experiment binaries.

use sketch_datagen::{generate_open_data, generate_sbn, OpenDataConfig, SbnConfig};
use sketch_table::{ColumnPair, Table};

/// Which of the paper's three data collections to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusChoice {
    /// Synthetic Bivariate Normal (paper Section 5.1).
    Sbn,
    /// World-Bank-Finances-like simulation.
    Wbf,
    /// NYC-Open-Data-like simulation.
    Nyc,
}

impl std::str::FromStr for CorpusChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "sbn" => Ok(Self::Sbn),
            "wbf" => Ok(Self::Wbf),
            "nyc" => Ok(Self::Nyc),
            other => Err(format!("unknown dataset '{other}' (expected sbn|wbf|nyc)")),
        }
    }
}

impl std::fmt::Display for CorpusChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Sbn => "sbn",
            Self::Wbf => "wbf",
            Self::Nyc => "nyc",
        })
    }
}

/// Materialize a corpus as pre-paired `(left, right)` column pairs to
/// evaluate, capped at `max_pairs` pairs of column pairs.
///
/// * For SBN the pairing is intrinsic (each generated pair has a ground
///   truth `rho`).
/// * For WBF/NYC we enumerate cross-table 2-combinations of column pairs
///   (the paper's "all possible unique 2-combinations"), in a
///   deterministic order.
#[must_use]
pub fn corpus_pairs(
    choice: CorpusChoice,
    scale: usize,
    seed: u64,
    max_pairs: usize,
) -> Vec<(ColumnPair, ColumnPair)> {
    match choice {
        CorpusChoice::Sbn => {
            let cfg = SbnConfig {
                pairs: scale,
                min_rows: 20,
                max_rows: 50_000,
                seed,
            };
            generate_sbn(&cfg)
                .into_iter()
                .take(max_pairs)
                .map(|p| (p.tx, p.ty))
                .collect()
        }
        CorpusChoice::Wbf | CorpusChoice::Nyc => {
            let cfg = match choice {
                CorpusChoice::Wbf => OpenDataConfig {
                    tables: scale.max(2),
                    ..OpenDataConfig::wbf(seed)
                },
                _ => OpenDataConfig {
                    tables: scale.max(2),
                    ..OpenDataConfig::nyc(seed)
                },
            };
            let tables = generate_open_data(&cfg);
            cross_table_pairs(&tables, max_pairs)
        }
    }
}

/// Deterministic enumeration of cross-table column-pair 2-combinations.
///
/// When the full combination count exceeds `max_pairs`, combinations are
/// sampled with a deterministic LCG so the subset covers the whole corpus
/// (a head-truncated enumeration would only ever exercise the first few
/// tables).
#[must_use]
pub fn cross_table_pairs(tables: &[Table], max_pairs: usize) -> Vec<(ColumnPair, ColumnPair)> {
    let pairs: Vec<ColumnPair> = tables.iter().flat_map(Table::column_pairs).collect();
    let p = pairs.len();
    if p < 2 || max_pairs == 0 {
        return Vec::new();
    }
    let total = p * (p - 1) / 2;
    let mut out = Vec::new();
    if total <= max_pairs {
        for i in 0..p {
            for j in (i + 1)..p {
                if pairs[i].table != pairs[j].table {
                    out.push((pairs[i].clone(), pairs[j].clone()));
                }
            }
        }
        return out;
    }

    // Deterministic LCG sampling without replacement over index pairs.
    let mut seen = std::collections::HashSet::with_capacity(max_pairs * 2);
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut attempts = 0usize;
    let max_attempts = max_pairs.saturating_mul(20);
    while out.len() < max_pairs && attempts < max_attempts {
        attempts += 1;
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let i = (state >> 33) as usize % p;
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (state >> 33) as usize % p;
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        if i == j || pairs[i].table == pairs[j].table || !seen.insert((i, j)) {
            continue;
        }
        out.push((pairs[i].clone(), pairs[j].clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_parses() {
        assert_eq!("nyc".parse::<CorpusChoice>().unwrap(), CorpusChoice::Nyc);
        assert_eq!("SBN".parse::<CorpusChoice>().unwrap(), CorpusChoice::Sbn);
        assert!("other".parse::<CorpusChoice>().is_err());
    }

    #[test]
    fn sbn_pairs_have_shared_key_space() {
        let pairs = corpus_pairs(CorpusChoice::Sbn, 3, 1, 10);
        assert_eq!(pairs.len(), 3);
        for (a, b) in &pairs {
            assert!(sketch_table::key_overlap(a, b) > 0);
        }
    }

    #[test]
    fn nyc_pairs_are_cross_table() {
        let pairs = corpus_pairs(CorpusChoice::Nyc, 10, 1, 50);
        assert!(!pairs.is_empty());
        for (a, b) in &pairs {
            assert_ne!(a.table, b.table);
        }
    }

    #[test]
    fn max_pairs_caps_output() {
        let pairs = corpus_pairs(CorpusChoice::Nyc, 10, 1, 7);
        assert_eq!(pairs.len(), 7);
    }
}
