//! Minimal `--key value` CLI parsing for the experiment binaries (keeps
//! the dependency set to the approved list — no clap).

use std::collections::HashMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse the process arguments. `--flag value` pairs only; a trailing
    /// flag without a value is treated as `"true"`.
    ///
    /// # Panics
    ///
    /// Panics on arguments that do not start with `--` (fail fast with a
    /// readable message rather than silently ignoring typos).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// See [`Args::from_env`].
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument '{arg}' (expected --key value)"))
                .to_string();
            let value = match iter.peek() {
                Some(v) if !v.starts_with("--") => iter.next().expect("peeked"),
                _ => "true".to_string(),
            };
            values.insert(key, value);
        }
        Self { values }
    }

    /// String value of a flag.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parse a flag as `T`, falling back to `default`.
    ///
    /// # Panics
    ///
    /// Panics when the flag is present but unparsable.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v.parse().unwrap_or_else(|e| panic!("--{key} {v}: {e:?}")),
            None => default,
        }
    }

    /// Is a boolean flag set?
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.get(key) == Some("true")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse_args(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = parse("--tables 300 --seed 7 --verbose");
        assert_eq!(a.get_or("tables", 0usize), 300);
        assert_eq!(a.get_or("seed", 0u64), 7);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get_or("missing", 42i32), 42);
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn rejects_positional_arguments() {
        let _ = parse("positional");
    }

    #[test]
    #[should_panic(expected = "--tables")]
    fn rejects_unparsable_values() {
        let a = parse("--tables lots");
        let _ = a.get_or("tables", 0usize);
    }
}
