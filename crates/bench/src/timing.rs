//! Wall-clock measurement and percentile summaries (Table 2 and the
//! Section 5.5 query-latency study report percentiles, not means).

use std::time::Instant;

/// Run `f` once and return `(result, elapsed milliseconds)`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// The `p`-th percentile of `values` by linear interpolation. `p` is
/// clamped into `[0, 100]` (a request for p150 reports the maximum — the
/// clamp — instead of indexing past the sorted data), and NaN `p` is
/// treated as 0. Returns 0.0 for an empty slice; with 1–2 samples the
/// interpolation degrades gracefully (single sample: that sample for
/// every `p`; two samples: linear between them).
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (p / 100.0) * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Percentile summary in the shape of the paper's Table 2 rows, plus
/// the p50/p95/p99 trio every serving benchmark reports (so
/// `query_latency` and `serve_load` JSON are directly comparable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

impl LatencySummary {
    /// Summarize a set of measurements (milliseconds).
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        let m: sketch_stats::Moments = values.iter().copied().collect();
        Self {
            mean: m.mean().unwrap_or(0.0),
            std_dev: m.sample_std().unwrap_or(0.0),
            p50: percentile(values, 50.0),
            p75: percentile(values, 75.0),
            p90: percentile(values, 90.0),
            p95: percentile(values, 95.0),
            p99: percentile(values, 99.0),
            p999: percentile(values, 99.9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&v, 75.0) - 75.25).abs() < 1e-9);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn one_and_two_sample_edge_cases() {
        // One sample: every percentile is that sample — including the
        // extreme tails the latency summaries request.
        for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0, "p={p}");
        }
        // Two samples: linear interpolation between them, never beyond.
        assert_eq!(percentile(&[10.0, 20.0], 0.0), 10.0);
        assert_eq!(percentile(&[10.0, 20.0], 50.0), 15.0);
        assert_eq!(percentile(&[10.0, 20.0], 100.0), 20.0);
        let p999 = percentile(&[10.0, 20.0], 99.9);
        assert!((19.0..=20.0).contains(&p999), "{p999}");
        // And the full summary is finite + ordered on tiny inputs.
        for v in [&[7.0][..], &[7.0, 9.0][..]] {
            let s = LatencySummary::of(v);
            assert!(s.mean.is_finite() && s.std_dev.is_finite());
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.p999);
            assert!(s.p999 <= 9.0);
        }
    }

    #[test]
    fn out_of_range_percentiles_clamp() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 150.0), 3.0, "beyond 100 clamps to max");
        assert_eq!(percentile(&v, -20.0), 1.0, "below 0 clamps to min");
        assert_eq!(percentile(&v, f64::NAN), 1.0, "NaN treated as p0");
    }

    #[test]
    fn percentiles_are_monotone() {
        let v: Vec<f64> = (0..57).map(|i| ((i * 37) % 100) as f64).collect();
        let mut prev = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            let x = percentile(&v, p);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    fn summary_shape() {
        let v: Vec<f64> = (1..=1000).map(f64::from).collect();
        let s = LatencySummary::of(&v);
        assert!((s.mean - 500.5).abs() < 1e-9);
        assert!((s.p50 - 500.5).abs() < 1e-6);
        assert!(s.p50 < s.p75 && s.p75 < s.p90 && s.p90 < s.p95);
        assert!(s.p95 < s.p99 && s.p99 < s.p999);
    }

    #[test]
    fn time_ms_measures_something() {
        let (out, ms) = time_ms(|| (0..100_000).sum::<u64>());
        assert_eq!(out, 4_999_950_000);
        assert!(ms >= 0.0);
    }
}
