//! Machine-readable bench artifacts: `BENCH_<name>.json` files that
//! capture one run's workload parameters and headline numbers, so the
//! perf trajectory can be tracked mechanically across PRs (diff the
//! artifact, not a scraped stdout line).
//!
//! Every experiment binary that reports latency or throughput accepts
//! `--out <path>`: the same JSON object it prints under `--json true` is
//! also written to `<path>`. `--out auto` expands to `BENCH_<bench>.json`
//! in the current directory — the canonical artifact name CI and scripts
//! look for.

use std::io::Write;
use std::path::PathBuf;

/// Resolve an `--out` spec: `"auto"` (or the bare-flag value `"true"`)
/// expands to `BENCH_<bench>.json` in the current directory; anything
/// else is taken as a literal path.
#[must_use]
pub fn artifact_path(spec: &str, bench: &str) -> PathBuf {
    if spec == "auto" || spec == "true" {
        PathBuf::from(format!("BENCH_{bench}.json"))
    } else {
        PathBuf::from(spec)
    }
}

/// Write one bench-JSON object to the artifact path named by `spec`
/// (see [`artifact_path`]), creating parent directories as needed and
/// ensuring a trailing newline. Returns the path written.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the write.
pub fn write_artifact(spec: &str, bench: &str, json: &str) -> std::io::Result<PathBuf> {
    let path = artifact_path(spec, bench);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(&path)?;
    file.write_all(json.as_bytes())?;
    if !json.ends_with('\n') {
        file.write_all(b"\n")?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_spec_uses_canonical_name() {
        assert_eq!(
            artifact_path("auto", "serve"),
            PathBuf::from("BENCH_serve.json")
        );
        assert_eq!(
            artifact_path("true", "rank_eval"),
            PathBuf::from("BENCH_rank_eval.json")
        );
        assert_eq!(
            artifact_path("/tmp/x.json", "serve"),
            PathBuf::from("/tmp/x.json")
        );
    }

    #[test]
    fn writes_object_with_trailing_newline_and_parents() {
        let dir = std::env::temp_dir().join(format!("bench-artifact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = dir.join("nested/out.json");
        let written =
            write_artifact(spec.to_str().unwrap(), "demo", "{\"bench\":\"demo\"}").unwrap();
        assert_eq!(written, spec);
        let body = std::fs::read_to_string(&written).unwrap();
        assert_eq!(body, "{\"bench\":\"demo\"}\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
