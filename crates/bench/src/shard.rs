//! Scatter-gather plumbing for the serving benchmarks: partition a
//! packed store, boot one worker server per partition plus a
//! coordinator over them (all in-process), and rebuild the
//! coordinator's expected response bytes from the public API so load
//! runs can verify answers before timing them.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use correlation_sketches::JoinSample;
use sketch_index::{engine, merge_shard_candidates, ReportedResult, ShardCandidate, ShardRows};
use sketch_server::{
    api, CoordinatorConfig, CoordinatorHandle, IndexSnapshot, QueryParams, ServerConfig,
    ServerHandle,
};

/// A booted scatter-gather cluster over one partitioned corpus.
pub struct ShardCluster {
    /// Worker servers, in partition order.
    pub workers: Vec<ServerHandle>,
    /// Worker store directories, in partition order.
    pub worker_dirs: Vec<PathBuf>,
    /// The partition manifest `shard_corpus` wrote.
    pub manifest: sketch_store::PartitionManifest,
    coordinator: Option<CoordinatorHandle>,
    coordinator_config: CoordinatorConfig,
}

impl ShardCluster {
    /// Partition `store` into (at most) `shards` worker stores under
    /// `out` and boot the full cluster. Worker servers get
    /// `server_threads + 2` connection threads: each coordinator
    /// front-end thread plus the health poller can hold a keep-alive
    /// connection, and one pinned connection must never read as a dead
    /// shard.
    ///
    /// # Panics
    ///
    /// On any partitioning or boot failure — benches fail loudly.
    #[must_use]
    pub fn boot(
        store: &Path,
        out: &Path,
        shards: usize,
        server_threads: usize,
        cache: usize,
    ) -> Self {
        let manifest =
            sketch_store::shard_corpus(store, out, shards, server_threads).expect("shard corpus");
        let mut workers = Vec::new();
        let mut worker_dirs = Vec::new();
        let mut addrs = Vec::new();
        for shard in &manifest.shards {
            let dir = out.join(&shard.dir);
            let mut config = ServerConfig::new(&dir);
            config.threads = server_threads + 2;
            config.load_threads = server_threads;
            let handle = sketch_server::start(config).expect("worker starts");
            addrs.push(handle.addr().to_string());
            workers.push(handle);
            worker_dirs.push(dir);
        }
        let mut coordinator_config = CoordinatorConfig::new(addrs);
        coordinator_config.threads = server_threads;
        coordinator_config.cache_capacity = cache;
        let coordinator = sketch_server::start_coordinator(coordinator_config.clone())
            .expect("coordinator starts");
        Self {
            workers,
            worker_dirs,
            manifest,
            coordinator: Some(coordinator),
            coordinator_config,
        }
    }

    /// The coordinator's public address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.coordinator
            .as_ref()
            .expect("coordinator is running")
            .addr()
    }

    /// Replace the coordinator with a fresh one (empty response cache)
    /// over the same workers — for cold-path timing after a
    /// verification pass warmed the cache.
    pub fn restart_coordinator(&mut self) {
        if let Some(c) = self.coordinator.take() {
            let _ = c.shutdown();
        }
        self.coordinator = Some(
            sketch_server::start_coordinator(self.coordinator_config.clone())
                .expect("coordinator restarts"),
        );
    }

    /// Graceful full-cluster stop.
    pub fn shutdown(mut self) {
        if let Some(c) = self.coordinator.take() {
            let _ = c.shutdown();
        }
        for w in self.workers {
            let _ = w.shutdown();
        }
    }
}

/// Per-worker snapshots for replaying the coordinator's merge from the
/// public API (loaded once, reused across queries).
pub struct ShardReplay {
    snaps: Vec<IndexSnapshot>,
}

impl ShardReplay {
    /// Load every worker store.
    ///
    /// # Panics
    ///
    /// When a worker store cannot be loaded.
    #[must_use]
    pub fn load(worker_dirs: &[PathBuf], threads: usize) -> Self {
        let snaps = worker_dirs
            .iter()
            .map(|d| IndexSnapshot::from_store(d, threads).expect("load worker store"))
            .collect();
        Self { snaps }
    }

    /// The exact bytes the coordinator must serve for `body` when every
    /// shard is healthy: per-shard candidate rows, the lossless bound
    /// merge, then reports for the surviving winners only — the same
    /// two phases the coordinator runs, rebuilt from the public API.
    ///
    /// # Panics
    ///
    /// When `body` is not a valid query.
    #[must_use]
    pub fn expected_response(&self, body: &str, defaults: &QueryParams) -> String {
        let req = api::QueryRequest::parse(body.as_bytes(), defaults).expect("valid query body");
        let opts = req.params.to_options();
        let sketches: Vec<_> = self
            .snaps
            .iter()
            .map(|snap| {
                snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone())
            })
            .collect();
        let rows: Vec<Vec<ShardCandidate>> = self
            .snaps
            .iter()
            .zip(&sketches)
            .map(|(snap, sketch)| engine::shard_candidates(snap.index(), sketch, &opts))
            .collect();
        let shard_rows: Vec<ShardRows<'_>> = rows
            .iter()
            .zip(&self.snaps)
            .map(|(r, snap)| ShardRows {
                rows: r,
                sketches: snap.index().len(),
            })
            .collect();
        let outcome = merge_shard_candidates(&shard_rows, &opts);
        let mut sample = JoinSample::default();
        let results: Vec<ReportedResult> = outcome
            .winners
            .into_iter()
            .map(|w| {
                let report = engine::report_for_doc(
                    self.snaps[w.shard].index(),
                    &sketches[w.shard],
                    w.local_doc,
                    &opts,
                    req.params.alpha,
                    &mut sample,
                );
                ReportedResult {
                    result: w.result,
                    report,
                }
            })
            .collect();
        let states: Vec<api::ShardState> = self
            .snaps
            .iter()
            .map(|snap| api::ShardState {
                generation: snap.generation(),
                degraded: false,
            })
            .collect();
        api::render_coordinator_response(
            &states,
            &req.params,
            outcome.merged,
            outcome.shipped,
            &results,
        )
    }

    /// How many full results a naive gather would ship for `body`: each
    /// shard returns its complete local top-k with reports, merged
    /// client-side. This is the transfer baseline `shard_eval` compares
    /// the bound-based early termination against.
    ///
    /// # Panics
    ///
    /// When `body` is not a valid query.
    #[must_use]
    pub fn naive_shipped(&self, body: &str, defaults: &QueryParams) -> usize {
        let req = api::QueryRequest::parse(body.as_bytes(), defaults).expect("valid query body");
        let opts = req.params.to_options();
        self.snaps
            .iter()
            .map(|snap| {
                let sketch =
                    snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
                engine::top_k_with_reports(snap.index(), &sketch, &opts, req.params.alpha).len()
            })
            .sum()
    }
}
