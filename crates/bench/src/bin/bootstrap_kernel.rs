//! **bootstrap_kernel** — microbench of the bootstrap resample inner
//! loop: the retired gather-then-two-pass-Pearson shape (kept in-tree as
//! [`sketch_stats::kernel::resample_pearson_twopass`], the numerical
//! baseline) against the fused index-gather + five-sum kernel
//! ([`gather_sums`] + [`pearson_from_gather`]) that the PM1 bootstrap
//! and its CIs now run on.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin bootstrap_kernel -- \
//!     [--ms 300] [--blocks 64] [--assert 2.0] [--json true] [--out auto]
//! ```
//!
//! For each resample length `n ∈ {32, 256, 4096}` (the span from tiny
//! join samples to full-size sketches) the harness pre-draws `--blocks`
//! deterministic index blocks, then times each variant for at least
//! `--ms` milliseconds of steady-state work, cycling through the blocks
//! so neither variant can specialize to one index pattern. Index
//! generation is excluded from both timings — the two paths draw the
//! identical RNG stream in production, so it cancels out of the ratio.
//! The fused path's one-off column centering is likewise setup, not
//! per-resample work: a PM1 run amortizes it over hundreds of resamples.
//!
//! Reported per `n`: resamples/sec for both shapes and the fused/legacy
//! ratio; the headline number is the geometric mean of the per-size
//! ratios (at n = 32 a resample is ~60 ns, so its ratio wobbles ±25%
//! run to run — the geomean is the stable summary). `--assert [min]`
//! exits non-zero unless the geomean clears `min` (default 2.0, the PR
//! gate); `--out` writes the bench-JSON artifact (`auto` →
//! `BENCH_bootstrap_kernel.json`).

use std::time::Instant;

use sketch_bench::{artifact, Args};
use sketch_stats::kernel;

/// SplitMix64 step — the bench's only RNG need is deterministic index
/// blocks and column noise, so the 5-line generator beats a dependency.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from the top 53 bits.
fn unit_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Correlated column pair of length `n` (slope 2 plus noise), like the
/// conditioned fixtures of the `prop_kernel` battery.
fn columns(n: usize, state: &mut u64) -> (Vec<f64>, Vec<f64>) {
    let x: Vec<f64> = (0..n)
        .map(|i| i as f64 + (unit_f64(state) - 0.5) * 0.8)
        .collect();
    let y: Vec<f64> = x
        .iter()
        .map(|&v| 2.0 * v + (unit_f64(state) - 0.5) * 6.0)
        .collect();
    (x, y)
}

/// Run `resample` once per pre-drawn index block, cycling, until at
/// least `min_ms` of wall time has elapsed (after one untimed warm-up
/// lap). Returns (resamples/sec, checksum) — the checksum is consumed by
/// the caller so the optimizer cannot discard the work.
fn throughput(
    blocks: &[Vec<u32>],
    min_ms: f64,
    mut resample: impl FnMut(&[u32]) -> f64,
) -> (f64, f64) {
    let mut sink = 0.0;
    for idx in blocks {
        sink += resample(idx);
    }
    let mut total = 0u64;
    let start = Instant::now();
    loop {
        for idx in blocks {
            sink += resample(idx);
        }
        total += blocks.len() as u64;
        if start.elapsed().as_secs_f64() * 1e3 >= min_ms {
            break;
        }
    }
    (total as f64 / start.elapsed().as_secs_f64(), sink)
}

fn main() {
    let args = Args::from_env();
    let min_ms = args.get_or("ms", 300.0f64);
    let n_blocks = args.get_or("blocks", 64usize).max(1);
    let seed = args.get_or("seed", 0x00c1_5eedu64);
    let json = args.get_or("json", false);
    // Bare `--assert` gates at the PR threshold; `--assert <r>` overrides.
    let min_ratio: Option<f64> = args.get("assert").map(|v| {
        if v == "true" {
            2.0
        } else {
            v.parse().unwrap_or_else(|e| panic!("--assert {v}: {e:?}"))
        }
    });

    let sizes = [32usize, 256, 4096];
    let mut rows = Vec::new();
    let mut checksum = 0.0f64;

    if !json {
        println!("bootstrap resample kernel — fused gather+sums vs two-pass baseline");
        println!(
            "{:>6}  {:>14}  {:>14}  {:>7}",
            "n", "legacy rs/s", "fused rs/s", "ratio"
        );
    }

    for n in sizes {
        let mut state = seed ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let (x, y) = columns(n, &mut state);
        // One-off setup of each shape: the legacy path owns its gather
        // buffers, the fused path its centered column copies.
        let mut bx = vec![0.0f64; n];
        let mut by = vec![0.0f64; n];
        let (mean_x, mean_y) = kernel::column_means(&x, &y);
        let cx: Vec<f64> = x.iter().map(|v| v - mean_x).collect();
        let cy: Vec<f64> = y.iter().map(|v| v - mean_y).collect();
        let blocks: Vec<Vec<u32>> = (0..n_blocks)
            .map(|_| {
                (0..n)
                    .map(|_| (splitmix64(&mut state) % n as u64) as u32)
                    .collect()
            })
            .collect();

        let (legacy_rps, s1) = throughput(&blocks, min_ms, |idx| {
            kernel::resample_pearson_twopass(&x, &y, idx, &mut bx, &mut by).unwrap_or(0.0)
        });
        let (fused_rps, s2) = throughput(&blocks, min_ms, |idx| {
            kernel::pearson_from_gather(n, &kernel::gather_sums(&cx, &cy, idx)).unwrap_or(0.0)
        });
        checksum += s1 - s2;
        let ratio = fused_rps / legacy_rps;
        if !json {
            println!("{n:>6}  {legacy_rps:>14.0}  {fused_rps:>14.0}  {ratio:>6.2}x");
        }
        rows.push((n, legacy_rps, fused_rps, ratio));
    }
    // The two variants replay identical resamples, so their checksums
    // cancel; printing the residual keeps the work observable.
    eprintln!("bootstrap_kernel: checksum residual {checksum:.3e}");

    let fields: Vec<String> = rows
        .iter()
        .map(|(n, l, f, r)| {
            format!(
                "{{\"n\":{n},\"legacy_resamples_per_sec\":{l:.0},\
                 \"fused_resamples_per_sec\":{f:.0},\"ratio\":{r:.3}}}"
            )
        })
        .collect();
    let geomean = (rows.iter().map(|&(_, _, _, r)| r.ln()).sum::<f64>() / rows.len() as f64).exp();
    if !json {
        println!("geomean ratio: {geomean:.2}x");
    }
    let obj = format!(
        "{{\"bench\":\"bootstrap_kernel\",\"ms_per_variant\":{min_ms},\
         \"index_blocks\":{n_blocks},\"seed\":{seed},\
         \"geomean_ratio\":{geomean:.3},\"sizes\":[{}]}}",
        fields.join(",")
    );
    if json {
        println!("{obj}");
    }
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "bootstrap_kernel", &obj).expect("write artifact");
        eprintln!("bootstrap_kernel: wrote {}", path.display());
    }

    if let Some(gate) = min_ratio {
        if geomean < gate {
            eprintln!(
                "bootstrap_kernel: FAIL — geomean fused/legacy ratio {geomean:.2}x \
                 below the {gate:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("bootstrap_kernel: OK — geomean speedup {geomean:.2}x >= {gate:.2}x gate");
    }
}
