//! **Figure 5** — distribution of per-query metric scores for the `jc`
//! baseline vs. the Hoeffding-based scorer `rp*cih`.
//!
//! The paper plots, for each metric (MAP .75 / MAP .50 / nDCG@5 /
//! nDCG@10), a histogram of the per-query scores under each scoring
//! function; the `rp*cih` rows shift mass from the left (bad) to the
//! right (good) bins.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin fig5_histograms -- \
//!     --tables 200 --queries 60
//! ```

use sketch_bench::Args;
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_ranking::evaluation::QueryMetrics;
use sketch_ranking::{run_ranking_experiment, RankingConfig, ScoringFunction};
use sketch_stats::metrics::histogram;

const BINS: usize = 10;

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 200usize);
    let queries = args.get_or("queries", 60usize);
    let seed = args.get_or("seed", 0x515u64);

    eprintln!("fig5: tables={tables} queries={queries} seed={seed}");

    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.25, seed);
    split.queries.truncate(queries);

    let cfg = RankingConfig {
        seed,
        ..RankingConfig::default()
    };
    let report = run_ranking_experiment(&split.queries, &split.corpus, &cfg);
    eprintln!("queries evaluated: {}", report.per_query.len());

    type Metric = fn(&QueryMetrics) -> Option<f64>;
    let metrics: [(&str, Metric); 4] = [
        ("MAP(r>.75)", |m| m.map_high),
        ("MAP(r>.50)", |m| m.map_mid),
        ("nDCG@5", |m| m.ndcg_a),
        ("nDCG@10", |m| m.ndcg_b),
    ];
    let scorers = [ScoringFunction::Jc, ScoringFunction::RpCih];

    for (name, metric) in metrics {
        println!("\n=== {name} — queries per score bin (bins of width 0.1) ===");
        for scorer in scorers {
            let scores = report.per_query_scores(scorer, metric);
            let hist = histogram(&scores, BINS, 0.0, 1.0000001);
            let max = hist.iter().copied().max().unwrap_or(1).max(1);
            println!("{}:", scorer.name());
            for (b, &count) in hist.iter().enumerate() {
                let bar = "#".repeat(count * 40 / max);
                println!(
                    "  [{:.1},{:.1}) {:>4} {bar}",
                    b as f64 / 10.0,
                    (b + 1) as f64 / 10.0,
                    count
                );
            }
        }
    }
    println!(
        "\nExpected shape (paper Fig. 5): rp*cih mass shifts right relative \
         to jc in every metric."
    );
}
