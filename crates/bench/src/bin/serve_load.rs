//! **serve_load** — deterministic load generator for the `sketch-serve`
//! HTTP query service: replay a fixed workload of top-k queries over
//! keep-alive connections and report sustained q/s plus p50/p95/p99
//! client-side latency, in the same bench-JSON shape as `query_latency`.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin serve_load -- \
//!     [--tables 400] [--sketch-size 1024] [--queries 64] \
//!     [--requests 20000] [--clients <server-threads>] [--server-threads 4] \
//!     [--shards 0] [--warm true] [--verify true] [--json true] \
//!     [--profile true] [--out auto] [--store <dir>] [--addr <host:port>]
//! ```
//!
//! `--out auto` writes a machine-readable `BENCH_serve.json` artifact;
//! `--profile true` replays the workload once more with `"trace":true`
//! under fresh ids and prints per-stage duration percentiles from the
//! returned span trees.
//!
//! By default the harness generates the ~5k-sketch NYC-style corpus
//! (the `query_latency` protocol), packs it into a temp store, boots an
//! in-process server with a fixed worker pool, and drives it over
//! loopback TCP. `--store` serves an existing packed store instead;
//! `--addr` targets an already-running server (skipping boot and
//! response verification, which needs local store access).
//!
//! The workload is deterministic: `--queries` distinct request bodies
//! are derived from the seeded corpus split, client `c` of `C` issues
//! request `c + i·C` of the round-robin sequence, and every body is
//! serialized once up front. With `--warm true` (default) each distinct
//! body is issued once before timing, so the timed run measures the
//! generation-aware cache's hit path; `--warm false` measures the
//! compute path (every request still hits the engine only on its first
//! occurrence per generation unless `--cache 0` disabled caching at the
//! server). With `--verify true` every warm-up response is asserted
//! byte-identical to a fresh single-process `top_k_with_reports`
//! rendering before any timing is trusted.
//!
//! `--shards N` (N ≥ 1) drives the scatter-gather topology instead:
//! the packed corpus is partitioned into N worker stores, N worker
//! servers plus a coordinator boot in-process, and the load runs
//! against the coordinator. Verification generalizes accordingly —
//! every warm-up response is asserted byte-identical to the public-API
//! shard-merge replay (per-shard candidates, lossless bound merge,
//! reports for survivors only), and a `--warm false` run restarts the
//! coordinator after verifying so its merged-response cache starts
//! cold.

use std::net::SocketAddr;
use std::sync::Barrier;
use std::time::Instant;

use correlation_sketches::SketchConfig;
use sketch_bench::{artifact, time_ms, Args, LatencySummary};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_server::{api, HttpClient, IndexSnapshot, QueryParams, ServerConfig};
use sketch_table::ColumnPair;

fn query_body(pair: &ColumnPair, k: usize, candidates: usize, scorer: Option<&str>) -> String {
    query_body_as(&pair.id(), pair, k, candidates, scorer, false)
}

/// `query_body` with an explicit id and an optional `"trace":true` —
/// the profile pass uses fresh ids so its traced requests miss the
/// cache and exercise (and time) the full pipeline.
fn query_body_as(
    id: &str,
    pair: &ColumnPair,
    k: usize,
    candidates: usize,
    scorer: Option<&str>,
    trace: bool,
) -> String {
    let mut out = String::with_capacity(32 * pair.len());
    out.push('{');
    if trace {
        out.push_str("\"trace\":true,");
    }
    out.push_str("\"id\":");
    correlation_sketches::json::push_string(&mut out, id);
    out.push_str(",\"k\":");
    out.push_str(&k.to_string());
    out.push_str(",\"candidates\":");
    out.push_str(&candidates.to_string());
    if let Some(name) = scorer {
        out.push_str(",\"scorer\":");
        correlation_sketches::json::push_string(&mut out, name);
    }
    out.push_str(",\"keys\":[");
    for (i, key) in pair.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_string(&mut out, key);
    }
    out.push_str("],\"values\":[");
    for (i, v) in pair.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_f64(&mut out, *v);
    }
    out.push_str("]}");
    out
}

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 400usize);
    let sketch_size = args.get_or("sketch-size", 1024usize);
    let n_queries = args.get_or("queries", 64usize);
    let requests = args.get_or("requests", 20_000usize);
    let server_threads = args.get_or("server-threads", 4usize);
    // A worker serves one connection at a time, so more clients than
    // workers just serializes into waves; default to a 1:1 match.
    let clients = args.get_or("clients", server_threads).max(1);
    let cache = args.get_or("cache", 1024usize);
    // 0 = single server (the default); N ≥ 1 = N-shard scatter-gather.
    let shards = args.get_or("shards", 0usize);
    let k = args.get_or("k", 10usize);
    let candidates = args.get_or("candidates", 100usize);
    let seed = args.get_or("seed", 0x55_5eedu64);
    let warm = args.get_or("warm", true);
    let verify = args.get_or("verify", true);
    let json = args.get_or("json", false);
    // After the timed run, replay the workload with `"trace":true` and
    // fresh ids (cache misses) and print per-stage percentiles.
    let profile = args.get_or("profile", false);
    // `--scorer s2..s4` puts a confidence-aware (bootstrap-CI) scorer in
    // every request body; combine with `--cache 0 --warm false` to make
    // each request pay the full estimate+CI compute path.
    let scorer = args.get("scorer");

    // Deterministic workload bodies, derived from the same seeded corpus
    // split as `query_latency`.
    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.3, seed);
    split.queries.truncate(n_queries);
    let bodies: Vec<String> = split
        .queries
        .iter()
        .map(|q| query_body(q, k, candidates, scorer))
        .collect();
    assert!(!bodies.is_empty(), "no query bodies; raise --tables");

    // Resolve the server: external --addr, existing --store, or a
    // freshly generated + packed corpus in a temp dir.
    let external: Option<SocketAddr> = args
        .get("addr")
        .map(|a| a.parse().expect("--addr must be host:port"));
    let mut _tmp_store: Option<std::path::PathBuf> = None;
    let mut _tmp_parts: Option<std::path::PathBuf> = None;
    let mut handle = None;
    let mut cluster: Option<sketch_bench::ShardCluster> = None;
    let addr = if let Some(addr) = external {
        addr
    } else {
        let store_dir = match args.get("store") {
            Some(dir) => std::path::PathBuf::from(dir),
            None => {
                let dir = std::env::temp_dir().join(format!("serve-load-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).expect("create temp store dir");
                _tmp_store = Some(dir.clone());
                dir
            }
        };
        if !store_dir.join("manifest.cskm").exists() {
            let config = SketchConfig::with_size(sketch_size);
            let (sketches, t_build) = time_ms(|| {
                correlation_sketches::build_sketches_parallel(&split.corpus, config, server_threads)
            });
            let (_, t_pack) = time_ms(|| {
                sketch_store::pack_corpus(
                    &store_dir,
                    &sketches,
                    &sketch_store::PackOptions {
                        shards: 8,
                        threads: server_threads,
                    },
                )
                .expect("pack corpus")
            });
            eprintln!(
                "serve_load: built {} sketches in {t_build:.0} ms, packed in {t_pack:.0} ms",
                sketches.len()
            );
        }
        if shards > 0 {
            let parts =
                std::env::temp_dir().join(format!("serve-load-parts-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&parts);
            _tmp_parts = Some(parts.clone());
            let mut cl =
                sketch_bench::ShardCluster::boot(&store_dir, &parts, shards, server_threads, cache);
            eprintln!(
                "serve_load: coordinating {} shard workers ({} sketches) at {}",
                cl.workers.len(),
                cl.manifest.total,
                cl.addr()
            );
            if verify {
                let replay = sketch_bench::ShardReplay::load(&cl.worker_dirs, server_threads);
                let defaults = QueryParams::default();
                let mut client = HttpClient::connect(cl.addr()).expect("connect");
                for body in &bodies {
                    let resp = client.post("/query", body).expect("verify request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    assert_eq!(
                        resp.body,
                        replay.expected_response(body, &defaults),
                        "coordinator answer diverged from the shard-merge replay"
                    );
                }
                eprintln!(
                    "serve_load: verified {} coordinator responses against the shard-merge replay",
                    bodies.len()
                );
            }
            if verify && !warm {
                // Same cold-path discipline as single-server mode: the
                // verification pass warmed the coordinator's cache.
                cl.restart_coordinator();
                eprintln!("serve_load: restarted coordinator so the timed run starts cold");
            }
            let addr = cl.addr();
            cluster = Some(cl);
            addr
        } else {
            let mut config = ServerConfig::new(&store_dir);
            config.threads = server_threads;
            config.load_threads = server_threads;
            config.cache_capacity = cache;
            let mut h = sketch_server::start(config.clone()).expect("server starts");
            eprintln!(
                "serve_load: serving {} sketches at {} with {server_threads} workers",
                h.sketches(),
                h.addr()
            );
            // Verification needs the store on disk; only meaningful when we
            // own the server.
            if verify {
                let snap = IndexSnapshot::from_store(&store_dir, server_threads)
                    .expect("load store for verification");
                let defaults = QueryParams::default();
                let mut client = HttpClient::connect(h.addr()).expect("connect");
                for body in &bodies {
                    let resp = client.post("/query", body).expect("verify request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    let req =
                        api::QueryRequest::parse(body.as_bytes(), &defaults).expect("own body");
                    let sketch = snap.build_query(
                        &req.body.id,
                        req.body.keys.clone(),
                        req.body.values.clone(),
                    );
                    let results = sketch_index::engine::top_k_with_reports(
                        snap.index(),
                        &sketch,
                        &req.params.to_options(),
                        req.params.alpha,
                    );
                    assert_eq!(
                        resp.body,
                        api::render_query_response(snap.generation(), &req.params, &results),
                        "served answer diverged from single-process engine"
                    );
                }
                eprintln!(
                    "serve_load: verified {} responses byte-identical to the engine",
                    bodies.len()
                );
            }
            if verify && !warm {
                // The verification pass populated the response cache; a
                // cold-cache run timed against it would silently measure
                // the hit path. Restart for a genuinely cold server.
                let _ = h.shutdown();
                h = sketch_server::start(config).expect("server restarts");
                eprintln!("serve_load: restarted server so the timed run starts cold");
            }
            let addr = h.addr();
            handle = Some(h);
            addr
        }
    };

    // Warm the cache: every distinct body once.
    if warm {
        let mut client = HttpClient::connect(addr).expect("connect");
        for body in &bodies {
            let resp = client.post("/query", body).expect("warm request");
            assert_eq!(resp.status, 200, "{}", resp.body);
        }
        eprintln!("serve_load: warmed {} distinct queries", bodies.len());
    }

    // The timed run: `clients` threads over keep-alive connections,
    // client c issuing bodies[(c + i*clients) % B] — a deterministic
    // round-robin partition of the request sequence.
    let per_client = requests / clients;
    let barrier = Barrier::new(clients + 1);
    let mut latencies: Vec<f64> = Vec::with_capacity(per_client * clients);
    let mut failures = 0usize;
    let bodies_ref = &bodies;
    let barrier_ref = &barrier;
    let (results, wall_ms): (Vec<(Vec<f64>, usize)>, f64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_client);
                    let mut fails = 0usize;
                    barrier_ref.wait();
                    for i in 0..per_client {
                        let body = &bodies_ref[(c + i * clients) % bodies_ref.len()];
                        let t = Instant::now();
                        let resp = client.post("/query", body).expect("request");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        if resp.status != 200 {
                            fails += 1;
                        }
                    }
                    (lat, fails)
                })
            })
            .collect();
        barrier_ref.wait();
        let t0 = Instant::now();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("client threads do not panic"))
            .collect();
        (results, t0.elapsed().as_secs_f64() * 1e3)
    });
    for (lat, fails) in results {
        latencies.extend(lat);
        failures += fails;
    }
    assert_eq!(failures, 0, "{failures} non-200 responses during the run");

    let total = latencies.len();
    let qps = total as f64 / (wall_ms / 1000.0);
    let s = LatencySummary::of(&latencies);

    // Server-side cache statistics, over HTTP like any other client.
    let (mut cache_hits, mut cache_misses, mut generation, mut sketches) = (0, 0, 0, 0);
    if let Ok(mut client) = HttpClient::connect(addr) {
        if let Ok(resp) = client.get("/stats") {
            cache_hits = api::extract_u64(&resp.body, "cache_hits").unwrap_or(0);
            cache_misses = api::extract_u64(&resp.body, "cache_misses").unwrap_or(0);
            generation = api::extract_u64(&resp.body, "generation").unwrap_or(0);
        }
        if let Ok(resp) = client.get("/healthz") {
            sketches = api::extract_u64(&resp.body, "sketches").unwrap_or(0);
        }
    }
    if let Some(cl) = &cluster {
        // The coordinator's healthz reports per-shard counts; the
        // corpus size is the partition total.
        sketches = cl.manifest.total;
    }

    let scorer_name = scorer.unwrap_or("s1");
    let obj = format!(
        "{{\"bench\":\"serve_load\",\"sketches\":{sketches},\
         \"scorer\":\"{scorer_name}\",\"shards\":{shards},\
         \"sketch_size\":{sketch_size},\"tables\":{tables},\
         \"distinct_queries\":{},\"requests\":{total},\
         \"clients\":{clients},\"server_threads\":{server_threads},\
         \"warm\":{warm},\"verified\":{},\"generation\":{generation},\
         \"total_ms\":{wall_ms:.1},\"qps\":{qps:.1},\
         \"mean_ms\":{:.4},\"p50_ms\":{:.4},\"p95_ms\":{:.4},\
         \"p99_ms\":{:.4},\"cache_hits\":{cache_hits},\
         \"cache_misses\":{cache_misses}}}",
        bodies.len(),
        verify && external.is_none(),
        s.mean,
        s.p50,
        s.p95,
        s.p99,
    );
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "serve", &obj).expect("write artifact");
        eprintln!("serve_load: wrote {}", path.display());
    }
    if json {
        println!("{obj}");
    } else {
        println!(
            "\nserve_load — {total} requests, {clients} clients, {server_threads} server threads"
        );
        println!("throughput: {qps:>10.0} q/s  ({wall_ms:.0} ms total)");
        println!("mean      : {:>10.3} ms", s.mean);
        println!("p50       : {:>10.3} ms", s.p50);
        println!("p95       : {:>10.3} ms", s.p95);
        println!("p99       : {:>10.3} ms", s.p99);
        println!("cache     : {cache_hits} hits / {cache_misses} misses (generation {generation})");
    }

    if profile {
        profile_stages(addr, &split.queries, k, candidates, scorer);
    }

    if let Some(h) = handle {
        let _ = h.shutdown();
    }
    if let Some(cl) = cluster {
        cl.shutdown();
    }
    if let Some(dir) = _tmp_parts {
        let _ = std::fs::remove_dir_all(dir);
    }
    if let Some(dir) = _tmp_store {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// Extract `(name, dur_us)` for every span in a rendered trace object.
/// Spans render as `{"name":"…",…,"dur_us":N}`, so pairing each
/// `"name"` with the next `"dur_us"` is exact.
fn span_durs(trace: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = trace;
    while let Some(pos) = rest.find("\"name\":\"") {
        let after = &rest[pos + 8..];
        let Some(end) = after.find('"') else { break };
        let name = &after[..end];
        rest = &after[end..];
        if let Some(dpos) = rest.find("\"dur_us\":") {
            let digits: String = rest[dpos + 9..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(dur) = digits.parse() {
                out.push((name.to_string(), dur));
            }
            rest = &rest[dpos + 9..];
        }
    }
    out
}

/// The `--profile` pass: replay the workload with `"trace":true` under
/// fresh ids (every request misses the cache, so the whole pipeline is
/// timed), then print per-stage duration percentiles. Works identically
/// against a single server and a coordinator — the stage names just
/// differ (engine stages vs scatter/gather).
fn profile_stages(
    addr: SocketAddr,
    queries: &[ColumnPair],
    k: usize,
    candidates: usize,
    scorer: Option<&str>,
) {
    const ROUNDS: usize = 5;
    let mut client = HttpClient::connect(addr).expect("connect for profile");
    let mut stages: std::collections::BTreeMap<String, Vec<f64>> =
        std::collections::BTreeMap::new();
    let mut totals: Vec<f64> = Vec::new();
    for round in 0..ROUNDS {
        for (qi, pair) in queries.iter().enumerate() {
            let id = format!("{}::profile-{round}-{qi}", pair.id());
            let body = query_body_as(&id, pair, k, candidates, scorer, true);
            let resp = client.post("/query", &body).expect("profile request");
            assert_eq!(resp.status, 200, "{}", resp.body);
            let trace_at = resp
                .body
                .find("\"trace\":{")
                .expect("traced response carries a trace object");
            let trace = &resp.body[trace_at..];
            // `api::extract_u64` parses whole response bodies, not
            // fragments, so scan the trace object's total directly.
            let total: String = trace[trace.find("\"total_us\":").expect("total_us") + 11..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            totals.push(total.parse::<u64>().expect("total_us digits") as f64 / 1000.0);
            for (name, dur_us) in span_durs(trace) {
                stages.entry(name).or_default().push(dur_us as f64 / 1000.0);
            }
        }
    }
    println!(
        "\nprofile — {} traced cache-missing requests, per-stage ms",
        totals.len()
    );
    println!(
        "{:<16} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "stage", "count", "mean", "p50", "p95", "p99"
    );
    for (name, durs) in &stages {
        let s = LatencySummary::of(durs);
        println!(
            "{name:<16} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            durs.len(),
            s.mean,
            s.p50,
            s.p95,
            s.p99
        );
    }
    let t = LatencySummary::of(&totals);
    println!(
        "{:<16} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        "total",
        totals.len(),
        t.mean,
        t.p50,
        t.p95,
        t.p99
    );
}
