//! Recall@k of point-estimate vs confidence-aware ranking on a planted
//! corpus with known ground truth — the paper's Section 5 comparison,
//! run through the *live* engine path (retrieve → fused estimate + CI →
//! `s1..s4` re-rank) rather than the offline evaluation harness.
//!
//! The planted corpus (`sketch_datagen::planted`) hides a few genuinely
//! correlated partners per query among full-overlap noise and many
//! small-overlap "trap" columns whose sketch-join estimates can land
//! near ±1 purely by chance. Ground truth (exact joins over the full
//! data) marks only the true partners relevant; recall@k then measures
//! how many of them each scorer surfaces.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin rank_eval
//! cargo run --release -p sketch-bench --bin rank_eval -- \
//!     --queries 8 --traps 60 --sketch-size 128 --k 5 --seed 42 --assert
//! ```
//!
//! With `--assert`, the process exits non-zero unless every CI-aware
//! scorer's recall@k is at least the point-estimate recall AND at least
//! one strictly beats it — the CI smoke gate.

use correlation_sketches::{SketchBuilder, SketchConfig};
use sketch_bench::args::Args;
use sketch_bench::{artifact, time_ms};
use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_index::{engine, PlanMode, QueryOptions, Scorer, SketchIndex};
use sketch_stats::{mean, pearson, recall_at_k, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation, ColumnPair};

/// Minimum exact-join size for a candidate to enter the ground truth at
/// all; `relevant_ids` then applies the `--relevance` threshold to its
/// full-data `|r|`. Matches the engine's default `min_sample`.
const MIN_JOIN: usize = 3;

fn main() {
    let args = Args::from_env();
    let cfg = PlantedConfig {
        queries: args.get_or("queries", 8usize),
        true_per_query: args.get_or("true-per-query", 3usize),
        noise_per_query: args.get_or("noise-per-query", 6usize),
        traps_per_query: args.get_or("traps", 60usize),
        rows: args.get_or("rows", 1_200usize),
        trap_keys: args.get_or("trap-keys", 40usize),
        seed: args.get_or("seed", 42u64),
    };
    let sketch_size = args.get_or("sketch-size", 128usize);
    let k = args.get_or("k", 5usize);
    let relevance = args.get_or("relevance", 0.6f64);
    let threads = args.get_or("threads", 2usize);

    let planted = generate_planted(&cfg);
    eprintln!(
        "rank_eval: {} queries x {} candidates each ({} true, {} noise, {} traps), seed {}",
        planted.queries.len(),
        cfg.true_per_query + cfg.noise_per_query + cfg.traps_per_query,
        cfg.true_per_query,
        cfg.noise_per_query,
        cfg.traps_per_query,
        cfg.seed
    );

    // Ground truth: exact joins over the full planted data.
    let relevant_sets: Vec<Vec<String>> = planted
        .queries
        .iter()
        .map(|q| relevant_ids(q, &planted.corpus, relevance))
        .collect();
    for (q, rel) in planted.queries.iter().zip(&relevant_sets) {
        assert!(
            !rel.is_empty(),
            "{}: planted corpus must contain relevant candidates",
            q.id()
        );
    }

    // The live path: sketch everything, index the corpus, rank with the
    // engine under each scorer.
    let config = SketchConfig::with_size(sketch_size);
    let builder = SketchBuilder::new(config);
    let index = SketchIndex::from_sketches(planted.corpus.iter().map(|p| builder.build(p)))
        .expect("uniform hashers");
    let query_sketches: Vec<_> = planted.queries.iter().map(|q| builder.build(q)).collect();

    println!(
        "scorer      recall@{k}   cost/query   (mean over {} queries)",
        planted.queries.len()
    );
    let mut recalls = Vec::new();
    let mut costs_ms = Vec::new();
    for scorer in Scorer::ALL {
        let opts = QueryOptions {
            k,
            overlap_candidates: 200,
            scorer,
            threads,
            ..QueryOptions::default()
        };
        let (per_query, t_scorer): (Vec<f64>, f64) = time_ms(|| {
            query_sketches
                .iter()
                .zip(&relevant_sets)
                .map(|(q, relevant)| {
                    // Rank the whole retrieved list (k = the candidate cap),
                    // flag each position's relevance, and append any
                    // relevant candidate the retrieval missed entirely as a
                    // trailing non-hit so recall's denominator stays the
                    // ground-truth set, then cut at k.
                    let full = QueryOptions {
                        k: opts.overlap_candidates,
                        ..opts
                    };
                    let ranked = engine::top_k_join_correlation(&index, q, &full);
                    let mut flags: Vec<bool> =
                        ranked.iter().map(|r| relevant.contains(&r.id)).collect();
                    let retrieved = flags.iter().filter(|&&f| f).count();
                    // Unretrieved relevant candidates must land beyond the
                    // cutoff, even when fewer than k candidates ranked.
                    flags.resize(flags.len().max(k), false);
                    flags.extend(std::iter::repeat_n(true, relevant.len() - retrieved));
                    recall_at_k(&flags, k).expect("relevant sets are non-empty")
                })
                .collect()
        });
        let recall = mean(&per_query);
        // Ranking wall time per query under this scorer. The fused
        // stage 2 computes estimate + CI for every scorer, so the costs
        // mostly track each other — the column makes that (and any
        // future scorer-specific work) visible in the artifact.
        let cost = t_scorer / per_query.len().max(1) as f64;
        let label = if scorer == Scorer::S1 {
            "s1 (point)"
        } else {
            scorer.name()
        };
        println!("{label:<11} {recall:.3}      {cost:>7.2} ms");
        recalls.push((scorer, recall));
        costs_ms.push(cost);
    }

    // Plan-mode comparison: the same corpus under an expensive
    // estimator, exhaustive vs the two-pass planner. The planner's
    // losslessness contract means recall must be *identical*; what
    // changes is how many times the expensive estimator runs.
    let plan_estimator: CorrelationEstimator = args
        .get("plan-estimator")
        .unwrap_or("qn")
        .parse()
        .expect("--plan-estimator");
    let plan_scorer: Scorer = args
        .get("plan-scorer")
        .unwrap_or("s2")
        .parse()
        .expect("--plan-scorer");
    // Pruning needs the k-th best pass-1 lower bound to sit above the
    // trap herd, so the plan section queries at a k within the planted
    // strong-partner count (the scorer section above keeps its own k).
    let plan_k = args.get_or("plan-k", cfg.true_per_query.min(k));
    println!(
        "plan ({}/{})  recall@{plan_k}  {} calls/query  cost/query",
        plan_scorer.name(),
        plan_estimator.name(),
        plan_estimator.name()
    );
    let mut plan_rows = Vec::new();
    for plan in [PlanMode::Exhaustive, PlanMode::two_pass()] {
        let opts = QueryOptions {
            k: plan_k,
            overlap_candidates: 200,
            scorer: plan_scorer,
            estimator: plan_estimator,
            threads,
            plan,
            ..QueryOptions::default()
        };
        let ((per_query, answers, invocations), t_plan) = time_ms(|| {
            let mut answers = Vec::new();
            let mut invocations = 0usize;
            let per_query: Vec<f64> = query_sketches
                .iter()
                .zip(&relevant_sets)
                .map(|(q, relevant)| {
                    let (ranked, stats) = engine::top_k_with_plan_stats(&index, q, &opts);
                    invocations += stats.expensive_invocations;
                    let mut flags: Vec<bool> =
                        ranked.iter().map(|r| relevant.contains(&r.id)).collect();
                    let found = flags.iter().filter(|&&f| f).count();
                    answers.push(ranked);
                    // Relevant candidates outside the top-k land beyond
                    // the cutoff so recall's denominator stays the
                    // ground-truth set.
                    flags.resize(flags.len().max(plan_k), false);
                    flags.extend(std::iter::repeat_n(true, relevant.len() - found));
                    recall_at_k(&flags, plan_k).expect("relevant sets are non-empty")
                })
                .collect();
            (per_query, answers, invocations)
        });
        let recall = mean(&per_query);
        let calls = invocations as f64 / per_query.len().max(1) as f64;
        let cost = t_plan / per_query.len().max(1) as f64;
        println!(
            "{:<12} {recall:.3}     {calls:>8.1}        {cost:>7.2} ms",
            plan.name()
        );
        plan_rows.push((plan, recall, invocations, answers, cost));
    }

    let point = recalls[0].1;
    let best = recalls
        .iter()
        .skip(1)
        .map(|&(_, r)| r)
        .fold(f64::NEG_INFINITY, f64::max);
    let obj = format!(
        "{{\"bench\":\"rank_eval\",\"k\":{k},\"seed\":{},\"queries\":{},\
         \"traps_per_query\":{},\"sketch_size\":{sketch_size},\"threads\":{threads},\
         \"recall_point\":{point:.4},\"recall_s2\":{:.4},\
         \"recall_s3\":{:.4},\"recall_s4\":{:.4},\
         \"cost_s1_ms\":{:.3},\"cost_s2_ms\":{:.3},\"cost_s3_ms\":{:.3},\
         \"cost_s4_ms\":{:.3},\"plan_estimator\":\"{}\",\
         \"recall_plan_exhaustive\":{:.4},\"recall_plan_two_pass\":{:.4},\
         \"plan_invocations_exhaustive\":{},\"plan_invocations_two_pass\":{},\
         \"plan_cost_exhaustive_ms\":{:.3},\"plan_cost_two_pass_ms\":{:.3}}}",
        cfg.seed,
        planted.queries.len(),
        cfg.traps_per_query,
        recalls[1].1,
        recalls[2].1,
        recalls[3].1,
        costs_ms[0],
        costs_ms[1],
        costs_ms[2],
        costs_ms[3],
        plan_estimator.name(),
        plan_rows[0].1,
        plan_rows[1].1,
        plan_rows[0].2,
        plan_rows[1].2,
        plan_rows[0].4,
        plan_rows[1].4,
    );
    println!("{obj}");
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "rank_eval", &obj).expect("write artifact");
        eprintln!("rank_eval: wrote {}", path.display());
    }

    if args.flag("assert") {
        let mut ok = true;
        for &(scorer, recall) in &recalls[1..] {
            if recall + 1e-12 < point {
                eprintln!("rank_eval: FAIL — {scorer} recall {recall:.3} below point {point:.3}");
                ok = false;
            }
        }
        if best <= point {
            eprintln!(
                "rank_eval: FAIL — no CI-aware scorer beats point-estimate \
                 ranking (point {point:.3}, best {best:.3})"
            );
            ok = false;
        }
        // The planner gate: two-pass must answer *identically* (so
        // recall is equal by construction) while invoking the expensive
        // estimator strictly fewer times.
        if plan_rows[0].3 != plan_rows[1].3 {
            eprintln!("rank_eval: FAIL — two-pass results differ from exhaustive");
            ok = false;
        }
        if plan_rows[1].2 >= plan_rows[0].2 {
            eprintln!(
                "rank_eval: FAIL — two-pass spent {} {} calls vs {} exhaustive",
                plan_rows[1].2,
                plan_estimator.name(),
                plan_rows[0].2
            );
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!(
            "rank_eval: OK — s2..s4 >= point ({point:.3}) and best CI-aware \
             scorer ({best:.3}) beats it"
        );
        println!(
            "rank_eval: OK — two-pass matches exhaustive with {} vs {} {} calls",
            plan_rows[1].2,
            plan_rows[0].2,
            plan_estimator.name()
        );
    }
}

/// Ids of the candidates whose ground-truth after-join correlation
/// clears the relevance threshold.
fn relevant_ids(query: &ColumnPair, corpus: &[ColumnPair], threshold: f64) -> Vec<String> {
    corpus
        .iter()
        .filter_map(|c| {
            let joined = exact_join(query, c, Aggregation::Mean);
            if joined.len() < MIN_JOIN {
                return None;
            }
            let r = pearson(&joined.x, &joined.y).map_or(0.0, f64::abs);
            (r >= threshold).then(|| c.id())
        })
        .collect()
}
