//! **Ablation: confidence-interval methods** — Fisher's z vs. the
//! paper's Hoeffding interval vs. PM1 bootstrap: empirical coverage of
//! the true correlation, interval width, and computation cost.
//!
//! This quantifies the paper's Section 4.2 argument: Hoeffding bounds are
//! distribution-free and **constant time** while the bootstrap needs
//! hundreds of resamples ("we derive rankings that are comparable to …
//! bootstrapping at a fraction of the cost").
//!
//! ```text
//! cargo run --release -p sketch-bench --bin ablation_ci -- --scale 150
//! ```

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, time_ms, Args, CorpusChoice};
use sketch_stats::fisher_z_interval;
use sketch_table::{exact_join, Aggregation};

#[derive(Default)]
struct Tally {
    covered: usize,
    total: usize,
    width_sum: f64,
    time_ms: f64,
}

impl Tally {
    fn add(&mut self, covered: bool, width: f64, t: f64) {
        self.covered += usize::from(covered);
        self.total += 1;
        self.width_sum += width;
        self.time_ms += t;
    }

    fn row(&self, name: &str) {
        if self.total == 0 {
            println!("{name:<12} (no samples)");
            return;
        }
        println!(
            "{:<12} {:>9.1}% {:>11.3} {:>13.4}",
            name,
            self.covered as f64 / self.total as f64 * 100.0,
            self.width_sum / self.total as f64,
            self.time_ms / self.total as f64
        );
    }
}

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 150usize);
    let max_pairs = args.get_or("max-pairs", 1_200usize);
    let sketch_size = args.get_or("sketch-size", 256usize);
    let alpha = args.get_or("alpha", 0.05f64);
    let seed = args.get_or("seed", 0xab3u64);

    eprintln!("ablation_ci: scale={scale} max_pairs={max_pairs} alpha={alpha}");
    let pairs = corpus_pairs(CorpusChoice::Nyc, scale, seed, max_pairs);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));

    let mut hoeffding = Tally::default();
    let mut bernstein = Tally::default();
    let mut hfd = Tally::default();
    let mut fisher = Tally::default();
    let mut pm1 = Tally::default();

    for (a, b) in &pairs {
        let joined = exact_join(a, b, Aggregation::Mean);
        if joined.len() < 10 {
            continue;
        }
        let Ok(truth) = sketch_stats::pearson(&joined.x, &joined.y) else {
            continue;
        };
        let Ok(sample) = join_sketches(&builder.build(a), &builder.build(b)) else {
            continue;
        };
        if sample.len() < 10 {
            continue;
        }
        let Ok(r_est) = sample.estimate(sketch_stats::CorrelationEstimator::Pearson) else {
            continue;
        };

        let (ci, t) = time_ms(|| sample.hoeffding_ci(alpha).unwrap());
        hoeffding.add(ci.contains(truth), ci.length(), t);

        let (ci, t) = time_ms(|| sample.bernstein_ci(alpha).unwrap());
        bernstein.add(ci.contains(truth), ci.length(), t);

        let (ci, t) = time_ms(|| sample.hfd_ci(alpha).unwrap());
        hfd.add(ci.contains(truth), ci.length(), t);

        let (ci, t) = time_ms(|| fisher_z_interval(r_est, sample.len(), alpha));
        fisher.add(ci.contains(truth), ci.length(), t);

        let (ci, t) = time_ms(|| sample.pm1_ci(seed));
        if let Ok(ci) = ci {
            pm1.add(ci.contains(truth), ci.length(), t);
        }
    }

    println!(
        "\n{:<12} {:>10} {:>11} {:>13}",
        "method", "coverage", "mean width", "mean ms/call"
    );
    hoeffding.row("hoeffding");
    bernstein.row("bernstein");
    hfd.row("hfd");
    fisher.row("fisher-z");
    pm1.row("pm1-boot");
    println!(
        "\nExpected shape: hoeffding coverage ≥ 95% (conservative — often \
         saturating at width 2 for the small join samples of a sketch \
         corpus); bernstein identical here but pulls ahead once samples \
         reach ~10k and column variance ≪ range² (see the unit tests in \
         sketch-stats::ci); fisher-z far narrower but can under-cover on \
         non-normal data; pm1 competitive coverage at orders-of-magnitude \
         higher cost. hfd is not a probabilistic bound and is unclamped: \
         its (sometimes huge) width is the relative risk signal the \
         rp*cih scorer normalizes per ranked list."
    );
}
