//! **Figure 4** — RMSE vs. sketch-intersection size, per correlation
//! estimator and maximum sketch size.
//!
//! The paper buckets all NYC column-pair estimates by the size of the
//! sketch intersection (the join-sample size), and plots RMSE per bucket
//! for each estimator (Pearson, Spearman, RIN, Qn, PM1) and each maximum
//! sketch size `k ∈ {256, 512, 1024}`. The expected shape: RMSE falls as
//! the intersection grows and stabilizes around ~0.1; `Qn` is the least
//! stable.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin fig4_rmse -- \
//!     --dataset nyc --scale 300 --max-pairs 3000
//! ```

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, Args, CorpusChoice};
use sketch_stats::{rmse, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation};

/// Log-spaced intersection-size buckets.
const BUCKETS: [(usize, usize); 7] = [
    (3, 5),
    (6, 10),
    (11, 20),
    (21, 40),
    (41, 80),
    (81, 160),
    (161, usize::MAX),
];

fn bucket_label(b: (usize, usize)) -> String {
    if b.1 == usize::MAX {
        format!("{}+", b.0)
    } else {
        format!("{}-{}", b.0, b.1)
    }
}

fn main() {
    let args = Args::from_env();
    let dataset: CorpusChoice = args
        .get("dataset")
        .unwrap_or("nyc")
        .parse()
        .expect("--dataset sbn|wbf|nyc");
    let scale = args.get_or("scale", 300usize);
    let max_pairs = args.get_or("max-pairs", 3_000usize);
    let seed = args.get_or("seed", 0x417u64);
    let sketch_sizes: Vec<usize> = args
        .get("sketch-sizes")
        .unwrap_or("256,512,1024")
        .split(',')
        .map(|s| s.trim().parse().expect("--sketch-sizes 256,512,1024"))
        .collect();

    eprintln!("fig4: dataset={dataset} scale={scale} max_pairs={max_pairs} k={sketch_sizes:?}");

    let pairs = corpus_pairs(dataset, scale, seed, max_pairs);
    let estimators = CorrelationEstimator::ALL;

    println!(
        "{:<6} {:<9} {:<10} {:>8} {:>8}",
        "k", "estimator", "intersect", "pairs", "RMSE"
    );
    for &k in &sketch_sizes {
        let builder = SketchBuilder::new(SketchConfig::with_size(k));
        // (estimator, bucket) → (estimates, truths)
        let mut cells: Vec<Vec<(Vec<f64>, Vec<f64>)>> =
            vec![vec![(Vec::new(), Vec::new()); BUCKETS.len()]; estimators.len()];

        for (a, b) in &pairs {
            let joined = exact_join(a, b, Aggregation::Mean);
            if joined.len() < 3 {
                continue;
            }
            let Ok(sample) = join_sketches(&builder.build(a), &builder.build(b)) else {
                continue;
            };
            if sample.len() < 3 {
                continue;
            }
            let Some(bucket) = BUCKETS
                .iter()
                .position(|&(lo, hi)| sample.len() >= lo && sample.len() <= hi)
            else {
                continue;
            };
            for (ei, est) in estimators.iter().enumerate() {
                let (Ok(truth), Ok(estimate)) = (
                    est.population_target(&joined.x, &joined.y),
                    sample.estimate(*est),
                ) else {
                    continue;
                };
                cells[ei][bucket].0.push(estimate);
                cells[ei][bucket].1.push(truth);
            }
        }

        for (ei, est) in estimators.iter().enumerate() {
            for (bi, &bucket) in BUCKETS.iter().enumerate() {
                let (ests, truths) = &cells[ei][bi];
                if ests.is_empty() {
                    continue;
                }
                println!(
                    "{:<6} {:<9} {:<10} {:>8} {:>8.4}",
                    k,
                    est.name(),
                    bucket_label(bucket),
                    ests.len(),
                    rmse(ests, truths)
                );
            }
        }
    }
    println!("\nExpected shape (paper Fig. 4): RMSE decreases with intersection size");
    println!("and stabilizes around ~0.1; qn is the least robust of the estimators.");
}
