//! **Figure 3** — estimated vs. actual Pearson correlation scatter.
//!
//! For every pair of column pairs in the chosen corpus: build sketches,
//! join them, estimate the correlation, and compare against the exact
//! after-join correlation. The paper plots the raw scatter; this binary
//! prints the scatter density (a terminal heat map) plus summary accuracy
//! numbers, and optionally dumps the raw `(truth, estimate, n)` triples
//! as CSV for external plotting.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin fig3_estimation -- \
//!     --dataset nyc --scale 300 --sketch-size 256 --min-sample 3
//! ```
//!
//! Paper reference points: SBN estimates hug the diagonal; NYC/WBF show a
//! vertical over-estimation band at truth ≈ 0 that disappears when
//! filtering to join samples ≥ 20 (Figure 3d).

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, Args, CorpusChoice};
use sketch_stats::{pearson, rmse, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation};

struct Point {
    truth: f64,
    estimate: f64,
    sample: usize,
}

fn main() {
    let args = Args::from_env();
    let dataset: CorpusChoice = args
        .get("dataset")
        .unwrap_or("sbn")
        .parse()
        .expect("--dataset sbn|wbf|nyc");
    let scale = args.get_or(
        "scale",
        match dataset {
            CorpusChoice::Sbn => 300usize,
            CorpusChoice::Wbf => 64,
            CorpusChoice::Nyc => 300,
        },
    );
    let sketch_size = args.get_or("sketch-size", 256usize);
    let min_sample = args.get_or("min-sample", 3usize);
    let max_pairs = args.get_or("max-pairs", 5_000usize);
    let seed = args.get_or("seed", 0x316u64);
    let dump_csv = args.flag("csv");

    eprintln!(
        "fig3: dataset={dataset} scale={scale} sketch_size={sketch_size} \
         min_sample={min_sample} max_pairs={max_pairs} seed={seed}"
    );

    let pairs = corpus_pairs(dataset, scale, seed, max_pairs);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));

    let mut points = Vec::new();
    for (a, b) in &pairs {
        let joined = exact_join(a, b, Aggregation::Mean);
        if joined.len() < min_sample {
            continue;
        }
        let Ok(truth) = pearson(&joined.x, &joined.y) else {
            continue;
        };
        let sample = match join_sketches(&builder.build(a), &builder.build(b)) {
            Ok(s) => s,
            Err(_) => continue,
        };
        if sample.len() < min_sample {
            continue;
        }
        let Ok(estimate) = sample.estimate(CorrelationEstimator::Pearson) else {
            continue;
        };
        points.push(Point {
            truth,
            estimate,
            sample: sample.len(),
        });
    }

    if dump_csv {
        println!("truth,estimate,sample_size");
        for p in &points {
            println!("{},{},{}", p.truth, p.estimate, p.sample);
        }
        return;
    }

    report(&points, min_sample);
    // Figure 3d: re-filter at n ≥ 20 for the real-data collections.
    if min_sample < 20 {
        let filtered: Vec<Point> = points.into_iter().filter(|p| p.sample >= 20).collect();
        println!("\n--- filtered to join samples >= 20 (Figure 3d view) ---");
        report(&filtered, 20);
    }
}

fn report(points: &[Point], min_sample: usize) {
    if points.is_empty() {
        println!("no evaluable pairs (min_sample={min_sample})");
        return;
    }
    let truths: Vec<f64> = points.iter().map(|p| p.truth).collect();
    let ests: Vec<f64> = points.iter().map(|p| p.estimate).collect();
    let err_rmse = rmse(&ests, &truths);
    let within = |tol: f64| {
        points
            .iter()
            .filter(|p| (p.estimate - p.truth).abs() <= tol)
            .count() as f64
            / points.len() as f64
    };

    println!("pairs evaluated (n >= {min_sample}): {}", points.len());
    println!("RMSE(estimate, truth)            : {err_rmse:.4}");
    println!("fraction within +-0.05           : {:.3}", within(0.05));
    println!("fraction within +-0.10           : {:.3}", within(0.10));
    println!("fraction within +-0.25           : {:.3}", within(0.25));

    // Terminal scatter density: 21x21 grid over [-1, 1]^2.
    const GRID: usize = 21;
    let mut grid = [[0usize; GRID]; GRID];
    for p in points {
        let gx = (((p.truth + 1.0) / 2.0 * (GRID as f64 - 1.0)).round() as usize).min(GRID - 1);
        let gy = (((p.estimate + 1.0) / 2.0 * (GRID as f64 - 1.0)).round() as usize).min(GRID - 1);
        grid[GRID - 1 - gy][gx] += 1;
    }
    println!("\nscatter density (x: actual -1..1, y: estimate 1..-1):");
    for row in &grid {
        let line: String = row
            .iter()
            .map(|&c| match c {
                0 => ' ',
                1..=2 => '.',
                3..=9 => 'o',
                10..=29 => 'O',
                _ => '#',
            })
            .collect();
        println!("|{line}|");
    }
    println!("(diagonal concentration = accurate estimates)");
}
