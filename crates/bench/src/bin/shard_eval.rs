//! **shard_eval** — quantify what the coordinator's bound-based early
//! termination saves over a naive scatter-gather, at provably identical
//! answers.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin shard_eval -- \
//!     [--tables 200] [--sketch-size 256] [--queries 32] [--shards 3] \
//!     [--k 3] [--candidates 100] [--scorer s2] [--assert false] \
//!     [--json true] [--out results/]
//! ```
//!
//! The harness packs a seeded corpus, partitions it into `--shards`
//! worker stores, boots the full in-process cluster, and answers every
//! query two ways, conceptually:
//!
//! * **coordinator** — the real scatter-gather: lightweight per-shard
//!   candidate rows, the lossless score-bound merge, then full
//!   uncertainty reports fetched only for the global winners. The
//!   bound is what makes winners-only fetching provably lossless: a
//!   candidate whose clamped score upper bound cannot reach the global
//!   k-th lower bound (`terminated` in the response accounting) is
//!   excluded from the top-k by its bound alone, so its report never
//!   crosses the wire.
//! * **naive k-per-shard gather** — the baseline every
//!   shard-per-server system starts with: each worker answers the
//!   public `/query` with its complete local top-k *including full
//!   reports*, merged client-side. Its transfer cost is the sum of
//!   per-shard result counts (`shards × k` when every shard is rich
//!   enough) — and under the list-normalized `s4` scorer it is not
//!   even guaranteed to produce the right answer.
//!
//! Every coordinator response is asserted byte-identical to the
//! public-API shard-merge replay, and its result list byte-identical to
//! a single process over the union store — the savings are measured at
//! *identical answers*, not approximated ones. `--assert true`
//! additionally requires (the PR's acceptance gate) that the
//! coordinator shipped strictly fewer full reports than the naive
//! gather in aggregate, and that the termination bound demonstrably
//! engaged (`terminated > 0` over the run).

use correlation_sketches::SketchConfig;
use sketch_bench::{artifact, Args, ShardCluster, ShardReplay};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_server::{api, HttpClient, IndexSnapshot, QueryParams};
use sketch_table::ColumnPair;

fn query_body(pair: &ColumnPair, k: usize, candidates: usize, scorer: &str) -> String {
    let mut out = String::with_capacity(32 * pair.len());
    out.push_str("{\"id\":");
    correlation_sketches::json::push_string(&mut out, &pair.id());
    out.push_str(",\"k\":");
    out.push_str(&k.to_string());
    out.push_str(",\"candidates\":");
    out.push_str(&candidates.to_string());
    out.push_str(",\"scorer\":");
    correlation_sketches::json::push_string(&mut out, scorer);
    out.push_str(",\"keys\":[");
    for (i, key) in pair.keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_string(&mut out, key);
    }
    out.push_str("],\"values\":[");
    for (i, v) in pair.values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        correlation_sketches::json::push_f64(&mut out, *v);
    }
    out.push_str("]}");
    out
}

/// The `"results":[…]}` suffix of a response — the answer itself,
/// independent of the topology-specific preamble around it.
fn results_field(body: &str) -> &str {
    let start = body.find("\"results\":").expect("response carries results");
    &body[start..]
}

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 200usize);
    let sketch_size = args.get_or("sketch-size", 256usize);
    let n_queries = args.get_or("queries", 32usize);
    let shards = args.get_or("shards", 3usize).max(1);
    // k = 3 keeps the termination threshold τ (the k-th best score
    // lower bound) high enough on this corpus that the bound visibly
    // terminates candidates; raise k to stress the merge instead.
    let k = args.get_or("k", 3usize);
    let candidates = args.get_or("candidates", 100usize);
    let seed = args.get_or("seed", 0x55_5eedu64);
    let scorer = args.get("scorer").unwrap_or("s2");
    let must_save = args.get_or("assert", false);
    let json = args.get_or("json", false);
    let server_threads = args.get_or("server-threads", 4usize);

    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.3, seed);
    split.queries.truncate(n_queries);
    let bodies: Vec<String> = split
        .queries
        .iter()
        .map(|q| query_body(q, k, candidates, scorer))
        .collect();
    assert!(!bodies.is_empty(), "no query bodies; raise --tables");

    let tmp = std::env::temp_dir().join(format!("shard-eval-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let store_dir = tmp.join("union");
    let config = SketchConfig::with_size(sketch_size);
    let sketches =
        correlation_sketches::build_sketches_parallel(&split.corpus, config, server_threads);
    sketch_store::pack_corpus(
        &store_dir,
        &sketches,
        &sketch_store::PackOptions {
            shards: 8,
            threads: server_threads,
        },
    )
    .expect("pack corpus");

    let cluster = ShardCluster::boot(&store_dir, &tmp.join("parts"), shards, server_threads, 1024);
    eprintln!(
        "shard_eval: {} sketches over {} workers, scorer {scorer}, k {k}",
        cluster.manifest.total,
        cluster.workers.len()
    );
    let replay = ShardReplay::load(&cluster.worker_dirs, server_threads);
    let union_snap = IndexSnapshot::from_store(&store_dir, server_threads).expect("load union");
    let defaults = QueryParams::default();

    let mut client = HttpClient::connect(cluster.addr()).expect("connect");
    let (mut total_merged, mut total_survivors, mut total_reports, mut total_naive) =
        (0u64, 0u64, 0u64, 0u64);
    for body in &bodies {
        let resp = client.post("/query", body).expect("query");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            resp.body,
            replay.expected_response(body, &defaults),
            "coordinator answer diverged from the shard-merge replay"
        );
        // Identical answers: the sharded result list is byte-equal to a
        // single process over the union corpus.
        let req = api::QueryRequest::parse(body.as_bytes(), &defaults).expect("own body");
        let sketch =
            union_snap.build_query(&req.body.id, req.body.keys.clone(), req.body.values.clone());
        let single = sketch_index::engine::top_k_with_reports(
            union_snap.index(),
            &sketch,
            &req.params.to_options(),
            req.params.alpha,
        );
        let single_render = api::render_query_response(0, &req.params, &single);
        assert_eq!(
            results_field(&resp.body),
            results_field(&single_render),
            "sharded answer diverged from the single-process union"
        );

        total_merged += api::extract_u64(&resp.body, "merged").expect("merged field");
        total_survivors += api::extract_u64(&resp.body, "shipped").expect("shipped field");
        // What phase 2 actually transferred: one full report per
        // winner (the response's result count).
        total_reports += api::extract_u64(&resp.body, "count").expect("count field");
        total_naive += replay.naive_shipped(body, &defaults) as u64;
    }
    let total_terminated = total_merged - total_survivors;

    let savings = if total_naive > 0 {
        100.0 * (1.0 - total_reports as f64 / total_naive as f64)
    } else {
        0.0
    };
    let obj = format!(
        "{{\"bench\":\"shard_eval\",\"sketches\":{},\"shards\":{shards},\
         \"scorer\":\"{scorer}\",\"k\":{k},\"queries\":{},\
         \"merged\":{total_merged},\"survivors\":{total_survivors},\
         \"terminated\":{total_terminated},\
         \"reports_shipped\":{total_reports},\
         \"naive_shipped\":{total_naive},\"savings_pct\":{savings:.1},\
         \"identical\":true}}",
        cluster.manifest.total,
        bodies.len(),
    );
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "shard_eval", &obj).expect("write artifact");
        eprintln!("shard_eval: wrote {}", path.display());
    }
    if json {
        println!("{obj}");
    } else {
        println!(
            "\nshard_eval — {} queries over {shards} shards (scorer {scorer}, k {k})",
            bodies.len()
        );
        println!("merged candidate rows : {total_merged:>8}");
        println!("bound survivors       : {total_survivors:>8}  (terminated {total_terminated})");
        println!("reports shipped       : {total_reports:>8}");
        println!("reports shipped naive : {total_naive:>8}");
        println!("transfer savings      : {savings:>7.1}%  at byte-identical answers");
    }

    if must_save {
        assert!(
            total_reports < total_naive,
            "coordinator shipped {total_reports} full reports, naive k-per-shard gather \
             {total_naive} — no transfer win"
        );
        assert!(
            total_terminated > 0,
            "the termination bound never engaged over {total_merged} merged rows \
             (τ excluded nothing) — lower --k or check score_bounds"
        );
        eprintln!(
            "shard_eval: ASSERT ok — {total_reports} < {total_naive} reports shipped at \
             identical answers; bound terminated {total_terminated}/{total_merged} candidates"
        );
    }

    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&tmp);
}
