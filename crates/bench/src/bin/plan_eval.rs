//! Latency and estimator-invocation cost of the two-pass query planner
//! vs exhaustive estimation, per expensive estimator, on the planted
//! ranking corpus — the planner's headline bench gate.
//!
//! For each estimator (default `pm1` and `qn`) the harness answers every
//! query under both plans through the live engine path and reports
//! recall@k, expensive-estimator invocations, and wall time per query.
//! The planner is lossless by contract, so recall columns must be
//! identical; the win is the invocation (and latency) column.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin plan_eval
//! cargo run --release -p sketch-bench --bin plan_eval -- \
//!     --queries 8 --traps 60 --k 5 --seed 42 --min-ratio 2.0 --assert
//! ```
//!
//! With `--assert`, the process exits non-zero unless, for every
//! estimator, two-pass results are identical to exhaustive AND the
//! `pm1` invocation count drops by at least `--min-ratio` (default 2x).
//! Latency is reported but not hard-gated — invocation counts are
//! deterministic, wall time on shared CI runners is not.

use correlation_sketches::{SketchBuilder, SketchConfig};
use sketch_bench::args::Args;
use sketch_bench::{artifact, time_ms};
use sketch_datagen::{generate_planted, PlantedConfig};
use sketch_index::{engine, PlanMode, QueryOptions, Scorer, SketchIndex};
use sketch_stats::{mean, pearson, recall_at_k, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation, ColumnPair};

/// Minimum exact-join size for ground-truth membership (matches
/// `rank_eval`).
const MIN_JOIN: usize = 3;

/// One plan's aggregate numbers for one estimator.
struct PlanRun {
    recall: f64,
    invocations: usize,
    pruned: usize,
    ms_per_query: f64,
    answers: Vec<Vec<engine::QueryResult>>,
}

fn main() {
    let args = Args::from_env();
    let cfg = PlantedConfig {
        queries: args.get_or("queries", 8usize),
        true_per_query: args.get_or("true-per-query", 6usize),
        noise_per_query: args.get_or("noise-per-query", 12usize),
        traps_per_query: args.get_or("traps", 60usize),
        rows: args.get_or("rows", 1_200usize),
        trap_keys: args.get_or("trap-keys", 40usize),
        seed: args.get_or("seed", 42u64),
    };
    let sketch_size = args.get_or("sketch-size", 128usize);
    let k = args.get_or("k", 5usize);
    let relevance = args.get_or("relevance", 0.6f64);
    let threads = args.get_or("threads", 2usize);
    let scorer: Scorer = args
        .get("scorer")
        .unwrap_or("s2")
        .parse()
        .expect("--scorer");
    let min_ratio = args.get_or("min-ratio", 2.0f64);

    let planted = generate_planted(&cfg);
    eprintln!(
        "plan_eval: {} queries x {} candidates each ({} true, {} noise, {} traps), \
         scorer {}, seed {}",
        planted.queries.len(),
        cfg.true_per_query + cfg.noise_per_query + cfg.traps_per_query,
        cfg.true_per_query,
        cfg.noise_per_query,
        cfg.traps_per_query,
        scorer.name(),
        cfg.seed
    );

    let relevant_sets: Vec<Vec<String>> = planted
        .queries
        .iter()
        .map(|q| relevant_ids(q, &planted.corpus, relevance))
        .collect();
    let config = SketchConfig::with_size(sketch_size);
    let builder = SketchBuilder::new(config);
    let index = SketchIndex::from_sketches(planted.corpus.iter().map(|p| builder.build(p)))
        .expect("uniform hashers");
    let query_sketches: Vec<_> = planted.queries.iter().map(|q| builder.build(q)).collect();

    let estimators: Vec<CorrelationEstimator> = args
        .get("estimators")
        .unwrap_or("pm1,qn")
        .split(',')
        .map(|s| s.trim().parse().expect("--estimators"))
        .collect();

    println!("estimator  plan        recall@{k}  calls/query  pruned/query  cost/query");
    let mut ok = true;
    let mut json_rows = Vec::new();
    for estimator in &estimators {
        let mut runs = Vec::new();
        for plan in [PlanMode::Exhaustive, PlanMode::two_pass()] {
            let opts = QueryOptions {
                k,
                overlap_candidates: 200,
                scorer,
                estimator: *estimator,
                threads,
                plan,
                ..QueryOptions::default()
            };
            let (run, t_plan) =
                time_ms(|| run_plan(&index, &query_sketches, &relevant_sets, &opts, k));
            let n = query_sketches.len().max(1) as f64;
            let run = PlanRun {
                ms_per_query: t_plan / n,
                ..run
            };
            println!(
                "{:<10} {:<11} {:.3}     {:>8.1}     {:>8.1}      {:>7.2} ms",
                estimator.name(),
                plan.name(),
                run.recall,
                run.invocations as f64 / n,
                run.pruned as f64 / n,
                run.ms_per_query
            );
            runs.push(run);
        }
        let (ex, tp) = (&runs[0], &runs[1]);
        let ratio = ex.invocations as f64 / (tp.invocations.max(1)) as f64;
        let speedup = ex.ms_per_query / tp.ms_per_query.max(1e-9);
        println!(
            "{:<10} two-pass spends {:.1}x fewer {} calls ({} vs {}), {:.1}x wall",
            estimator.name(),
            ratio,
            estimator.name(),
            tp.invocations,
            ex.invocations,
            speedup
        );
        if tp.answers != ex.answers {
            eprintln!(
                "plan_eval: FAIL — {} two-pass results differ from exhaustive",
                estimator.name()
            );
            ok = false;
        }
        if (tp.recall - ex.recall).abs() > 1e-12 {
            eprintln!(
                "plan_eval: FAIL — {} recall moved: {:.4} vs {:.4}",
                estimator.name(),
                tp.recall,
                ex.recall
            );
            ok = false;
        }
        // The hard invocation gate applies to pm1 (the costliest
        // estimator, where the planner matters most); every estimator
        // must still strictly reduce invocations.
        let required = if matches!(estimator, CorrelationEstimator::Pm1Bootstrap { .. }) {
            min_ratio
        } else {
            1.0 + 1e-9
        };
        if ratio < required {
            eprintln!(
                "plan_eval: FAIL — {} invocation ratio {ratio:.2} below required {required:.2}",
                estimator.name()
            );
            ok = false;
        }
        json_rows.push(format!(
            "\"{}\":{{\"recall\":{:.4},\"invocations_exhaustive\":{},\
             \"invocations_two_pass\":{},\"ratio\":{:.3},\
             \"ms_exhaustive\":{:.3},\"ms_two_pass\":{:.3}}}",
            estimator.name(),
            tp.recall,
            ex.invocations,
            tp.invocations,
            ratio,
            ex.ms_per_query,
            tp.ms_per_query
        ));
    }

    let obj = format!(
        "{{\"bench\":\"plan_eval\",\"k\":{k},\"seed\":{},\"queries\":{},\
         \"traps_per_query\":{},\"sketch_size\":{sketch_size},\"threads\":{threads},\
         \"scorer\":\"{}\",{}}}",
        cfg.seed,
        planted.queries.len(),
        cfg.traps_per_query,
        scorer.name(),
        json_rows.join(",")
    );
    println!("{obj}");
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "plan", &obj).expect("write artifact");
        eprintln!("plan_eval: wrote {}", path.display());
    }

    if args.flag("assert") {
        if !ok {
            std::process::exit(1);
        }
        println!("plan_eval: OK — two-pass lossless with fewer expensive invocations");
    }
}

fn run_plan(
    index: &SketchIndex,
    queries: &[correlation_sketches::CorrelationSketch],
    relevant_sets: &[Vec<String>],
    opts: &QueryOptions,
    k: usize,
) -> PlanRun {
    let mut invocations = 0usize;
    let mut pruned = 0usize;
    let mut answers = Vec::new();
    let per_query: Vec<f64> = queries
        .iter()
        .zip(relevant_sets)
        .map(|(q, relevant)| {
            let (ranked, stats) = engine::top_k_with_plan_stats(index, q, opts);
            invocations += stats.expensive_invocations;
            pruned += stats.pruned;
            let mut flags: Vec<bool> = ranked.iter().map(|r| relevant.contains(&r.id)).collect();
            let found = flags.iter().filter(|&&f| f).count();
            answers.push(ranked);
            // Relevant candidates outside the top-k land beyond the
            // cutoff so recall's denominator stays the ground-truth set.
            flags.resize(flags.len().max(k), false);
            flags.extend(std::iter::repeat_n(true, relevant.len() - found));
            recall_at_k(&flags, k).expect("relevant sets are non-empty")
        })
        .collect();
    PlanRun {
        recall: mean(&per_query),
        invocations,
        pruned,
        ms_per_query: 0.0,
        answers,
    }
}

/// Ids of the candidates whose ground-truth after-join correlation
/// clears the relevance threshold (same protocol as `rank_eval`).
fn relevant_ids(query: &ColumnPair, corpus: &[ColumnPair], threshold: f64) -> Vec<String> {
    corpus
        .iter()
        .filter_map(|c| {
            let joined = exact_join(query, c, Aggregation::Mean);
            if joined.len() < MIN_JOIN {
                return None;
            }
            let r = pearson(&joined.x, &joined.y).map_or(0.0, f64::abs);
            (r >= threshold).then(|| c.id())
        })
        .collect()
}
