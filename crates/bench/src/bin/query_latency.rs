//! **Section 5.5 (Query Evaluation)** — end-to-end latency of top-k
//! join-correlation queries against the inverted index.
//!
//! Protocol from the paper: extract all column pairs, split into query
//! and corpus sets, build an index over the corpus set with maximum
//! sketch size 1024, then issue every query: retrieve the top-100
//! columns by key overlap, join sketches, estimate correlations, re-sort
//! by estimate. Reported: latency percentiles and the fraction of
//! queries under 100 ms / 200 ms.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin query_latency -- \
//!     --tables 400 --sketch-size 1024 [--query-threads 1] [--json true]
//! ```
//!
//! Paper reference points: 94% of queries under 100 ms, ~98.5% under
//! 200 ms on the full NYC snapshot.
//!
//! With `--json true` the summary is emitted as a single JSON object on
//! stdout (human-readable progress stays on stderr), so the perf
//! trajectory can be tracked mechanically across PRs.

use correlation_sketches::{SketchBuilder, SketchConfig};
use sketch_bench::{percentile, time_ms, Args, LatencySummary};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 400usize);
    let sketch_size = args.get_or("sketch-size", 1024usize);
    let candidates = args.get_or("candidates", 100usize);
    let k = args.get_or("k", 10usize);
    let max_queries = args.get_or("max-queries", 500usize);
    let seed = args.get_or("seed", 0x55_5eedu64);

    eprintln!(
        "query_latency: tables={tables} sketch_size={sketch_size} candidates={candidates} k={k}"
    );

    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.3, seed);
    split.queries.truncate(max_queries);

    let threads = args.get_or("threads", 4usize);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));
    let (mut index, t_index) = time_ms(|| {
        let sketches = correlation_sketches::build_sketches_parallel(
            &split.corpus,
            *builder.config(),
            threads,
        );
        let mut idx = SketchIndex::new();
        for sketch in sketches {
            idx.insert(sketch).expect("uniform hasher");
        }
        idx
    });
    eprintln!(
        "indexed {} sketches over {} distinct keys in {:.1} ms",
        index.len(),
        index.distinct_keys(),
        t_index
    );
    let index = &mut index;

    let query_threads = args.get_or("query-threads", 1usize);
    let json = args.get_or("json", false);
    let with_reports = args.get_or("with-reports", false);
    let opts = QueryOptions {
        overlap_candidates: candidates,
        k,
        threads: query_threads,
        ..QueryOptions::default()
    };

    let mut latencies = Vec::with_capacity(split.queries.len());
    let mut total_results = 0usize;
    for q in &split.queries {
        // Query-sketch construction is part of the online path here (the
        // user's table is not pre-indexed), matching the paper's setup of
        // issuing column pairs from the query set.
        let (n_results, t) = time_ms(|| {
            let qs = builder.build(q);
            if with_reports {
                engine::top_k_with_reports(index, &qs, &opts, 0.05).len()
            } else {
                engine::top_k_join_correlation(index, &qs, &opts).len()
            }
        });
        total_results += n_results;
        latencies.push(t);
    }

    let s = LatencySummary::of(&latencies);
    let under = |ms: f64| {
        latencies.iter().filter(|&&t| t < ms).count() as f64 / latencies.len() as f64 * 100.0
    };
    let mean_results = total_results as f64 / latencies.len().max(1) as f64;

    if json {
        // One machine-readable object on stdout so CI / scripts can diff
        // the perf trajectory across PRs.
        println!(
            "{{\"bench\":\"query_latency\",\"tables\":{tables},\
             \"sketches\":{},\"distinct_keys\":{},\"sketch_size\":{sketch_size},\
             \"candidates\":{candidates},\"k\":{k},\"query_threads\":{query_threads},\
             \"with_reports\":{with_reports},\"queries\":{},\
             \"index_build_ms\":{t_index:.3},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\
             \"p75_ms\":{:.4},\"p90_ms\":{:.4},\"p99_ms\":{:.4},\"p999_ms\":{:.4},\
             \"under_100ms_pct\":{:.2},\"under_200ms_pct\":{:.2},\
             \"mean_results_per_query\":{mean_results:.2}}}",
            index.len(),
            index.distinct_keys(),
            latencies.len(),
            s.mean,
            percentile(&latencies, 50.0),
            s.p75,
            s.p90,
            s.p99,
            s.p999,
            under(100.0),
            under(200.0),
        );
        return;
    }

    println!(
        "\nSection 5.5 — query evaluation latency ({} queries)",
        latencies.len()
    );
    println!("mean      : {:>10.3} ms", s.mean);
    println!("p50       : {:>10.3} ms", percentile(&latencies, 50.0));
    println!("p75       : {:>10.3} ms", s.p75);
    println!("p90       : {:>10.3} ms", s.p90);
    println!("p99       : {:>10.3} ms", s.p99);
    println!("p99.9     : {:>10.3} ms", s.p999);
    println!("< 100 ms  : {:>9.1}%  (paper: 94%)", under(100.0));
    println!("< 200 ms  : {:>9.1}%  (paper: ~98.5%)", under(200.0));
    println!("mean results per query: {mean_results:.1}");
}
