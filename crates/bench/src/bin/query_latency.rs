//! **Section 5.5 (Query Evaluation)** — end-to-end latency of top-k
//! join-correlation queries against the inverted index.
//!
//! Protocol from the paper: extract all column pairs, split into query
//! and corpus sets, build an index over the corpus set with maximum
//! sketch size 1024, then issue every query: retrieve the top-100
//! columns by key overlap, join sketches, estimate correlations, re-sort
//! by estimate. Reported: latency percentiles and the fraction of
//! queries under 100 ms / 200 ms.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin query_latency -- \
//!     --tables 400 --sketch-size 1024 [--query-threads 1] [--json true] \
//!     [--store /tmp/qlat-store]
//! ```
//!
//! Paper reference points: 94% of queries under 100 ms, ~98.5% under
//! 200 ms on the full NYC snapshot.
//!
//! With `--json true` the summary is emitted as a single JSON object on
//! stdout (human-readable progress stays on stderr), so the perf
//! trajectory can be tracked mechanically across PRs.
//!
//! With `--store <dir>` the corpus is additionally persisted twice —
//! newline-delimited JSON and the sharded binary store — and both cold
//! loads are timed and reported (`json_load_ms`, `store_load_ms`,
//! `load_speedup`), after asserting that each load returns exactly the
//! sketches that were built.
//!
//! With `--churn <N>` (N > 0) the run becomes a mutable-corpus workload:
//! every N queries the oldest live sketch is removed from the index and
//! the previously removed one is re-inserted (a steady remove/re-insert
//! cycle), so queries execute against an index under live maintenance.
//! Update costs are timed separately from query latencies, and at the
//! end the churned index is asserted bit-identical (full reports) to an
//! index rebuilt from scratch over the surviving sketches — the same
//! equivalence contract the `prop_mutable` battery proves.

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_bench::{artifact, time_ms, Args, LatencySummary};
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_index::{engine, QueryOptions, SketchIndex};

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 400usize);
    let sketch_size = args.get_or("sketch-size", 1024usize);
    let candidates = args.get_or("candidates", 100usize);
    let k = args.get_or("k", 10usize);
    let max_queries = args.get_or("max-queries", 500usize);
    let seed = args.get_or("seed", 0x55_5eedu64);

    eprintln!(
        "query_latency: tables={tables} sketch_size={sketch_size} candidates={candidates} k={k}"
    );

    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.3, seed);
    split.queries.truncate(max_queries);

    let threads = args.get_or("threads", 4usize);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));
    let (sketches, t_sketch) = time_ms(|| {
        correlation_sketches::build_sketches_parallel(&split.corpus, *builder.config(), threads)
    });

    // --store <dir>: persist the corpus as JSON and as a sharded binary
    // store, then time a cold load of each. Loads are verified
    // bit-identical to the in-memory sketches before timings are trusted.
    let mut extra = String::new();
    let mut load_lines: Vec<String> = Vec::new();
    if let Some(dir) = args.get("store") {
        let dirp = std::path::Path::new(dir);
        std::fs::create_dir_all(dirp).expect("create store dir");
        let shards = args.get_or("shards", 8usize);

        let json_path = dirp.join("corpus.jsonl");
        let mut text = String::with_capacity(64 * sketches.len());
        for s in &sketches {
            text.push_str(&s.to_json().expect("built sketches are finite"));
            text.push('\n');
        }
        std::fs::write(&json_path, &text).expect("write JSON corpus");

        let (_, t_pack) = time_ms(|| {
            sketch_store::pack_corpus(
                dirp,
                &sketches,
                &sketch_store::PackOptions { shards, threads },
            )
            .expect("pack corpus")
        });

        let (json_loaded, t_json_load) = time_ms(|| {
            let text = std::fs::read_to_string(&json_path).expect("read JSON corpus");
            text.lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| CorrelationSketch::from_json(l).expect("valid sketch line"))
                .collect::<Vec<_>>()
        });
        let (store_loaded, t_store_load) =
            time_ms(|| sketch_store::read_corpus(dirp, threads).expect("read store"));
        let (_, t_store_serial) =
            time_ms(|| sketch_store::read_corpus(dirp, 1).expect("read store"));
        assert_eq!(json_loaded, sketches, "JSON load must round-trip");
        assert_eq!(store_loaded, sketches, "store load must round-trip");

        let speedup = t_json_load / t_store_load;
        load_lines.push(format!(
            "corpus load ({} sketches): json {t_json_load:.1} ms, \
             store {t_store_load:.1} ms ({threads} threads; serial {t_store_serial:.1} ms), \
             pack {t_pack:.1} ms -> {speedup:.1}x faster",
            sketches.len()
        ));
        extra = format!(
            ",\"store_shards\":{shards},\"pack_ms\":{t_pack:.3},\
             \"json_load_ms\":{t_json_load:.3},\"store_load_ms\":{t_store_load:.3},\
             \"store_load_serial_ms\":{t_store_serial:.3},\"load_speedup\":{speedup:.2}"
        );
    }

    let churn_every = args.get_or("churn", 0usize);
    // The churn workload needs the corpus again: as the live mirror that
    // drives remove/re-insert cycles and as the input of the final
    // rebuild-equivalence check.
    let mut live_order: Vec<CorrelationSketch> = if churn_every > 0 {
        sketches.clone()
    } else {
        Vec::new()
    };

    let (mut index, t_insert) = time_ms(|| {
        let mut idx = SketchIndex::new();
        for sketch in sketches {
            idx.insert(sketch).expect("uniform hasher");
        }
        idx
    });
    let t_index = t_sketch + t_insert;
    eprintln!(
        "indexed {} sketches over {} distinct keys in {:.1} ms",
        index.len(),
        index.distinct_keys(),
        t_index
    );
    for line in &load_lines {
        eprintln!("{line}");
    }
    let index = &mut index;

    let query_threads = args.get_or("query-threads", 1usize);
    let json = args.get_or("json", false);
    let with_reports = args.get_or("with-reports", false);
    let opts = QueryOptions {
        overlap_candidates: candidates,
        k,
        threads: query_threads,
        ..QueryOptions::default()
    };

    let mut latencies = Vec::with_capacity(split.queries.len());
    let mut total_results = 0usize;
    let mut churn_ops = 0usize;
    let mut churn_ms: Vec<f64> = Vec::new();
    // The sketch removed by the previous churn step, re-inserted by the
    // next one, so the live corpus size stays steady under churn.
    let mut parked: Option<CorrelationSketch> = None;
    for (qi, q) in split.queries.iter().enumerate() {
        if churn_every > 0 && qi > 0 && qi % churn_every == 0 && !live_order.is_empty() {
            let (_, t) = time_ms(|| {
                let victim = live_order.remove(0);
                assert!(index.remove(victim.id()), "victim must be live");
                churn_ops += 1;
                if let Some(back) = parked.take() {
                    index.insert(back.clone()).expect("uniform hasher");
                    live_order.push(back);
                    churn_ops += 1;
                }
                parked = Some(victim);
            });
            churn_ms.push(t);
        }
        // Query-sketch construction is part of the online path here (the
        // user's table is not pre-indexed), matching the paper's setup of
        // issuing column pairs from the query set.
        let (n_results, t) = time_ms(|| {
            let qs = builder.build(q);
            if with_reports {
                engine::top_k_with_reports(index, &qs, &opts, 0.05).len()
            } else {
                engine::top_k_join_correlation(index, &qs, &opts).len()
            }
        });
        total_results += n_results;
        latencies.push(t);
    }

    // After interleaved updates + queries, the churned index must answer
    // exactly like an index rebuilt from scratch over the survivors —
    // doc ids, tie-breaks, uncertainty reports and all.
    if churn_every > 0 {
        let (rebuilt, t_rebuild) = time_ms(|| {
            SketchIndex::from_sketches(live_order.iter().cloned()).expect("uniform hasher")
        });
        for q in split.queries.iter().take(50) {
            let qs = builder.build(q);
            assert_eq!(
                engine::top_k_with_reports(index, &qs, &opts, 0.05),
                engine::top_k_with_reports(&rebuilt, &qs, &opts, 0.05),
                "churned index must be bit-identical to a rebuild"
            );
        }
        let mean_churn = churn_ms.iter().sum::<f64>() / churn_ms.len().max(1) as f64;
        load_lines.push(format!(
            "churn: {churn_ops} update ops (every {churn_every} queries, \
             mean {mean_churn:.3} ms/cycle), verified bit-identical to a \
             from-scratch rebuild ({t_rebuild:.1} ms)"
        ));
        extra.push_str(&format!(
            ",\"churn_every\":{churn_every},\"churn_ops\":{churn_ops},\
             \"churn_cycle_mean_ms\":{mean_churn:.4},\"churn_verified\":true"
        ));
    }

    // --batch true: run the same workload again through the amortized
    // batch API (pre-built query sketches, one call) and report the
    // whole-batch wall time and throughput. Under churn the loop above
    // answered against a moving index, so the equality check (and hence
    // the batch pass) only runs for the static workload.
    if churn_every > 0 && args.get_or("batch", false) {
        load_lines
            .push("batch: skipped under --churn (the loop answered a moving index)".to_string());
    }
    if churn_every == 0 && args.get_or("batch", false) {
        let query_sketches: Vec<_> = split.queries.iter().map(|q| builder.build(q)).collect();
        let (batch_results, t_batch) =
            time_ms(|| engine::top_k_batch(index, &query_sketches, &opts));
        let n: usize = batch_results.iter().map(Vec::len).sum();
        assert_eq!(n, total_results, "batch must answer like the loop");
        let qps = query_sketches.len() as f64 / (t_batch / 1000.0);
        load_lines.push(format!(
            "batch: {} queries in {t_batch:.1} ms ({qps:.0} queries/s, {query_threads} threads)",
            query_sketches.len()
        ));
        extra.push_str(&format!(
            ",\"batch_total_ms\":{t_batch:.3},\"batch_queries_per_sec\":{qps:.1}"
        ));
    }

    let s = LatencySummary::of(&latencies);
    let under = |ms: f64| {
        latencies.iter().filter(|&&t| t < ms).count() as f64 / latencies.len() as f64 * 100.0
    };
    let mean_results = total_results as f64 / latencies.len().max(1) as f64;

    // One machine-readable object: printed on stdout under `--json true`
    // and/or written as a `BENCH_query_latency.json` artifact under
    // `--out`, so CI / scripts can diff the perf trajectory across PRs.
    let obj = format!(
        "{{\"bench\":\"query_latency\",\"tables\":{tables},\
         \"sketches\":{},\"distinct_keys\":{},\"sketch_size\":{sketch_size},\
         \"candidates\":{candidates},\"k\":{k},\"query_threads\":{query_threads},\
         \"with_reports\":{with_reports},\"queries\":{},\
         \"index_build_ms\":{t_index:.3},\"mean_ms\":{:.4},\"p50_ms\":{:.4},\
         \"p75_ms\":{:.4},\"p90_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4},\
         \"p999_ms\":{:.4},\
         \"under_100ms_pct\":{:.2},\"under_200ms_pct\":{:.2},\
         \"mean_results_per_query\":{mean_results:.2}{extra}}}",
        index.len(),
        index.distinct_keys(),
        latencies.len(),
        s.mean,
        s.p50,
        s.p75,
        s.p90,
        s.p95,
        s.p99,
        s.p999,
        under(100.0),
        under(200.0),
    );
    if let Some(out) = args.get("out") {
        let path = artifact::write_artifact(out, "query_latency", &obj).expect("write artifact");
        eprintln!("query_latency: wrote {}", path.display());
    }
    if json {
        println!("{obj}");
        return;
    }

    println!(
        "\nSection 5.5 — query evaluation latency ({} queries)",
        latencies.len()
    );
    println!("mean      : {:>10.3} ms", s.mean);
    println!("p50       : {:>10.3} ms", s.p50);
    println!("p75       : {:>10.3} ms", s.p75);
    println!("p90       : {:>10.3} ms", s.p90);
    println!("p95       : {:>10.3} ms", s.p95);
    println!("p99       : {:>10.3} ms", s.p99);
    println!("p99.9     : {:>10.3} ms", s.p999);
    println!("< 100 ms  : {:>9.1}%  (paper: 94%)", under(100.0));
    println!("< 200 ms  : {:>9.1}%  (paper: ~98.5%)", under(200.0));
    println!("mean results per query: {mean_results:.1}");
    for line in &load_lines {
        println!("{line}");
    }
}
