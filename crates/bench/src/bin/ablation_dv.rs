//! **Ablation: distinct-value sketch families** — KMV (what Correlation
//! Sketches builds on) vs. HyperLogLog (better accuracy per bit, but
//! unable to support join-correlation estimation; paper Sections 2.1/6).
//!
//! At matched memory budgets, compare cardinality-estimate accuracy. The
//! point the paper makes — and this binary demonstrates empirically — is
//! that KMV pays a constant-factor accuracy premium *in exchange for
//! retaining key identifiers and values*, which is precisely what makes
//! sketch joins (and therefore correlation estimates) possible at all.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin ablation_dv -- --trials 20
//! ```

use correlation_sketches::{distinct_value_estimate, HyperLogLog, SketchBuilder, SketchConfig};
use sketch_bench::Args;
use sketch_hashing::TupleHasher;
use sketch_table::ColumnPair;

fn relative_errors(estimates: &[f64], truth: f64) -> (f64, f64) {
    let mean_abs =
        estimates.iter().map(|e| (e - truth).abs()).sum::<f64>() / estimates.len() as f64 / truth;
    let rmse = (estimates
        .iter()
        .map(|e| ((e - truth) / truth).powi(2))
        .sum::<f64>()
        / estimates.len() as f64)
        .sqrt();
    (mean_abs, rmse)
}

fn main() {
    let args = Args::from_env();
    let trials = args.get_or("trials", 20usize);
    let cardinality = args.get_or("cardinality", 200_000usize);

    eprintln!("ablation_dv: trials={trials} cardinality={cardinality}");

    // Matched memory budgets: a KMV entry is 16 bytes (key hash + value),
    // an HLL register is 1 byte.
    let budgets = [(256usize, 12u8), (1024, 14), (4096, 16)];

    println!(
        "{:<8} {:<22} {:>10} {:>12} {:>12}",
        "bytes", "sketch", "theory SE", "mean |err|", "rel RMSE"
    );
    for (kmv_n, hll_p) in budgets {
        let bytes = kmv_n * 16;
        let mut kmv_ests = Vec::with_capacity(trials);
        let mut hll_ests = Vec::with_capacity(trials);
        for t in 0..trials as u64 {
            let hasher = TupleHasher::new_64(t);
            let pair = ColumnPair::new(
                "t",
                "k",
                "v",
                (0..cardinality).map(|i| format!("key-{i}")).collect(),
                (0..cardinality).map(|i| i as f64).collect(),
            );
            let kmv =
                SketchBuilder::new(SketchConfig::with_size(kmv_n).hasher(hasher)).build(&pair);
            kmv_ests.push(distinct_value_estimate(&kmv));

            let mut hll = HyperLogLog::new(hll_p, hasher);
            for k in &pair.keys {
                hll.insert(k.as_bytes());
            }
            hll_ests.push(hll.estimate());
        }
        let truth = cardinality as f64;
        let (kmv_mae, kmv_rmse) = relative_errors(&kmv_ests, truth);
        let (hll_mae, hll_rmse) = relative_errors(&hll_ests, truth);
        let kmv_theory = 1.0 / ((kmv_n as f64) - 2.0).sqrt();
        let hll_theory = 1.04 / ((1u64 << hll_p) as f64).sqrt();
        println!(
            "{:<8} {:<22} {:>10.4} {:>12.4} {:>12.4}",
            bytes,
            format!("kmv(n={kmv_n})"),
            kmv_theory,
            kmv_mae,
            kmv_rmse
        );
        println!(
            "{:<8} {:<22} {:>10.4} {:>12.4} {:>12.4}",
            (1usize << hll_p),
            format!("hll(p={hll_p})"),
            hll_theory,
            hll_mae,
            hll_rmse
        );
    }
    println!(
        "\nExpected shape: HLL's error per byte is lower (the paper's §6 \
         remark), but only KMV-family sketches retain the ⟨h(k), x_k⟩ \
         samples that sketch joins — and hence join-correlation queries — \
         require."
    );
}
