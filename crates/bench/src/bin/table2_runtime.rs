//! **Table 2** — running times (ms) for computing joins and correlations
//! using the full data vs. the sketches.
//!
//! Columns: full-data join, full-data Spearman (`r_s`), full-data Pearson
//! (`r_p`), sketch join, sketch Pearson, sketch Spearman. Rows: mean,
//! std-dev, p75, p90, p99, p99.9.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin table2_runtime -- \
//!     --dataset nyc --scale 200 --max-pairs 800 --sketch-size 1024
//! ```
//!
//! Paper reference points: sketch operations are orders of magnitude
//! faster than full-data operations and — because sketch size is fixed —
//! have far smaller tail percentiles (predictable latency).

use correlation_sketches::{join_sketches, CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, time_ms, Args, CorpusChoice, LatencySummary};
use sketch_stats::{pearson, spearman};
use sketch_table::{exact_join, Aggregation};

fn main() {
    let args = Args::from_env();
    let dataset: CorpusChoice = args
        .get("dataset")
        .unwrap_or("nyc")
        .parse()
        .expect("--dataset sbn|wbf|nyc");
    let scale = args.get_or("scale", 200usize);
    let max_pairs = args.get_or("max-pairs", 800usize);
    let sketch_size = args.get_or("sketch-size", 1024usize);
    let seed = args.get_or("seed", 0x7ab2u64);

    eprintln!(
        "table2: dataset={dataset} scale={scale} max_pairs={max_pairs} sketch_size={sketch_size}"
    );

    let pairs = corpus_pairs(dataset, scale, seed, max_pairs);
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));

    // Pre-build sketches: construction is an offline indexing cost, not a
    // query-time cost (the paper's comparison is join+estimate).
    let sketches: Vec<(CorrelationSketch, CorrelationSketch)> = pairs
        .iter()
        .map(|(a, b)| (builder.build(a), builder.build(b)))
        .collect();

    let mut full_join = Vec::new();
    let mut full_rp = Vec::new();
    let mut full_rs = Vec::new();
    let mut sk_join = Vec::new();
    let mut sk_rp = Vec::new();
    let mut sk_rs = Vec::new();

    for ((a, b), (sa, sb)) in pairs.iter().zip(&sketches) {
        let (joined, t_join) = time_ms(|| exact_join(a, b, Aggregation::Mean));
        full_join.push(t_join);
        if joined.len() >= 3 {
            let (_, t_rp) = time_ms(|| pearson(&joined.x, &joined.y));
            let (_, t_rs) = time_ms(|| spearman(&joined.x, &joined.y));
            full_rp.push(t_rp);
            full_rs.push(t_rs);
        }

        let (sample, t_sj) = time_ms(|| join_sketches(sa, sb).expect("same hasher"));
        sk_join.push(t_sj);
        if sample.len() >= 3 {
            let (_, t_rp) = time_ms(|| pearson(&sample.x, &sample.y));
            let (_, t_rs) = time_ms(|| spearman(&sample.x, &sample.y));
            sk_rp.push(t_rp);
            sk_rs.push(t_rs);
        }
    }

    println!(
        "\nTable 2 — running times in milliseconds ({} pairs)",
        pairs.len()
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "full join", "full r_s", "full r_p", "sk join", "sk r_p", "sk r_s"
    );
    type Extract = fn(&LatencySummary) -> f64;
    let rows: [(&str, Extract); 6] = [
        ("mean", |s| s.mean),
        ("std. dev.", |s| s.std_dev),
        ("75%", |s| s.p75),
        ("90%", |s| s.p90),
        ("99%", |s| s.p99),
        ("99.9%", |s| s.p999),
    ];
    let summaries = [
        LatencySummary::of(&full_join),
        LatencySummary::of(&full_rs),
        LatencySummary::of(&full_rp),
        LatencySummary::of(&sk_join),
        LatencySummary::of(&sk_rp),
        LatencySummary::of(&sk_rs),
    ];
    for (label, extract) in rows {
        print!("{label:<12}");
        for s in &summaries {
            print!(" {:>12.4}", extract(s));
        }
        println!();
    }
    println!(
        "\nExpected shape (paper Table 2): sketch columns orders of magnitude \
         below full-data columns, with much flatter tails (fixed sketch size \
         ⇒ predictable latency)."
    );
}
