//! **Table 1** — ranking quality of the scoring functions: MAP at
//! relevance thresholds `r > 0.75` and `r > 0.50`, and nDCG@5 / nDCG@10,
//! with relative improvement over the `jc` (Jaccard containment)
//! baseline.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin table1_ranking -- \
//!     --tables 200 --queries 60 --sketch-size 256
//! ```
//!
//! Paper reference points (NYC): all correlation-based scorers improve
//! 15–193% over `jc` depending on the metric; `jc`/`ĵc` are close to
//! `random`; `rp*cih` is best or near-best at MAP(0.75).

use sketch_bench::Args;
use sketch_datagen::{generate_open_data, split_corpus, OpenDataConfig};
use sketch_ranking::{run_ranking_experiment, RankingConfig, ScoringFunction};

fn main() {
    let args = Args::from_env();
    let tables = args.get_or("tables", 200usize);
    let queries = args.get_or("queries", 60usize);
    let sketch_size = args.get_or("sketch-size", 256usize);
    let seed = args.get_or("seed", 0x7ab1u64);

    eprintln!("table1: tables={tables} queries={queries} sketch_size={sketch_size} seed={seed}");

    let corpus_tables = generate_open_data(&OpenDataConfig {
        tables,
        ..OpenDataConfig::nyc(seed)
    });
    let mut split = split_corpus(&corpus_tables, 0.25, seed);
    split.queries.truncate(queries);
    eprintln!(
        "query set: {} pairs, corpus set: {} pairs",
        split.queries.len(),
        split.corpus.len()
    );

    let cfg = RankingConfig {
        sketch_size,
        seed,
        ..RankingConfig::default()
    };
    let report = run_ranking_experiment(&split.queries, &split.corpus, &cfg);
    eprintln!(
        "queries with joinable candidates: {}",
        report.per_query.len()
    );

    let summaries = report.summaries();
    let jc = summaries
        .iter()
        .find(|s| s.scorer == ScoringFunction::Jc)
        .copied()
        .expect("jc baseline present");

    type Extract = fn(&sketch_ranking::evaluation::ScorerSummary) -> f64;
    let sections: [(&str, Extract); 4] = [
        ("(a) MAP (r > .75)", |s| s.map_high),
        ("(b) MAP (r > .50)", |s| s.map_mid),
        ("(c) nDCG@5", |s| s.ndcg_a),
        ("(d) nDCG@10", |s| s.ndcg_b),
    ];

    for (title, extract) in sections {
        println!("\nTable 1{title}");
        println!("{:<10} {:>8} {:>9}", "ranker", "score", "%");
        let mut rows: Vec<(&str, f64)> = summaries
            .iter()
            .map(|s| (s.scorer.name(), extract(s)))
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let base = extract(&jc);
        for (name, score) in rows {
            let pct = if base > 0.0 {
                (score - base) / base * 100.0
            } else {
                0.0
            };
            println!("{name:<10} {score:>8.3} {pct:>8.1}%");
        }
    }

    println!(
        "\nExpected shape (paper Table 1): every correlation-based scorer \
         (rp, rp*sez, rb*cib, rp*cih) far above jc/jc_est/random; jc within \
         noise of random; risk-penalized scorers at or above plain rp for \
         MAP(r > .75)."
    );
}
