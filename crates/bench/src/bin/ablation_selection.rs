//! **Ablation: tuple-selection strategy** — fixed-size (the paper's
//! choice) vs. threshold/G-KMV-style sketches at matched expected memory.
//!
//! The paper (Sections 3.3, 6) argues fixed-size sketches give
//! predictable space and latency, while threshold sketches spend space
//! proportional to column cardinality; exploring the trade-off is listed
//! as future work. This binary compares estimation RMSE and realized
//! sketch sizes at matched memory budgets.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin ablation_selection -- --scale 200
//! ```

use correlation_sketches::{join_sketches, SelectionStrategy, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, Args, CorpusChoice};
use sketch_stats::{rmse, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation};

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 200usize);
    let max_pairs = args.get_or("max-pairs", 1_500usize);
    let seed = args.get_or("seed", 0xab1u64);
    let budget = args.get_or("budget", 256usize); // target tuples per sketch

    eprintln!("ablation_selection: scale={scale} max_pairs={max_pairs} budget={budget}");
    let pairs = corpus_pairs(CorpusChoice::Nyc, scale, seed, max_pairs);

    // Median distinct-key count calibrates the threshold so both
    // strategies spend roughly the same expected memory.
    let mut distincts: Vec<usize> = pairs
        .iter()
        .flat_map(|(a, b)| [a.distinct_keys(), b.distinct_keys()])
        .collect();
    distincts.sort_unstable();
    let median_d = distincts[distincts.len() / 2].max(1);
    let threshold = (budget as f64 / median_d as f64).min(1.0);
    eprintln!("median distinct keys: {median_d}; matched threshold t = {threshold:.4}");

    let strategies = [
        SelectionStrategy::FixedSize(budget),
        SelectionStrategy::Threshold(threshold),
    ];

    println!(
        "{:<22} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "strategy", "pairs", "med size", "max size", "med join", "RMSE"
    );
    for strat in strategies {
        let cfg = SketchConfig {
            strategy: strat,
            ..SketchConfig::with_size(budget)
        };
        let builder = SketchBuilder::new(cfg);

        let mut sizes = Vec::new();
        let mut joins = Vec::new();
        let mut ests = Vec::new();
        let mut truths = Vec::new();
        for (a, b) in &pairs {
            let joined = exact_join(a, b, Aggregation::Mean);
            if joined.len() < 3 {
                continue;
            }
            let Ok(truth) = sketch_stats::pearson(&joined.x, &joined.y) else {
                continue;
            };
            let (sa, sb) = (builder.build(a), builder.build(b));
            sizes.push(sa.len());
            sizes.push(sb.len());
            let Ok(sample) = join_sketches(&sa, &sb) else {
                continue;
            };
            if sample.len() < 3 {
                continue;
            }
            joins.push(sample.len());
            if let Ok(est) = sample.estimate(CorrelationEstimator::Pearson) {
                ests.push(est);
                truths.push(truth);
            }
        }
        sizes.sort_unstable();
        joins.sort_unstable();
        let med = |v: &[usize]| v.get(v.len() / 2).copied().unwrap_or(0);
        println!(
            "{:<22} {:>7} {:>10} {:>10} {:>10} {:>9.4}",
            strat.describe(),
            ests.len(),
            med(&sizes),
            sizes.last().copied().unwrap_or(0),
            med(&joins),
            rmse(&ests, &truths)
        );
    }
    println!(
        "\nExpected shape: comparable RMSE at matched budgets, but the \
         threshold strategy's realized sizes vary with column cardinality \
         (unpredictable memory/latency), which is why the paper fixes the \
         sketch size."
    );
}
