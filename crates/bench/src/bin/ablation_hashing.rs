//! **Ablation: hash configuration** — the paper's 32-bit MurmurHash3
//! setup vs. this crate's 64-bit default, at corpus scale.
//!
//! With 32-bit identifiers, distinct keys start colliding around the
//! birthday bound (~65k keys); a collision merges two unrelated keys'
//! aggregates and can pair unrelated values in joins. This ablation
//! measures whether that is visible in estimate accuracy at realistic
//! column cardinalities.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin ablation_hashing -- --scale 150
//! ```

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, Args, CorpusChoice};
use sketch_hashing::TupleHasher;
use sketch_stats::{rmse, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation};

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 150usize);
    let max_pairs = args.get_or("max-pairs", 1_200usize);
    let sketch_size = args.get_or("sketch-size", 256usize);
    let seed = args.get_or("seed", 0xab4u64);

    eprintln!("ablation_hashing: scale={scale} max_pairs={max_pairs} k={sketch_size}");
    let pairs = corpus_pairs(CorpusChoice::Nyc, scale, seed, max_pairs);

    let configs = [
        ("murmur3-64", TupleHasher::new_64(0)),
        ("murmur3-32 (paper)", TupleHasher::paper_32(0)),
    ];

    println!(
        "{:<20} {:>7} {:>9} {:>11}",
        "hasher", "pairs", "RMSE", "med join"
    );
    for (name, hasher) in configs {
        let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size).hasher(hasher));
        let mut ests = Vec::new();
        let mut truths = Vec::new();
        let mut joins = Vec::new();
        for (a, b) in &pairs {
            let joined = exact_join(a, b, Aggregation::Mean);
            if joined.len() < 3 {
                continue;
            }
            let Ok(truth) = sketch_stats::pearson(&joined.x, &joined.y) else {
                continue;
            };
            let Ok(sample) = join_sketches(&builder.build(a), &builder.build(b)) else {
                continue;
            };
            if sample.len() < 3 {
                continue;
            }
            joins.push(sample.len());
            if let Ok(est) = sample.estimate(CorrelationEstimator::Pearson) {
                ests.push(est);
                truths.push(truth);
            }
        }
        joins.sort_unstable();
        println!(
            "{:<20} {:>7} {:>9.4} {:>11}",
            name,
            ests.len(),
            rmse(&ests, &truths),
            joins.get(joins.len() / 2).copied().unwrap_or(0)
        );
    }
    println!(
        "\nExpected shape: near-identical accuracy at these cardinalities \
         (collisions are rare below the 32-bit birthday bound); 64-bit \
         identifiers remove the corpus-size ceiling at 2x entry size."
    );
}
