//! **Ablation: repeated-key aggregation** — how the choice of aggregate
//! function (mean/sum/min/max/first/last/count) affects sketch estimate
//! accuracy relative to the matching ground truth.
//!
//! The paper's synopsis is agnostic to the aggregation (Section 3.1); the
//! invariant this ablation demonstrates is that the sketch estimates the
//! correlation of the *aggregated* join regardless of which function the
//! application picks — i.e. accuracy should be similar across functions.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin ablation_aggregation -- --scale 150
//! ```

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{corpus_pairs, Args, CorpusChoice};
use sketch_stats::{rmse, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation};

fn main() {
    let args = Args::from_env();
    let scale = args.get_or("scale", 150usize);
    let max_pairs = args.get_or("max-pairs", 1_000usize);
    let sketch_size = args.get_or("sketch-size", 256usize);
    let seed = args.get_or("seed", 0xab2u64);

    eprintln!("ablation_aggregation: scale={scale} max_pairs={max_pairs} k={sketch_size}");
    // NYC-like data has Zipf-repeated keys, so aggregation genuinely
    // matters here.
    let pairs = corpus_pairs(CorpusChoice::Nyc, scale, seed, max_pairs);

    println!(
        "{:<8} {:>7} {:>9} {:>12}",
        "agg", "pairs", "RMSE", "mean |err|"
    );
    for agg in Aggregation::ALL {
        let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size).aggregation(agg));
        let mut ests = Vec::new();
        let mut truths = Vec::new();
        for (a, b) in &pairs {
            let joined = exact_join(a, b, agg);
            if joined.len() < 10 {
                continue;
            }
            let Ok(truth) = sketch_stats::pearson(&joined.x, &joined.y) else {
                continue;
            };
            let Ok(sample) = join_sketches(&builder.build(a), &builder.build(b)) else {
                continue;
            };
            if sample.len() < 10 {
                continue;
            }
            if let Ok(est) = sample.estimate(CorrelationEstimator::Pearson) {
                ests.push(est);
                truths.push(truth);
            }
        }
        let mean_abs = if ests.is_empty() {
            0.0
        } else {
            ests.iter()
                .zip(&truths)
                .map(|(e, t)| (e - t).abs())
                .sum::<f64>()
                / ests.len() as f64
        };
        println!(
            "{:<8} {:>7} {:>9.4} {:>12.4}",
            agg.name(),
            ests.len(),
            rmse(&ests, &truths),
            mean_abs
        );
    }
    println!(
        "\nExpected shape: similar accuracy for every aggregate function — \
         the sketch is agnostic to the aggregation because it applies the \
         same function the ground truth uses, in-stream."
    );
}
