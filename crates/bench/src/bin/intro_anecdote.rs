//! **Section 1 anecdote** — "joining a dataset on taxi pickups (~1 GB)
//! with a dataset on precipitation (~3 MB) took about 29 seconds and
//! computing the Spearman's coefficient … took about 5 seconds".
//!
//! We reproduce the *shape* at configurable scale: one large taxi-like
//! table joined with a small weather-like table, full pipeline vs. sketch
//! pipeline.
//!
//! ```text
//! cargo run --release -p sketch-bench --bin intro_anecdote -- --rows 2000000
//! ```

use correlation_sketches::{join_sketches, SketchBuilder, SketchConfig};
use sketch_bench::{time_ms, Args};
use sketch_datagen::Dist;
use sketch_stats::{pearson, spearman, CorrelationEstimator};
use sketch_table::{exact_join, Aggregation, ColumnPair};

fn main() {
    let args = Args::from_env();
    let rows = args.get_or("rows", 2_000_000usize);
    let days = args.get_or("days", 1_500usize);
    let sketch_size = args.get_or("sketch-size", 1024usize);
    let seed = args.get_or("seed", 0x1a_1au64);

    eprintln!("intro: taxi rows={rows}, weather days={days}, sketch_size={sketch_size}");

    // Taxi-like table: many trip rows per day key; pickups correlate with
    // a latent per-day demand factor.
    let mut d = Dist::seeded(seed);
    let demand: Vec<f64> = (0..days).map(|_| d.normal() * 2.0 + 10.0).collect();
    let day_key = |i: usize| format!("2021-{:04}", i);

    let mut taxi_keys = Vec::with_capacity(rows);
    let mut taxi_vals = Vec::with_capacity(rows);
    for _ in 0..rows {
        let day = d.index(days);
        taxi_keys.push(day_key(day));
        taxi_vals.push((demand[day] + d.normal()).max(0.0));
    }
    let taxi = ColumnPair::new("taxi", "day", "pickups", taxi_keys, taxi_vals);

    // Weather-like table: one row per day; precipitation correlated with
    // the same latent demand (negatively — rain suppresses pickups).
    let weather = ColumnPair::new(
        "weather",
        "day",
        "precipitation",
        (0..days).map(day_key).collect(),
        (0..days)
            .map(|i| (-0.8 * demand[i] + 12.0 + 0.3 * d.normal()).max(0.0))
            .collect(),
    );

    // Full-data pipeline.
    let (joined, t_join) = time_ms(|| exact_join(&taxi, &weather, Aggregation::Mean));
    let (r_full, t_rp) = time_ms(|| pearson(&joined.x, &joined.y).unwrap());
    let (rs_full, t_rs) = time_ms(|| spearman(&joined.x, &joined.y).unwrap());

    // Sketch pipeline (construction shown separately: it is a one-time
    // indexing cost amortized over all future queries).
    let builder = SketchBuilder::new(SketchConfig::with_size(sketch_size));
    let (sk_taxi, t_build_big) = time_ms(|| builder.build(&taxi));
    let (sk_weather, t_build_small) = time_ms(|| builder.build(&weather));
    let (sample, t_sk_join) = time_ms(|| join_sketches(&sk_taxi, &sk_weather).unwrap());
    let (r_sk, t_sk_rp) = time_ms(|| sample.estimate(CorrelationEstimator::Pearson).unwrap());
    let (rs_sk, t_sk_rs) = time_ms(|| sample.estimate(CorrelationEstimator::Spearman).unwrap());

    println!(
        "\nfull data: join of {rows} x {days} rows -> {} joined days",
        joined.len()
    );
    println!("  join            : {t_join:>10.1} ms");
    println!("  pearson         : {t_rp:>10.3} ms  (r = {r_full:.3})");
    println!("  spearman        : {t_rs:>10.3} ms  (r = {rs_full:.3})");
    println!(
        "\nsketch (size {sketch_size}): join sample = {} rows",
        sample.len()
    );
    println!("  build (1-time)  : {t_build_big:>10.1} ms + {t_build_small:.1} ms");
    println!("  sketch join     : {t_sk_join:>10.3} ms");
    println!("  pearson         : {t_sk_rp:>10.3} ms  (r = {r_sk:.3})");
    println!("  spearman        : {t_sk_rs:>10.3} ms  (r = {rs_sk:.3})");
    println!(
        "\nspeedup at query time: {:.0}x (join) / {:.0}x (join+spearman)",
        t_join / t_sk_join.max(1e-6),
        (t_join + t_rs) / (t_sk_join + t_sk_rs).max(1e-6)
    );
    println!(
        "estimate error: pearson {:+.3}, spearman {:+.3}",
        r_sk - r_full,
        rs_sk - rs_full
    );
}
