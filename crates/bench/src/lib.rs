//! Shared plumbing for the experiment binaries (one per paper
//! table/figure — see `src/bin/` and EXPERIMENTS.md at the workspace
//! root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod artifact;
pub mod corpus;
pub mod shard;
pub mod timing;

pub use args::Args;
pub use artifact::write_artifact;
pub use corpus::{corpus_pairs, CorpusChoice};
pub use shard::{ShardCluster, ShardReplay};
pub use timing::{percentile, time_ms, LatencySummary};
