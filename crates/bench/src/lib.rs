//! Shared plumbing for the experiment binaries (one per paper
//! table/figure — see `src/bin/` and EXPERIMENTS.md at the workspace
//! root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod corpus;
pub mod timing;

pub use args::Args;
pub use corpus::{corpus_pairs, CorpusChoice};
pub use timing::{percentile, time_ms, LatencySummary};
