//! Minimal RFC-4180 CSV parsing with type inference.
//!
//! The paper stored its corpus snapshots "in plain CSV text files" and used
//! the Tablesaw library "to automatically parse and detect the basic data
//! types for each column" (Section 5.1). This module is our stand-in:
//! quoted fields, embedded commas/newlines/escaped quotes, and a simple
//! numeric-majority type-inference rule.

/// CSV parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the field started.
        line: usize,
    },
    /// A record has a different number of fields than the header.
    RaggedRow {
        /// 1-based record number.
        row: usize,
        /// Fields found in the record.
        got: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// Input contained no records at all.
    Empty,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            Self::RaggedRow { row, got, expected } => {
                write!(f, "row {row} has {got} fields, expected {expected}")
            }
            Self::Empty => write!(f, "empty CSV input"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parse CSV text into records of string fields (RFC 4180: `"`-quoted
/// fields may contain commas, newlines, and doubled quotes).
///
/// # Errors
///
/// [`CsvError::UnterminatedQuote`] if a quote is left open, and
/// [`CsvError::Empty`] for input with no records.
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut quote_start_line = 1usize;
    let mut line = 1usize;
    let mut any_char = false;

    while let Some(c) = chars.next() {
        any_char = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_start_line = line;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Swallow \r of \r\n; a bare \r also terminates the record.
                if chars.peek() == Some(&'\n') {
                    chars.next();
                }
                line += 1;
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            '\n' => {
                line += 1;
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_start_line,
        });
    }
    // Final record without trailing newline.
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    if !any_char || records.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(records)
}

/// Tokens treated as missing values during type inference.
pub(crate) fn is_missing(s: &str) -> bool {
    let t = s.trim();
    t.is_empty()
        || t.eq_ignore_ascii_case("na")
        || t.eq_ignore_ascii_case("n/a")
        || t.eq_ignore_ascii_case("null")
        || t.eq_ignore_ascii_case("nan")
        || t == "-"
}

/// Try to parse a CSV field as a finite number (allows thousands
/// separators and a leading `$`, which the World Bank monetary columns
/// use).
pub(crate) fn parse_number(s: &str) -> Option<f64> {
    let t = s.trim().trim_start_matches('$');
    let cleaned: String = if t.contains(',') {
        t.replace(',', "")
    } else {
        t.to_string()
    };
    cleaned.parse::<f64>().ok().filter(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_rows() {
        let rows = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["3", "4"]);
    }

    #[test]
    fn quoted_fields_with_commas_and_newlines() {
        let rows = parse_csv("name,notes\n\"Smith, J.\",\"line1\nline2\"\n").unwrap();
        assert_eq!(rows[1][0], "Smith, J.");
        assert_eq!(rows[1][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let rows = parse_csv("a\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rows[1][0], "he said \"hi\"");
    }

    #[test]
    fn crlf_line_endings() {
        let rows = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn missing_trailing_newline() {
        let rows = parse_csv("a,b\n1,2").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn empty_fields_preserved() {
        let rows = parse_csv("a,,c\n,,\n").unwrap();
        assert_eq!(rows[0], vec!["a", "", "c"]);
        assert_eq!(rows[1], vec!["", "", ""]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        assert_eq!(
            parse_csv("a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { line: 2 })
        );
    }

    #[test]
    fn empty_input_is_error() {
        assert_eq!(parse_csv(""), Err(CsvError::Empty));
    }

    #[test]
    fn missing_tokens() {
        for t in ["", "  ", "NA", "n/a", "NULL", "NaN", "-"] {
            assert!(is_missing(t), "{t:?}");
        }
        assert!(!is_missing("0"));
        assert!(!is_missing("none at all"));
    }

    #[test]
    fn number_parsing() {
        assert_eq!(parse_number("42"), Some(42.0));
        assert_eq!(parse_number(" -3.5 "), Some(-3.5));
        assert_eq!(parse_number("$1,234,567.89"), Some(1_234_567.89));
        assert_eq!(parse_number("1e6"), Some(1e6));
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number("inf"), None);
    }
}
