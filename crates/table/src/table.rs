//! The multi-column table model and `⟨K, X⟩` column-pair extraction.

use crate::column::{ColumnData, NamedColumn};
use crate::csv::{is_missing, parse_csv, parse_number, CsvError};
use crate::pair::ColumnPair;

/// Fraction of non-missing values that must parse as numbers for a CSV
/// column to be typed numeric.
const NUMERIC_MAJORITY: f64 = 0.8;

/// A named table: a collection of equal-length named columns.
///
/// Mirrors the paper's data model — each table contributes all its
/// `(categorical, numeric)` column combinations as sketchable
/// [`ColumnPair`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table (dataset) name.
    pub name: String,
    columns: Vec<NamedColumn>,
    rows: usize,
}

impl Table {
    /// Build a table from columns.
    ///
    /// # Panics
    ///
    /// Panics if columns have differing lengths or duplicate names
    /// (programmer error in corpus construction).
    #[must_use]
    pub fn from_columns(name: impl Into<String>, columns: Vec<NamedColumn>) -> Self {
        let rows = columns.first().map_or(0, |c| c.data.len());
        for c in &columns {
            assert_eq!(c.data.len(), rows, "ragged column '{}'", c.name);
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate column names");
        Self {
            name: name.into(),
            columns,
            rows,
        }
    }

    /// Parse a table from CSV text. The first record is the header. Column
    /// types are inferred: a column whose non-missing values are mostly
    /// (≥ 80%) numeric becomes numeric, everything else categorical.
    ///
    /// # Errors
    ///
    /// Propagates [`CsvError`]s; ragged records yield
    /// [`CsvError::RaggedRow`].
    pub fn from_csv(name: impl Into<String>, text: &str) -> Result<Self, CsvError> {
        let records = parse_csv(text)?;
        let (header, body) = records.split_first().ok_or(CsvError::Empty)?;
        let width = header.len();
        for (i, rec) in body.iter().enumerate() {
            if rec.len() != width {
                return Err(CsvError::RaggedRow {
                    row: i + 2,
                    got: rec.len(),
                    expected: width,
                });
            }
        }

        let mut columns = Vec::with_capacity(width);
        for (ci, col_name) in header.iter().enumerate() {
            let raw: Vec<&str> = body.iter().map(|rec| rec[ci].as_str()).collect();
            let non_missing = raw.iter().filter(|s| !is_missing(s)).count();
            let numeric = raw
                .iter()
                .filter(|s| !is_missing(s) && parse_number(s).is_some())
                .count();
            let is_numeric =
                non_missing > 0 && numeric as f64 >= NUMERIC_MAJORITY * non_missing as f64;
            let data = if is_numeric {
                ColumnData::Numeric(
                    raw.iter()
                        .map(|s| if is_missing(s) { None } else { parse_number(s) })
                        .collect(),
                )
            } else {
                ColumnData::Categorical(
                    raw.iter()
                        .map(|s| (!is_missing(s)).then(|| (*s).to_string()))
                        .collect(),
                )
            };
            columns.push(NamedColumn {
                name: col_name.clone(),
                data,
            });
        }
        Ok(Self::from_columns(name, columns))
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// All columns.
    #[must_use]
    pub fn columns(&self) -> &[NamedColumn] {
        &self.columns
    }

    /// Look up a column by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&NamedColumn> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Names of the categorical columns (join-key candidates).
    #[must_use]
    pub fn categorical_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.data.is_categorical())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Names of the numeric columns (correlation candidates).
    #[must_use]
    pub fn numeric_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.data.is_numeric())
            .map(|c| c.name.as_str())
            .collect()
    }

    /// Extract one `⟨K, X⟩` pair by column names, dropping rows where
    /// either side is null. `None` if the columns are missing or of the
    /// wrong type.
    #[must_use]
    pub fn column_pair(&self, key_name: &str, value_name: &str) -> Option<ColumnPair> {
        let key_col = self.column(key_name)?;
        let val_col = self.column(value_name)?;
        let (ColumnData::Categorical(keys), ColumnData::Numeric(vals)) =
            (&key_col.data, &val_col.data)
        else {
            return None;
        };
        let mut out_keys = Vec::new();
        let mut out_vals = Vec::new();
        for (k, v) in keys.iter().zip(vals) {
            if let (Some(k), Some(v)) = (k, v) {
                out_keys.push(k.clone());
                out_vals.push(*v);
            }
        }
        Some(ColumnPair::new(
            self.name.clone(),
            key_name,
            value_name,
            out_keys,
            out_vals,
        ))
    }

    /// Render the table back to RFC-4180 CSV (header row first, fields
    /// quoted when needed, nulls as empty fields). Round-trips through
    /// [`Table::from_csv`] up to type inference.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| quote(&c.name)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in 0..self.rows {
            let mut first = true;
            for col in &self.columns {
                if !first {
                    out.push(',');
                }
                first = false;
                match &col.data {
                    ColumnData::Categorical(v) => {
                        if let Some(s) = &v[row] {
                            out.push_str(&quote(s));
                        }
                    }
                    ColumnData::Numeric(v) => {
                        if let Some(x) = v[row] {
                            out.push_str(&format!("{x}"));
                        }
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// All `(categorical, numeric)` column pairs of this table — the
    /// extraction step of paper Section 5.1 ("from each table, we
    /// extracted all possible pairs of categorical and numerical data
    /// columns"). Pairs that end up empty after null-dropping are skipped.
    #[must_use]
    pub fn column_pairs(&self) -> Vec<ColumnPair> {
        let mut pairs = Vec::new();
        for k in self.categorical_names() {
            for v in self.numeric_names() {
                if let Some(p) = self.column_pair(k, v) {
                    if !p.is_empty() {
                        pairs.push(p);
                    }
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "\
zip,date,pickups,rain
NY-10001,2021-01-01,120,0.0
NY-10001,2021-01-02,95,1.2
NY-10002,2021-01-01,80,0.0
NY-10002,,60,NA
NY-10003,2021-01-02,NA,3.4
";

    #[test]
    fn csv_type_inference() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.categorical_names(), vec!["zip", "date"]);
        assert_eq!(t.numeric_names(), vec!["pickups", "rain"]);
    }

    #[test]
    fn zip_like_strings_of_digits_are_numeric_by_majority_rule() {
        // "zip" parses as numbers — but here it is kept categorical?
        // No: all zip values parse as numbers, so the majority rule types
        // it numeric… unless the header heuristic intervenes. We keep the
        // simple rule; this test pins the behaviour.
        let t = Table::from_csv("t", "zip\n10001\n10002\n").unwrap();
        assert_eq!(t.numeric_names(), vec!["zip"]);
    }

    #[test]
    fn missing_values_become_nulls() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        assert_eq!(t.column("date").unwrap().data.null_count(), 1);
        assert_eq!(t.column("pickups").unwrap().data.null_count(), 1);
        assert_eq!(t.column("rain").unwrap().data.null_count(), 1);
    }

    #[test]
    fn column_pair_drops_rows_with_nulls_on_either_side() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        let p = t.column_pair("date", "pickups").unwrap();
        // Row 4 has null date, row 5 has null pickups → 3 rows remain.
        assert_eq!(p.len(), 3);
        assert_eq!(p.table, "taxi");
        assert_eq!(p.key_name, "date");
        assert_eq!(p.value_name, "pickups");
    }

    #[test]
    fn column_pairs_enumerates_all_combinations() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        let pairs = t.column_pairs();
        // 2 categorical × 2 numeric = 4 combinations, none empty.
        assert_eq!(pairs.len(), 4);
        let ids: Vec<String> = pairs.iter().map(ColumnPair::id).collect();
        assert!(ids.contains(&"taxi/zip/rain".to_string()));
    }

    #[test]
    fn wrong_types_give_none() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        assert!(t.column_pair("pickups", "rain").is_none()); // key not categorical
        assert!(t.column_pair("zip", "date").is_none()); // value not numeric
        assert!(t.column_pair("nope", "rain").is_none());
    }

    #[test]
    fn ragged_rows_error() {
        let err = Table::from_csv("t", "a,b\n1\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { row: 2, .. }));
    }

    #[test]
    #[should_panic(expected = "ragged column")]
    fn ragged_columns_panic() {
        let _ = Table::from_columns(
            "t",
            vec![
                NamedColumn::numeric_dense("a", vec![1.0]),
                NamedColumn::numeric_dense("b", vec![1.0, 2.0]),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let _ = Table::from_columns(
            "t",
            vec![
                NamedColumn::numeric_dense("a", vec![1.0]),
                NamedColumn::numeric_dense("a", vec![2.0]),
            ],
        );
    }

    #[test]
    fn to_csv_roundtrips_through_from_csv() {
        let t = Table::from_csv("taxi", CSV).unwrap();
        let back = Table::from_csv("taxi", &t.to_csv()).unwrap();
        assert_eq!(t.categorical_names(), back.categorical_names());
        assert_eq!(t.numeric_names(), back.numeric_names());
        assert_eq!(t.num_rows(), back.num_rows());
        for (a, b) in t.column_pairs().iter().zip(back.column_pairs().iter()) {
            assert_eq!(a.keys, b.keys);
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn to_csv_quotes_tricky_cells() {
        let t = Table::from_columns(
            "tricky",
            vec![
                NamedColumn::categorical(
                    "k",
                    vec![Some("a,b".into()), Some("say \"hi\"".into()), None],
                ),
                NamedColumn::numeric("v", vec![Some(1.5), None, Some(-3.0)]),
            ],
        );
        let csv = t.to_csv();
        let back = Table::from_csv("tricky", &csv).unwrap();
        let ColumnData::Categorical(keys) = &back.column("k").unwrap().data else {
            panic!("k must stay categorical");
        };
        assert_eq!(keys[0].as_deref(), Some("a,b"));
        assert_eq!(keys[1].as_deref(), Some("say \"hi\""));
        assert_eq!(keys[2], None);
    }

    #[test]
    fn monetary_columns_parse() {
        let t = Table::from_csv("wbf", "country,amount\nBR,\"$1,234.50\"\nUS,$99\n").unwrap();
        assert_eq!(t.numeric_names(), vec!["amount"]);
        let p = t.column_pair("country", "amount").unwrap();
        assert_eq!(p.values, vec![1234.5, 99.0]);
    }
}
