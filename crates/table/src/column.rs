//! Nullable column storage: categorical (join-key candidates) and numeric
//! (correlation candidates).

use sketch_stats::Moments;

/// Column payload. Missing values are represented as `None`, mirroring the
/// missing data the paper reports in the World Bank Finances collection.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Categorical values — join-key candidates.
    Categorical(Vec<Option<String>>),
    /// Numeric values — correlation candidates.
    Numeric(Vec<Option<f64>>),
}

impl ColumnData {
    /// Number of rows (including nulls).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Categorical(v) => v.len(),
            Self::Numeric(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null entries.
    #[must_use]
    pub fn null_count(&self) -> usize {
        match self {
            Self::Categorical(v) => v.iter().filter(|e| e.is_none()).count(),
            Self::Numeric(v) => v.iter().filter(|e| e.is_none()).count(),
        }
    }

    /// Is this a categorical column?
    #[must_use]
    pub fn is_categorical(&self) -> bool {
        matches!(self, Self::Categorical(_))
    }

    /// Is this a numeric column?
    #[must_use]
    pub fn is_numeric(&self) -> bool {
        matches!(self, Self::Numeric(_))
    }
}

/// A named column inside a [`crate::Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct NamedColumn {
    /// Column name (unique within its table).
    pub name: String,
    /// Column payload.
    pub data: ColumnData,
}

impl NamedColumn {
    /// Construct a categorical column from optional strings.
    #[must_use]
    pub fn categorical(name: impl Into<String>, values: Vec<Option<String>>) -> Self {
        Self {
            name: name.into(),
            data: ColumnData::Categorical(values),
        }
    }

    /// Construct a categorical column from non-null strings.
    #[must_use]
    pub fn categorical_dense<S: Into<String>>(name: impl Into<String>, values: Vec<S>) -> Self {
        Self::categorical(name, values.into_iter().map(|s| Some(s.into())).collect())
    }

    /// Construct a numeric column from optional values.
    #[must_use]
    pub fn numeric(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Self {
            name: name.into(),
            data: ColumnData::Numeric(values),
        }
    }

    /// Construct a numeric column from non-null values.
    #[must_use]
    pub fn numeric_dense(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self::numeric(name, values.into_iter().map(Some).collect())
    }

    /// Summary moments of a numeric column's non-null values; `None` for
    /// categorical columns or all-null numeric columns.
    #[must_use]
    pub fn numeric_moments(&self) -> Option<Moments> {
        match &self.data {
            ColumnData::Numeric(v) => {
                let m: Moments = v.iter().flatten().copied().collect();
                (m.count() > 0).then_some(m)
            }
            ColumnData::Categorical(_) => None,
        }
    }

    /// Number of distinct non-null categorical values; `None` for numeric
    /// columns.
    #[must_use]
    pub fn distinct_categorical(&self) -> Option<usize> {
        match &self.data {
            ColumnData::Categorical(v) => {
                let mut set: Vec<&str> = v.iter().flatten().map(String::as_str).collect();
                set.sort_unstable();
                set.dedup();
                Some(set.len())
            }
            ColumnData::Numeric(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_nulls() {
        let c = NamedColumn::categorical("k", vec![Some("a".into()), None, Some("b".into())]);
        assert_eq!(c.data.len(), 3);
        assert_eq!(c.data.null_count(), 1);
        assert!(c.data.is_categorical());
        assert!(!c.data.is_numeric());
        assert!(!c.data.is_empty());
    }

    #[test]
    fn dense_constructors() {
        let c = NamedColumn::categorical_dense("k", vec!["x", "y"]);
        assert_eq!(c.data.null_count(), 0);
        let n = NamedColumn::numeric_dense("v", vec![1.0, 2.0]);
        assert_eq!(n.data.len(), 2);
        assert!(n.data.is_numeric());
    }

    #[test]
    fn numeric_moments_skip_nulls() {
        let n = NamedColumn::numeric("v", vec![Some(1.0), None, Some(3.0)]);
        let m = n.numeric_moments().unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), Some(2.0));
        assert_eq!(m.min(), Some(1.0));
        assert_eq!(m.max(), Some(3.0));
    }

    #[test]
    fn all_null_numeric_has_no_moments() {
        let n = NamedColumn::numeric("v", vec![None, None]);
        assert!(n.numeric_moments().is_none());
    }

    #[test]
    fn distinct_categorical_counts() {
        let c = NamedColumn::categorical(
            "k",
            vec![Some("a".into()), Some("b".into()), Some("a".into()), None],
        );
        assert_eq!(c.distinct_categorical(), Some(2));
        let n = NamedColumn::numeric_dense("v", vec![1.0]);
        assert_eq!(n.distinct_categorical(), None);
    }
}
