//! The `⟨K, X⟩` column pair — the unit the paper sketches and indexes.

use sketch_stats::{Moments, ValueBounds};

/// A key/value column pair extracted from a table: a categorical join-key
/// column aligned with a numeric column, with rows containing a null in
/// either column dropped.
///
/// This is the input to both sketch construction and the exact-join ground
/// truth. `keys[i]` is paired with `values[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPair {
    /// Name of the table this pair came from.
    pub table: String,
    /// Name of the key column.
    pub key_name: String,
    /// Name of the numeric column.
    pub value_name: String,
    /// Join-key values (may repeat; see `Aggregation`).
    pub keys: Vec<String>,
    /// Numeric values aligned with `keys`.
    pub values: Vec<f64>,
}

impl ColumnPair {
    /// Build a pair directly from aligned key/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `values` lengths differ (programmer error).
    #[must_use]
    pub fn new(
        table: impl Into<String>,
        key_name: impl Into<String>,
        value_name: impl Into<String>,
        keys: Vec<String>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            keys.len(),
            values.len(),
            "column pair requires aligned keys/values"
        );
        Self {
            table: table.into(),
            key_name: key_name.into(),
            value_name: value_name.into(),
            keys,
            values,
        }
    }

    /// Stable identifier `table/key/value` used in indexes and reports.
    #[must_use]
    pub fn id(&self) -> String {
        format!("{}/{}/{}", self.table, self.key_name, self.value_name)
    }

    /// Number of (non-null) rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the pair has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Number of distinct keys.
    #[must_use]
    pub fn distinct_keys(&self) -> usize {
        let mut ks: Vec<&str> = self.keys.iter().map(String::as_str).collect();
        ks.sort_unstable();
        ks.dedup();
        ks.len()
    }

    /// Moments of the numeric column.
    #[must_use]
    pub fn value_moments(&self) -> Moments {
        self.values.iter().copied().collect()
    }

    /// Value range of the numeric column (`C_low`/`C_high` ingredient for
    /// the Hoeffding bounds of paper Section 4.3). `None` when empty.
    #[must_use]
    pub fn value_bounds(&self) -> Option<ValueBounds> {
        let m = self.value_moments();
        Some(ValueBounds::new(m.min()?, m.max()?))
    }

    /// Iterate aligned `(key, value)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.keys
            .iter()
            .map(String::as_str)
            .zip(self.values.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ColumnPair {
        ColumnPair::new(
            "t",
            "k",
            "v",
            vec!["a".into(), "b".into(), "a".into()],
            vec![1.0, 2.0, 3.0],
        )
    }

    #[test]
    fn id_and_len() {
        let p = sample();
        assert_eq!(p.id(), "t/k/v");
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.distinct_keys(), 2);
    }

    #[test]
    fn bounds_and_moments() {
        let p = sample();
        let b = p.value_bounds().unwrap();
        assert_eq!(b.c_low, 1.0);
        assert_eq!(b.c_high, 3.0);
        assert_eq!(p.value_moments().mean(), Some(2.0));
    }

    #[test]
    fn rows_iterate_aligned() {
        let p = sample();
        let rows: Vec<(&str, f64)> = p.rows().collect();
        assert_eq!(rows, vec![("a", 1.0), ("b", 2.0), ("a", 3.0)]);
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mismatched_lengths_panic() {
        let _ = ColumnPair::new("t", "k", "v", vec!["a".into()], vec![]);
    }

    #[test]
    fn empty_pair_has_no_bounds() {
        let p = ColumnPair::new("t", "k", "v", vec![], vec![]);
        assert!(p.value_bounds().is_none());
        assert!(p.is_empty());
    }
}
