//! Aggregate functions for repeated join keys (paper Section 3.1,
//! "Handling Repeated Keys").
//!
//! When a key occurs several times, its numeric values must be collapsed
//! into one number before a correlation is defined. The paper requires the
//! aggregation to be computable *in streaming fashion* — `x_k^t =
//! f(x_k, x_k^{t−1})` — so that sketches are built in a single pass;
//! [`AggState`] is exactly that streaming state.

/// The aggregate functions supported for repeated keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Aggregation {
    /// Arithmetic mean of the values (Figure 1's example).
    #[default]
    Mean,
    /// Sum of the values.
    Sum,
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// First value encountered in stream order.
    First,
    /// Last value encountered in stream order.
    Last,
    /// Number of occurrences of the key (ignores the values).
    Count,
}

impl Aggregation {
    /// Every supported aggregation, for exhaustive tests and ablations.
    pub const ALL: [Self; 7] = [
        Self::Mean,
        Self::Sum,
        Self::Min,
        Self::Max,
        Self::First,
        Self::Last,
        Self::Count,
    ];

    /// Short name used in CLI flags and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mean => "mean",
            Self::Sum => "sum",
            Self::Min => "min",
            Self::Max => "max",
            Self::First => "first",
            Self::Last => "last",
            Self::Count => "count",
        }
    }

    /// Start the streaming state from the first value of a key group.
    #[must_use]
    pub fn start(&self, first_value: f64) -> AggState {
        AggState::new(*self, first_value)
    }

    /// Aggregate a full slice at once (reference semantics for tests).
    ///
    /// Returns `None` for an empty slice.
    #[must_use]
    pub fn aggregate_slice(&self, values: &[f64]) -> Option<f64> {
        let (&first, rest) = values.split_first()?;
        let mut state = self.start(first);
        for &v in rest {
            state.update(v);
        }
        Some(state.value())
    }
}

impl std::fmt::Display for Aggregation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Aggregation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "mean" | "avg" => Ok(Self::Mean),
            "sum" => Ok(Self::Sum),
            "min" => Ok(Self::Min),
            "max" => Ok(Self::Max),
            "first" => Ok(Self::First),
            "last" => Ok(Self::Last),
            "count" => Ok(Self::Count),
            other => Err(format!(
                "unknown aggregation '{other}' (expected mean|sum|min|max|first|last|count)"
            )),
        }
    }
}

/// Streaming aggregation state for one key group: O(1) memory per key,
/// single pass over the stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggState {
    agg: Aggregation,
    acc: f64,
    count: u64,
}

impl AggState {
    /// Initialize from the first observed value of the key.
    #[must_use]
    pub fn new(agg: Aggregation, first_value: f64) -> Self {
        let acc = match agg {
            Aggregation::Count => 1.0,
            _ => first_value,
        };
        Self { agg, acc, count: 1 }
    }

    /// Fold in another occurrence of the key.
    pub fn update(&mut self, v: f64) {
        self.count += 1;
        match self.agg {
            Aggregation::Mean | Aggregation::Sum => self.acc += v,
            Aggregation::Min => self.acc = self.acc.min(v),
            Aggregation::Max => self.acc = self.acc.max(v),
            Aggregation::First => {}
            Aggregation::Last => self.acc = v,
            Aggregation::Count => self.acc += 1.0,
        }
    }

    /// Current aggregated value.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self.agg {
            Aggregation::Mean => self.acc / self.count as f64,
            _ => self.acc,
        }
    }

    /// Number of occurrences folded so far.
    #[must_use]
    pub fn occurrences(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_slice_semantics() {
        let values = [3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.0];
        let expected = [
            (Aggregation::Mean, values.iter().sum::<f64>() / 7.0),
            (Aggregation::Sum, values.iter().sum::<f64>()),
            (Aggregation::Min, -9.0),
            (Aggregation::Max, 5.0),
            (Aggregation::First, 3.0),
            (Aggregation::Last, 2.0),
            (Aggregation::Count, 7.0),
        ];
        for (agg, want) in expected {
            let got = agg.aggregate_slice(&values).unwrap();
            assert!((got - want).abs() < 1e-12, "{agg}: {got} vs {want}");
        }
    }

    #[test]
    fn single_value_groups() {
        for agg in Aggregation::ALL {
            let want = if agg == Aggregation::Count { 1.0 } else { 7.5 };
            assert_eq!(agg.aggregate_slice(&[7.5]), Some(want), "{agg}");
        }
    }

    #[test]
    fn empty_slice_is_none() {
        assert_eq!(Aggregation::Mean.aggregate_slice(&[]), None);
    }

    #[test]
    fn figure_one_mean_example() {
        // Key "2021-01" in T_Y has values {5.5, 4.5} → mean 5.0.
        assert_eq!(Aggregation::Mean.aggregate_slice(&[5.5, 4.5]), Some(5.0));
        // Key "2021-02": {3.9, 2.0} → mean 2.95 (paper shows 3.0 rounded).
        let v = Aggregation::Mean.aggregate_slice(&[3.9, 2.0]).unwrap();
        assert!((v - 2.95).abs() < 1e-12);
    }

    #[test]
    fn occurrences_counted() {
        let mut s = AggState::new(Aggregation::Mean, 1.0);
        s.update(2.0);
        s.update(3.0);
        assert_eq!(s.occurrences(), 3);
    }

    #[test]
    fn names_roundtrip() {
        for agg in Aggregation::ALL {
            assert_eq!(agg.name().parse::<Aggregation>().unwrap(), agg);
        }
        assert!("median".parse::<Aggregation>().is_err());
        assert_eq!("avg".parse::<Aggregation>().unwrap(), Aggregation::Mean);
    }

    #[test]
    fn update_order_only_matters_for_first_last() {
        let fwd = [1.0, 2.0, 3.0];
        let rev = [3.0, 2.0, 1.0];
        for agg in [
            Aggregation::Mean,
            Aggregation::Sum,
            Aggregation::Min,
            Aggregation::Max,
            Aggregation::Count,
        ] {
            assert_eq!(
                agg.aggregate_slice(&fwd),
                agg.aggregate_slice(&rev),
                "{agg}"
            );
        }
        assert_ne!(
            Aggregation::First.aggregate_slice(&fwd),
            Aggregation::First.aggregate_slice(&rev)
        );
    }
}
