//! Exact joins with aggregation — the ground truth the paper compares
//! sketch estimates against (`T_{X⨝Y}` of Figure 1) — plus the exact
//! set-overlap measures used by the joinability baselines.

use std::collections::HashMap;

use crate::aggregate::{AggState, Aggregation};
use crate::pair::ColumnPair;

/// Result of an exact aggregate-join of two column pairs on their keys.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedPairs {
    /// Keys present on both sides (distinct, in first-seen order of the
    /// left input).
    pub keys: Vec<String>,
    /// Aggregated left values, aligned with `keys`.
    pub x: Vec<f64>,
    /// Aggregated right values, aligned with `keys`.
    pub y: Vec<f64>,
}

impl JoinedPairs {
    /// Number of joined rows (distinct common keys).
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the join is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Group a column pair by key with the given aggregation, preserving
/// first-seen key order.
fn group_by_key(pair: &ColumnPair, agg: Aggregation) -> (Vec<&str>, HashMap<&str, AggState>) {
    let mut order: Vec<&str> = Vec::new();
    let mut groups: HashMap<&str, AggState> = HashMap::with_capacity(pair.len());
    for (k, v) in pair.rows() {
        match groups.entry(k) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().update(v),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(agg.start(v));
                order.push(k);
            }
        }
    }
    (order, groups)
}

/// Exactly join two column pairs on their keys, aggregating repeated keys
/// on each side with `agg` first (the semantics of paper Figure 1).
///
/// The resulting paired vectors are what `r_{X⨝Y}` — the ground-truth
/// correlation — is computed from.
#[must_use]
pub fn exact_join(a: &ColumnPair, b: &ColumnPair, agg: Aggregation) -> JoinedPairs {
    let (order_a, groups_a) = group_by_key(a, agg);
    let (_, groups_b) = group_by_key(b, agg);

    let mut keys = Vec::new();
    let mut x = Vec::new();
    let mut y = Vec::new();
    for k in order_a {
        if let (Some(sa), Some(sb)) = (groups_a.get(k), groups_b.get(k)) {
            keys.push(k.to_string());
            x.push(sa.value());
            y.push(sb.value());
        }
    }
    JoinedPairs { keys, x, y }
}

/// Distinct keys of a pair as a sorted, deduplicated vector.
fn distinct_keys(pair: &ColumnPair) -> Vec<&str> {
    let mut ks: Vec<&str> = pair.keys.iter().map(String::as_str).collect();
    ks.sort_unstable();
    ks.dedup();
    ks
}

/// Number of distinct keys common to both pairs (`|K_X ∩ K_Y|`).
#[must_use]
pub fn key_overlap(a: &ColumnPair, b: &ColumnPair) -> usize {
    let ka = distinct_keys(a);
    let kb = distinct_keys(b);
    let (small, large) = if ka.len() <= kb.len() {
        (&ka, &kb)
    } else {
        (&kb, &ka)
    };
    small
        .iter()
        .filter(|k| large.binary_search(k).is_ok())
        .count()
}

/// Exact Jaccard similarity `|K_X ∩ K_Y| / |K_X ∪ K_Y|` of the key sets.
#[must_use]
pub fn jaccard_similarity(a: &ColumnPair, b: &ColumnPair) -> f64 {
    let inter = key_overlap(a, b);
    let union = a.distinct_keys() + b.distinct_keys() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Exact Jaccard containment `|K_X ∩ K_Y| / |K_X|` of `a`'s keys in `b` —
/// the `jc` ranking baseline of paper Section 5.4 (the score joinability
/// systems such as JOSIE optimize).
#[must_use]
pub fn jaccard_containment(a: &ColumnPair, b: &ColumnPair) -> f64 {
    let da = a.distinct_keys();
    if da == 0 {
        0.0
    } else {
        key_overlap(a, b) as f64 / da as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(table: &str, rows: &[(&str, f64)]) -> ColumnPair {
        ColumnPair::new(
            table,
            "k",
            "v",
            rows.iter().map(|(k, _)| (*k).to_string()).collect(),
            rows.iter().map(|(_, v)| *v).collect(),
        )
    }

    /// The exact tables of paper Figure 1.
    fn figure_one() -> (ColumnPair, ColumnPair) {
        let tx = pair(
            "TX",
            &[
                ("2021-01", 6.0),
                ("2021-02", 4.0),
                ("2021-03", 2.0),
                ("2021-04", 3.0),
                ("2021-05", 0.5),
                ("2021-06", 4.0),
                ("2021-07", 2.0),
            ],
        );
        let ty = pair(
            "TY",
            &[
                ("2021-01", 5.5),
                ("2021-01", 4.5),
                ("2021-02", 3.9),
                ("2021-02", 2.0),
                ("2021-03", 4.0),
                ("2021-03", 1.0),
                ("2021-04", 4.0),
            ],
        );
        (tx, ty)
    }

    #[test]
    fn figure_one_join_with_mean_aggregation() {
        let (tx, ty) = figure_one();
        let j = exact_join(&tx, &ty, Aggregation::Mean);
        assert_eq!(j.len(), 4);
        let lookup: std::collections::HashMap<&str, (f64, f64)> = j
            .keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_str(), (j.x[i], j.y[i])))
            .collect();
        assert_eq!(lookup["2021-01"], (6.0, 5.0));
        assert_eq!(lookup["2021-02"], (4.0, 2.95));
        assert_eq!(lookup["2021-03"], (2.0, 2.5));
        assert_eq!(lookup["2021-04"], (3.0, 4.0));
    }

    #[test]
    fn join_preserves_left_first_seen_order() {
        let (tx, ty) = figure_one();
        let j = exact_join(&tx, &ty, Aggregation::Mean);
        assert_eq!(j.keys, vec!["2021-01", "2021-02", "2021-03", "2021-04"]);
    }

    #[test]
    fn join_is_symmetric_in_key_set() {
        let (tx, ty) = figure_one();
        let ab = exact_join(&tx, &ty, Aggregation::Mean);
        let ba = exact_join(&ty, &tx, Aggregation::Mean);
        let mut ka = ab.keys.clone();
        let mut kb = ba.keys.clone();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
    }

    #[test]
    fn disjoint_keys_join_empty() {
        let a = pair("A", &[("x", 1.0)]);
        let b = pair("B", &[("y", 2.0)]);
        let j = exact_join(&a, &b, Aggregation::Mean);
        assert!(j.is_empty());
    }

    #[test]
    fn aggregation_choice_changes_joined_values() {
        let (tx, ty) = figure_one();
        let jm = exact_join(&tx, &ty, Aggregation::Max);
        let lookup: std::collections::HashMap<&str, f64> = jm
            .keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_str(), jm.y[i]))
            .collect();
        assert_eq!(lookup["2021-01"], 5.5);
        assert_eq!(lookup["2021-02"], 3.9);
    }

    #[test]
    fn overlap_and_jaccard() {
        let (tx, ty) = figure_one();
        assert_eq!(key_overlap(&tx, &ty), 4);
        // |K_X| = 7, |K_Y| = 4, union = 7.
        assert!((jaccard_similarity(&tx, &ty) - 4.0 / 7.0).abs() < 1e-12);
        assert!((jaccard_containment(&tx, &ty) - 4.0 / 7.0).abs() < 1e-12);
        assert!((jaccard_containment(&ty, &tx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_disjoint_sets_is_zero() {
        let a = pair("A", &[("x", 1.0)]);
        let b = pair("B", &[("y", 2.0)]);
        assert_eq!(jaccard_similarity(&a, &b), 0.0);
        assert_eq!(jaccard_containment(&a, &b), 0.0);
    }

    #[test]
    fn jaccard_of_identical_key_sets_is_one() {
        let a = pair("A", &[("x", 1.0), ("y", 5.0)]);
        let b = pair("B", &[("y", 2.0), ("x", 0.0)]);
        assert_eq!(jaccard_similarity(&a, &b), 1.0);
    }

    #[test]
    fn empty_pair_edge_cases() {
        let e = pair("E", &[]);
        let a = pair("A", &[("x", 1.0)]);
        assert_eq!(key_overlap(&e, &a), 0);
        assert_eq!(jaccard_similarity(&e, &a), 0.0);
        assert_eq!(jaccard_containment(&e, &a), 0.0);
        assert!(exact_join(&e, &a, Aggregation::Mean).is_empty());
    }

    #[test]
    fn ground_truth_correlation_via_join() {
        // Perfectly correlated after the join even with repeated keys.
        let a = pair("A", &[("k1", 1.0), ("k2", 2.0), ("k3", 3.0)]);
        let b = pair(
            "B",
            &[("k1", 10.0), ("k1", 10.0), ("k2", 20.0), ("k3", 30.0)],
        );
        let j = exact_join(&a, &b, Aggregation::Mean);
        let r = sketch_stats::pearson(&j.x, &j.y).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }
}
