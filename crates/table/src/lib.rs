//! Table substrate for the Correlation Sketches reproduction.
//!
//! The paper's data model (Section 3) is a pair of columns per table: a
//! categorical *join key* column `K` and a numerical column `X`. This crate
//! provides:
//!
//! * [`Table`] / [`ColumnData`] — a small column-oriented table model with
//!   nullable categorical and numeric columns;
//! * CSV parsing with automatic type inference ([`Table::from_csv`]),
//!   standing in for the Tablesaw library the paper used;
//! * extraction of all `⟨K, X⟩` **column pairs** from a table
//!   ([`Table::column_pairs`]), the unit of indexing in the paper's
//!   evaluation;
//! * **exact joins with aggregation** ([`join::exact_join`]) — the ground
//!   truth that sketch estimates are compared against, including the
//!   repeated-key aggregation semantics of Figure 1 (mean/sum/min/max/
//!   first/last/count);
//! * exact set-overlap measures (Jaccard similarity/containment) used by
//!   the `jc` ranking baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod column;
pub mod csv;
pub mod join;
pub mod pair;
pub mod table;

pub use aggregate::{AggState, Aggregation};
pub use column::{ColumnData, NamedColumn};
pub use csv::{parse_csv, CsvError};
pub use join::{exact_join, jaccard_containment, jaccard_similarity, key_overlap, JoinedPairs};
pub use pair::ColumnPair;
pub use table::Table;
