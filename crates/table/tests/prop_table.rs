//! Property-based tests for the table substrate.

use proptest::collection::vec;
use proptest::prelude::*;
use sketch_table::{
    exact_join, jaccard_containment, jaccard_similarity, key_overlap, parse_csv, Aggregation,
    ColumnPair,
};

fn arb_cell() -> impl Strategy<Value = String> {
    // Cells exercising quoting: commas, quotes, newlines, unicode.
    prop_oneof![
        "[a-z0-9 ]{0,12}",
        Just("a,b".to_string()),
        Just("say \"hi\"".to_string()),
        Just("line1\nline2".to_string()),
        Just("naïve–data".to_string()),
    ]
}

fn quote(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

fn pair_from(keys: &[u8], values: &[f64], table: &str) -> ColumnPair {
    let n = keys.len().min(values.len());
    ColumnPair::new(
        table,
        "k",
        "v",
        keys[..n].iter().map(|k| format!("key-{k}")).collect(),
        values[..n].to_vec(),
    )
}

proptest! {
    /// CSV writer→parser round-trip: any grid of cells survives quoting.
    #[test]
    fn csv_roundtrip(grid in vec(vec(arb_cell(), 1..6), 1..20)) {
        let width = grid[0].len();
        let text: String = grid
            .iter()
            .map(|row| {
                row.iter()
                    .take(width)
                    .chain(std::iter::repeat_n(&String::new(), width.saturating_sub(row.len())))
                    .map(|c| quote(c))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let parsed = parse_csv(&text).unwrap();
        prop_assert_eq!(parsed.len(), grid.len());
        for (prow, grow) in parsed.iter().zip(&grid) {
            for (pcell, gcell) in prow.iter().zip(grow.iter().take(width)) {
                prop_assert_eq!(pcell, gcell);
            }
        }
    }

    /// Join size equals the exact distinct-key intersection.
    #[test]
    fn join_size_equals_key_overlap(
        ka in vec(any::<u8>(), 0..200),
        kb in vec(any::<u8>(), 0..200),
        va in vec(-1e3f64..1e3, 0..200),
        vb in vec(-1e3f64..1e3, 0..200),
    ) {
        let a = pair_from(&ka, &va, "a");
        let b = pair_from(&kb, &vb, "b");
        let joined = exact_join(&a, &b, Aggregation::Mean);
        prop_assert_eq!(joined.len(), key_overlap(&a, &b));
    }

    /// Jaccard measures are bounded, symmetric (similarity), and
    /// consistent with each other.
    #[test]
    fn jaccard_properties(
        ka in vec(any::<u8>(), 1..150),
        kb in vec(any::<u8>(), 1..150),
        va in vec(-1e3f64..1e3, 1..150),
        vb in vec(-1e3f64..1e3, 1..150),
    ) {
        let a = pair_from(&ka, &va, "a");
        let b = pair_from(&kb, &vb, "b");
        prop_assume!(!a.is_empty() && !b.is_empty());
        let sim = jaccard_similarity(&a, &b);
        let jc_ab = jaccard_containment(&a, &b);
        let jc_ba = jaccard_containment(&b, &a);
        prop_assert!((0.0..=1.0).contains(&sim));
        prop_assert!((0.0..=1.0).contains(&jc_ab));
        prop_assert!((sim - jaccard_similarity(&b, &a)).abs() < 1e-12);
        // similarity ≤ each containment.
        prop_assert!(sim <= jc_ab + 1e-12);
        prop_assert!(sim <= jc_ba + 1e-12);
        // |A∩B| consistency: jc_ab·|A| == jc_ba·|B|.
        let lhs = jc_ab * a.distinct_keys() as f64;
        let rhs = jc_ba * b.distinct_keys() as f64;
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// Joining a pair with itself is the identity on aggregated values.
    #[test]
    fn self_join_is_identity(
        keys in vec(any::<u8>(), 1..150),
        values in vec(-1e3f64..1e3, 1..150),
    ) {
        let a = pair_from(&keys, &values, "a");
        prop_assume!(!a.is_empty());
        let joined = exact_join(&a, &a, Aggregation::Mean);
        prop_assert_eq!(joined.len(), a.distinct_keys());
        for (x, y) in joined.x.iter().zip(&joined.y) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Aggregation bounds: min ≤ mean ≤ max per key group.
    #[test]
    fn aggregation_ordering(values in vec(-1e3f64..1e3, 1..60)) {
        let lo = Aggregation::Min.aggregate_slice(&values).unwrap();
        let mid = Aggregation::Mean.aggregate_slice(&values).unwrap();
        let hi = Aggregation::Max.aggregate_slice(&values).unwrap();
        prop_assert!(lo <= mid + 1e-9 && mid <= hi + 1e-9);
        prop_assert_eq!(
            Aggregation::Count.aggregate_slice(&values).unwrap(),
            values.len() as f64
        );
    }
}
