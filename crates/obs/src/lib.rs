//! Observability primitives for the query path: a bounded, monotonic
//! span recorder ([`Trace`]) and Prometheus text-exposition writers
//! ([`promtext`]).
//!
//! # Zero cost when disabled
//!
//! The server traces a request only when the client asked for it (or a
//! slow-query threshold is armed), so the disabled path must cost
//! nothing measurable: [`Trace::disabled`] is `const`, holds no heap
//! allocation, and every recording method is one branch on a `None`
//! before touching the clock. No `Instant::now()` call, no `Vec` growth,
//! no formatting ever happens on a disabled trace.
//!
//! # Bounded by construction
//!
//! An enabled trace caps both the span count ([`MAX_SPANS`]) and the
//! nesting depth ([`MAX_DEPTH`]); spans beyond either bound are counted
//! in `dropped` rather than recorded, so a pathological request can
//! never make its own trace allocate without bound. Timings come from
//! the monotonic clock (`Instant`), recorded as microsecond offsets
//! from the trace's epoch — wall-clock steps can never produce negative
//! or reordered stage durations.

use std::time::{Duration, Instant};

pub mod promtext;

/// Ceiling on recorded spans per trace; later spans are dropped (and
/// counted) rather than recorded.
pub const MAX_SPANS: usize = 128;

/// Ceiling on span nesting depth; deeper `begin`s are dropped (and
/// counted) rather than recorded.
pub const MAX_DEPTH: usize = 16;

/// Sentinel for a span with no index label.
pub const NO_INDEX: u32 = u32::MAX;

/// One recorded stage: a name, an optional numeric index (shard number,
/// promotion round, …), its nesting depth, and monotonic-clock timing
/// as microsecond offsets from the trace epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Stage name (static: span names are a closed vocabulary, which
    /// keeps recording allocation-free).
    pub name: &'static str,
    /// Numeric label ([`NO_INDEX`] when absent) — e.g. the shard a
    /// scatter RTT belongs to.
    pub index: u32,
    /// Nesting depth at `begin` (0 = top level).
    pub depth: u32,
    /// Start offset from the trace epoch, µs.
    pub start_us: u64,
    /// Duration, µs. Still-open spans render as 0.
    pub dur_us: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    spans: Vec<Span>,
    /// Open-span stack: `(slot in spans, start instant)`.
    open: Vec<(usize, Instant)>,
    /// `(name, value)` annotations — counters folded into the trace
    /// (plan statistics, candidate counts, degraded shards).
    notes: Vec<(&'static str, u64)>,
    dropped: u64,
}

/// A span recorder for one request. Disabled traces are free (see the
/// module docs); enabled traces record a bounded tree of stage timings
/// plus numeric notes, rendered as one JSON object.
#[derive(Debug)]
pub struct Trace {
    inner: Option<Box<Inner>>,
}

/// Token returned by [`Trace::begin`]; hand it back to [`Trace::end`]
/// to close the span. Dropping it without `end` leaves the span open
/// (rendered with duration 0) — fine for abandoned paths, never unsafe.
#[derive(Debug)]
#[must_use = "pass the guard back to Trace::end to close the span"]
pub struct SpanGuard {
    slot: u32,
}

impl SpanGuard {
    const NONE: Self = Self { slot: u32::MAX };
}

impl Trace {
    /// A trace that records nothing and allocates nothing. `const`, so
    /// the untraced hot path carries only a `None` check.
    #[must_use]
    pub const fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live trace whose epoch is now.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            inner: Some(Box::new(Inner {
                epoch: Instant::now(),
                spans: Vec::with_capacity(16),
                open: Vec::with_capacity(4),
                notes: Vec::with_capacity(8),
                dropped: 0,
            })),
        }
    }

    /// An enabled or disabled trace, picked at runtime.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Is this trace recording?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span. Returns a token to pass back to [`end`](Self::end).
    pub fn begin(&mut self, name: &'static str) -> SpanGuard {
        self.begin_indexed(name, NO_INDEX)
    }

    /// Open a span with a numeric index label (e.g. a shard number).
    pub fn begin_indexed(&mut self, name: &'static str, index: u32) -> SpanGuard {
        let Some(inner) = self.inner.as_deref_mut() else {
            return SpanGuard::NONE;
        };
        if inner.spans.len() >= MAX_SPANS || inner.open.len() >= MAX_DEPTH {
            inner.dropped += 1;
            return SpanGuard::NONE;
        }
        let now = Instant::now();
        let slot = inner.spans.len();
        inner.spans.push(Span {
            name,
            index,
            depth: inner.open.len() as u32,
            start_us: offset_us(inner.epoch, now),
            dur_us: 0,
        });
        inner.open.push((slot, now));
        SpanGuard { slot: slot as u32 }
    }

    /// Close the span `guard` opened. Out-of-order ends are tolerated:
    /// only the named span is closed, not everything above it.
    pub fn end(&mut self, guard: SpanGuard) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        let slot = guard.slot as usize;
        let Some(pos) = inner.open.iter().rposition(|&(s, _)| s == slot) else {
            return;
        };
        let (_, started) = inner.open.remove(pos);
        inner.spans[slot].dur_us = duration_us(started.elapsed());
    }

    /// Run `f` inside a span — the ergonomic form for straight-line
    /// stages.
    pub fn scope<R>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let guard = self.begin(name);
        let out = f(self);
        self.end(guard);
        out
    }

    /// Record a span measured elsewhere (e.g. a per-shard RTT taken on
    /// a scatter thread and reported back after the join). `start` is
    /// clamped to the trace epoch if it predates it.
    pub fn record(&mut self, name: &'static str, index: u32, start: Instant, dur: Duration) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        if inner.spans.len() >= MAX_SPANS {
            inner.dropped += 1;
            return;
        }
        inner.spans.push(Span {
            name,
            index,
            depth: inner.open.len() as u32,
            start_us: offset_us(inner.epoch, start),
            dur_us: duration_us(dur),
        });
    }

    /// Attach a numeric annotation (plan statistics, shard counts, …).
    /// Bounded by [`MAX_SPANS`] like spans.
    pub fn note(&mut self, name: &'static str, value: u64) {
        let Some(inner) = self.inner.as_deref_mut() else {
            return;
        };
        if inner.notes.len() >= MAX_SPANS {
            inner.dropped += 1;
            return;
        }
        inner.notes.push((name, value));
    }

    /// Microseconds since the trace epoch (0 when disabled).
    #[must_use]
    pub fn total_us(&self) -> u64 {
        self.inner
            .as_deref()
            .map_or(0, |i| duration_us(i.epoch.elapsed()))
    }

    /// Recorded spans (empty when disabled).
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        self.inner.as_deref().map_or(&[], |i| &i.spans)
    }

    /// Recorded notes (empty when disabled).
    #[must_use]
    pub fn notes(&self) -> &[(&'static str, u64)] {
        self.inner.as_deref().map_or(&[], |i| &i.notes)
    }

    /// Spans dropped at the span-count or depth bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_deref().map_or(0, |i| i.dropped)
    }

    /// Render the trace as one JSON object:
    /// `{"total_us":…,"dropped":…,"spans":[{"name":…,"depth":…,
    /// "start_us":…,"dur_us":…},…],"notes":{…}}`. Span objects carry
    /// `"index"` only when one was set. Disabled traces render as an
    /// empty object (callers normally don't render those at all).
    #[must_use]
    pub fn render_json(&self) -> String {
        let Some(inner) = self.inner.as_deref() else {
            return "{}".to_string();
        };
        let mut out = String::with_capacity(64 + 96 * inner.spans.len());
        out.push_str("{\"total_us\":");
        out.push_str(&self.total_us().to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&inner.dropped.to_string());
        out.push_str(",\"spans\":[");
        for (i, s) in inner.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(s.name);
            out.push('"');
            if s.index != NO_INDEX {
                out.push_str(",\"index\":");
                out.push_str(&s.index.to_string());
            }
            out.push_str(",\"depth\":");
            out.push_str(&s.depth.to_string());
            out.push_str(",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&s.dur_us.to_string());
            out.push('}');
        }
        out.push_str("],\"notes\":{");
        for (i, (name, value)) in inner.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
        out
    }
}

fn offset_us(epoch: Instant, at: Instant) -> u64 {
    duration_us(at.saturating_duration_since(epoch))
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing_and_renders_empty() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        let g = t.begin("stage");
        t.end(g);
        t.note("n", 7);
        t.record("x", 3, Instant::now(), Duration::from_millis(5));
        assert!(t.spans().is_empty());
        assert!(t.notes().is_empty());
        assert_eq!(t.total_us(), 0);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.render_json(), "{}");
    }

    #[test]
    fn spans_nest_and_close_with_monotone_offsets() {
        let mut t = Trace::enabled();
        let outer = t.begin("request");
        let inner = t.begin("stage1");
        std::thread::sleep(Duration::from_millis(2));
        t.end(inner);
        let inner2 = t.begin_indexed("shard", 3);
        t.end(inner2);
        t.end(outer);
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "request");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].name, "stage1");
        assert!(spans[1].dur_us >= 1_000, "slept 2ms: {}", spans[1].dur_us);
        assert_eq!(spans[2].index, 3);
        // The parent covers its children.
        assert!(spans[0].dur_us >= spans[1].dur_us + spans[2].dur_us);
        assert!(spans[1].start_us >= spans[0].start_us);
        assert!(t.total_us() >= spans[0].dur_us);
    }

    #[test]
    fn out_of_order_end_closes_only_the_named_span() {
        let mut t = Trace::enabled();
        let a = t.begin("a");
        let b = t.begin("b");
        t.end(a); // out of order: b stays open
        let spans = t.spans();
        assert_eq!(spans[0].name, "a");
        // A third span still opens at b's depth (b is still on the stack).
        let c = t.begin("c");
        t.end(c);
        t.end(b);
        assert_eq!(t.spans()[2].depth, 1);
    }

    #[test]
    fn span_count_and_depth_are_bounded() {
        let mut t = Trace::enabled();
        let mut guards = Vec::new();
        for _ in 0..MAX_DEPTH + 4 {
            guards.push(t.begin("deep"));
        }
        assert_eq!(t.spans().len(), MAX_DEPTH);
        assert_eq!(t.dropped(), 4);
        for g in guards.into_iter().rev() {
            t.end(g);
        }
        for _ in 0..MAX_SPANS {
            let g = t.begin("flat");
            t.end(g);
        }
        assert_eq!(t.spans().len(), MAX_SPANS);
        assert!(t.dropped() > 4, "overflow spans are counted");
        // Notes are bounded too.
        for _ in 0..MAX_SPANS + 2 {
            t.note("n", 1);
        }
        assert_eq!(t.notes().len(), MAX_SPANS);
    }

    #[test]
    fn scope_and_record_and_notes_land_in_json() {
        let mut t = Trace::enabled();
        let sum = t.scope("work", |t| {
            t.note("items", 42);
            1 + 1
        });
        assert_eq!(sum, 2);
        let started = Instant::now();
        t.record("rtt", 2, started, Duration::from_micros(123));
        let json = t.render_json();
        assert!(json.contains("\"name\":\"work\""), "{json}");
        assert!(json.contains("\"name\":\"rtt\""), "{json}");
        assert!(json.contains("\"index\":2"), "{json}");
        assert!(json.contains("\"dur_us\":123"), "{json}");
        assert!(json.contains("\"notes\":{\"items\":42}"), "{json}");
        assert!(json.contains("\"dropped\":0"), "{json}");
        // The rendered trace must be valid JSON in the workspace's own
        // parser's eyes — checked end to end by the server tests; here
        // at least balance the braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn record_clamps_pre_epoch_starts() {
        let early = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let mut t = Trace::enabled();
        t.record("before", NO_INDEX, early, Duration::from_micros(10));
        assert_eq!(t.spans()[0].start_us, 0);
    }
}
