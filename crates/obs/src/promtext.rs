//! Prometheus text exposition format (version 0.0.4) writers: `# HELP`
//! / `# TYPE` headers, labeled samples, and the conversion of the
//! server's log2-microsecond latency histograms into cumulative
//! `_bucket{le="…"}` series.
//!
//! Only the writing half exists — the server never scrapes anyone. The
//! format rules honored here (and asserted by the server's conformance
//! test): metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label values
//! are quoted with `\\`, `\"`, and `\n` escaped, `_bucket` series are
//! cumulative and end with `le="+Inf"` equal to `_count`.

/// The content type a `/metrics` response must carry.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Write the `# HELP` and `# TYPE` header pair for a metric family.
/// `kind` is `counter`, `gauge`, or `histogram`.
pub fn push_family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    // HELP text escapes only backslash and newline (not quotes).
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn push_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Write one sample line with an integer value.
pub fn push_sample_u64(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    push_labels(out, labels);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Write one sample line with a float value (finite; callers pass
/// derived gauges like seconds).
pub fn push_sample_f64(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    push_labels(out, labels);
    out.push(' ');
    if value == value.trunc() && value.abs() < 1e15 {
        // Integral floats print without an exponent or trailing noise.
        out.push_str(&format!("{value:.1}"));
    } else {
        out.push_str(&format!("{value}"));
    }
    out.push('\n');
}

/// Render a log2-microsecond latency histogram (bucket 0 holds 0 µs,
/// bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs, last bucket saturates)
/// as a Prometheus histogram in seconds: cumulative
/// `name_bucket{le="…"}` lines (the saturation bucket folds into
/// `+Inf`), then `name_sum` and `name_count`. Extra fixed labels (e.g.
/// an endpoint) apply to every line.
pub fn push_log2_us_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    counts: &[u64],
    sum_us: u64,
) {
    let total: u64 = counts.iter().sum();
    let mut cumulative = 0u64;
    for (i, &c) in counts
        .iter()
        .enumerate()
        .take(counts.len().saturating_sub(1))
    {
        cumulative += c;
        // Upper edge of bucket i in seconds: 0 for the zero bucket,
        // 2^i µs otherwise.
        let le = if i == 0 {
            "0".to_string()
        } else {
            format!("{}", (1u64 << i) as f64 / 1e6)
        };
        let mut with_le = Vec::with_capacity(labels.len() + 1);
        with_le.extend_from_slice(labels);
        with_le.push(("le", le.as_str()));
        out.push_str(name);
        out.push_str("_bucket");
        push_labels(out, &with_le);
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    let mut with_le = Vec::with_capacity(labels.len() + 1);
    with_le.extend_from_slice(labels);
    with_le.push(("le", "+Inf"));
    out.push_str(name);
    out.push_str("_bucket");
    push_labels(out, &with_le);
    out.push(' ');
    out.push_str(&total.to_string());
    out.push('\n');
    let mut sum_name = String::with_capacity(name.len() + 4);
    sum_name.push_str(name);
    sum_name.push_str("_sum");
    push_sample_f64(out, &sum_name, labels, sum_us as f64 / 1e6);
    let mut count_name = String::with_capacity(name.len() + 6);
    count_name.push_str(name);
    count_name.push_str("_count");
    push_sample_u64(out, &count_name, labels, total);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_and_samples_render_the_exposition_format() {
        let mut out = String::new();
        push_family(&mut out, "app_requests_total", "counter", "Requests.");
        push_sample_u64(&mut out, "app_requests_total", &[("endpoint", "query")], 42);
        push_sample_f64(&mut out, "app_uptime_seconds", &[], 12.5);
        push_sample_f64(&mut out, "app_up", &[], 1.0);
        assert_eq!(
            out,
            "# HELP app_requests_total Requests.\n\
             # TYPE app_requests_total counter\n\
             app_requests_total{endpoint=\"query\"} 42\n\
             app_uptime_seconds 12.5\n\
             app_up 1.0\n"
        );
    }

    #[test]
    fn label_values_and_help_are_escaped() {
        let mut out = String::new();
        push_sample_u64(&mut out, "m", &[("path", "a\"b\\c\nd")], 1);
        assert_eq!(out, "m{path=\"a\\\"b\\\\c\\nd\"} 1\n");
        let mut out = String::new();
        push_family(&mut out, "m", "gauge", "line\nbreak\\slash");
        assert!(out.starts_with("# HELP m line\\nbreak\\\\slash\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        // counts: 2 at 0µs, 3 in [1,2), 1 in [2,4), 4 saturated.
        let counts = [2u64, 3, 1, 4];
        let mut out = String::new();
        push_log2_us_histogram(&mut out, "lat_seconds", &[], &counts, 7_000_000);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "lat_seconds_bucket{le=\"0\"} 2");
        assert_eq!(lines[1], "lat_seconds_bucket{le=\"0.000002\"} 5");
        assert_eq!(lines[2], "lat_seconds_bucket{le=\"0.000004\"} 6");
        assert_eq!(lines[3], "lat_seconds_bucket{le=\"+Inf\"} 10");
        assert_eq!(lines[4], "lat_seconds_sum 7.0");
        assert_eq!(lines[5], "lat_seconds_count 10");
        // Cumulative counts are monotone.
        let mut prev = 0u64;
        for line in &lines[..4] {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
    }

    #[test]
    fn histogram_carries_fixed_labels_on_every_line() {
        let counts = [1u64, 0, 1];
        let mut out = String::new();
        push_log2_us_histogram(&mut out, "h", &[("endpoint", "query")], &counts, 3);
        for line in out.lines() {
            assert!(line.contains("endpoint=\"query\""), "{line}");
        }
        assert!(out.contains("h_bucket{endpoint=\"query\",le=\"+Inf\"} 2"));
    }
}
