//! Hermetic stand-in for the `criterion` crate (no network access in the
//! build environment). Provides the macro/API surface the workspace's
//! benches use — [`criterion_group!`], [`criterion_main!`], benchmark
//! groups with `warm_up_time` / `measurement_time` / `sample_size` /
//! `throughput`, [`BenchmarkId`], and `Bencher::iter` — measuring
//! wall-clock time and printing a compact
//! `group/name  median … mean … (N samples)` line per benchmark.
//!
//! No statistical outlier analysis, plots, or saved baselines; results
//! are intended for relative, same-machine comparisons (which is how the
//! workspace's perf acceptance criteria are phrased).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver, one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Build from the process arguments: a bare positional argument is a
    /// substring filter (as with real criterion); `--test` runs each
    /// benchmark exactly once (what `cargo test --benches` passes).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') => c.filter = Some(a.to_string()),
                _ => {}
            }
        }
        c
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 10,
        }
    }

    /// Standalone benchmark without a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Units for throughput annotation (accepted, not currently reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (real criterion's `from_parameter`).
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// A set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Number of samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.name.clone()
        } else {
            format!("{}/{}", self.name, id.name)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher::once();
            f(&mut b);
            println!("{full}: ok (test mode)");
            return;
        }

        // Warm-up: run until the warm-up budget is spent, measuring the
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut iters_done = 0u64;
        let mut b = Bencher::timed(1);
        while warm_start.elapsed() < self.warm_up || iters_done == 0 {
            f(&mut b);
            iters_done += b.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Measurement: `sample_size` samples, each batched so the whole
        // run lands near the measurement budget.
        let budget = self.measurement.as_secs_f64();
        let iters_per_sample =
            ((budget / self.sample_size as f64 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::timed(iters_per_sample);
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{full:<48} median {:>12}  mean {:>12}  ({} samples x {iters_per_sample} iters)",
            format_time(median),
            format_time(mean),
            samples.len(),
        );
    }

    /// Run one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn once() -> Self {
        Self {
            iters: 1,
            elapsed: Duration::ZERO,
        }
    }

    fn timed(iters: u64) -> Self {
        Self {
            iters,
            elapsed: Duration::ZERO,
        }
    }

    /// Time `iters` executions of `payload`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(payload());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
