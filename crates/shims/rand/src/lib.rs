//! Hermetic stand-in for the `rand` crate (the build environment has no
//! network access, so crates.io dependencies are replaced by small
//! in-tree equivalents).
//!
//! Only the surface the workspace actually uses is provided:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt::random`] / [`RngExt::random_range`] methods of rand 0.9.
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic for a given seed, which is
//! all the workspace needs (bootstrap resampling, synthetic corpora, and
//! noise baselines; nothing cryptographic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Sources of raw random words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from integer seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (`rng.random::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via `rng.random_range(range)`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is in range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience sampling methods, modeled on rand 0.9's `Rng`.
pub trait RngExt: RngCore {
    /// Uniform sample of `T` (`f64` in `[0, 1)`, full-width integers).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64 as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform_buckets() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
