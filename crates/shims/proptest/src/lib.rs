//! Hermetic stand-in for the `proptest` crate (no network access in the
//! build environment), exposing the subset of its API this workspace's
//! property tests use: the [`proptest!`] macro with `pattern in strategy`
//! parameters and `#![proptest_config(..)]`, the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map`, range / `Just` / regex-lite string
//! strategies, [`collection::vec`], [`option::of`], [`sample::Index`],
//! [`prop_oneof!`], and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — failures report the deterministic case number, and
//!   seeds derive from the test's module path, so every failure replays
//!   exactly under `cargo test`;
//! * string strategies accept only the `[chars]{lo,hi}` regex shape
//!   (character classes with ranges), falling back to the literal string;
//! * the default case count is 64, overridable via the `PROPTEST_CASES`
//!   environment variable (as in real proptest).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Deterministic RNG driving value generation (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded generator; the full stream is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n). Panics when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Stable seed for a test, derived from its fully qualified name (FNV-1a).
#[must_use]
pub fn test_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    /// Like real proptest, the default case count honors the
    /// `PROPTEST_CASES` environment variable (CI runs the batteries with
    /// elevated counts), falling back to 64 when unset. A malformed or
    /// zero value panics — like real proptest — so a CI typo shrinks no
    /// battery silently. Explicit [`ProptestConfig::with_cases`] configs
    /// are unaffected.
    fn default() -> Self {
        let cases = match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().ok().filter(|&c| c > 0).unwrap_or_else(|| {
                panic!("invalid PROPTEST_CASES '{v}' (need a positive integer)")
            }),
            Err(_) => 64,
        };
        Self { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values of one type.
///
/// Combinator methods require `Self: Sized` so `dyn Strategy<Value = T>`
/// (used by [`prop_oneof!`]) stays object-safe.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, build a dependent strategy from it, and draw
    /// from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy yielding a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// `&str` as a strategy: the regex-lite pattern `[chars]{lo,hi}` (with
/// `a-z` ranges inside the class) generates matching strings; any other
/// string generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let Some(body) = self.strip_prefix('[') else {
            return (*self).to_string();
        };
        let Some((class, rep)) = body.split_once(']') else {
            return (*self).to_string();
        };
        // Expand the character class, honoring x-y ranges.
        let mut alphabet: Vec<char> = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                for c in lo..=hi {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        let (lo, hi) = rep
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .and_then(|r| r.split_once(','))
            .and_then(|(lo, hi)| Some((lo.parse::<usize>().ok()?, hi.parse::<usize>().ok()?)))
            .unwrap_or((1, 8));
        if alphabet.is_empty() {
            return String::new();
        }
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// `Vec<S>` runs every inner strategy once (what `prop_flat_map` closures
/// returning vectors of strategies rely on).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Values with a canonical "any" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit_f64() * 40.0 - 20.0).exp2();
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy internals exposed for the macros.
pub mod strategy {
    use super::{Strategy, TestRng};

    /// Uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives; panics when empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs an option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec<S::Value>` with a length uniform in `size` (exclusive upper
    /// bound, like proptest's size ranges).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for options: `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `[0, len)`. Panics when `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Self(rng.next_u64())
        }
    }
}

/// Namespace mirror so `prop::sample::Index` works from the prelude.
pub mod prop {
    pub use crate::sample;
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert inside a proptest body; failure fails only the current case's
/// test with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// `prop_assert!(a != b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l != *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Reject the current case (it does not count against the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Each `fn name(pat in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    (@munch ($config:expr); ) => {};
    (@munch ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempt = 0u32;
            // The rejection budget mirrors proptest's default `max_
            // global_rejects` spirit: give up eventually rather than spin.
            while accepted < config.cases && attempt < config.cases.saturating_mul(16) {
                attempt += 1;
                let mut rng = $crate::TestRng::new(seed ^ (u64::from(attempt) << 32));
                let case = (|rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                    $(let $parm = $crate::Strategy::generate(&($strategy), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })(&mut rng);
                match case {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {attempt} of {} failed: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
            assert!(
                accepted > 0,
                "proptest {}: every generated case was rejected",
                stringify!($name)
            );
        }
        $crate::proptest!(@munch ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}
