//! `corrsketch` — a command-line front end for the Correlation Sketches
//! library: index a directory of CSV files once, then answer
//! join-correlation queries against the index interactively.
//!
//! ```text
//! corrsketch index    --dir data/ --out lake.sketches [--sketch-size 256]
//! corrsketch query    --index lake.sketches --table q.csv --key day --value pickups
//! corrsketch estimate --left a.csv --left-key k --left-value x \
//!                     --right b.csv --right-key k --right-value y
//! corrsketch inspect  --index lake.sketches
//! ```
//!
//! The index file is newline-delimited JSON, one sketch per line (the
//! format of [`correlation_sketches::persist`]), so it is diffable,
//! streamable, and appendable. For corpora of thousands of sketches the
//! `corpus` command group packs the same sketches into a sharded binary
//! store (`sketch-store`'s `.cskb` shards + manifest) that loads an
//! order of magnitude faster; `query --store <dir>` answers from it
//! directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod commands;

pub use cli::{CliArgs, CliError};
pub use commands::{append, corpus, estimate, index, inspect, query, serve};

/// Entry point shared by `main` and the integration tests: dispatch a
/// subcommand and return its rendered report.
///
/// # Errors
///
/// [`CliError`] on unknown subcommands, bad flags, I/O failures, or
/// malformed inputs.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (command, rest) = argv
        .split_first()
        .ok_or_else(|| CliError::Usage(USAGE.into()))?;
    // `corpus` is a command group: its subcommand precedes the flags.
    if command == "corpus" {
        let (sub, rest) = rest.split_first().ok_or_else(|| {
            CliError::Usage(
                "corpus needs a subcommand: pack | info | append | rm | compact | shard".into(),
            )
        })?;
        let args = CliArgs::parse(rest)?;
        return match sub.as_str() {
            "pack" => corpus::pack(&args),
            "info" => corpus::info(&args),
            "append" => corpus::append(&args),
            "rm" => corpus::rm(&args),
            "compact" => corpus::compact(&args),
            "shard" => corpus::shard(&args),
            other => Err(CliError::Usage(format!(
                "unknown corpus subcommand '{other}' \
                 (expected pack | info | append | rm | compact | shard)\n{USAGE}"
            ))),
        };
    }
    let args = CliArgs::parse(rest)?;
    match command.as_str() {
        "index" => index::run(&args),
        "append" => append::run(&args),
        "query" => query::run(&args),
        "serve" => serve::run(&args),
        "estimate" => estimate::run(&args),
        "inspect" => inspect::run(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

/// Usage text.
pub const USAGE: &str = "\
corrsketch — join-correlation queries over CSV collections

USAGE:
  corrsketch index    --dir <csv-dir> --out <file>
                      [--sketch-size 256] [--aggregation mean] [--seed 0]
  corrsketch append   --dir <csv-dir> --index <file>   (reuses index config)
  corrsketch corpus pack --out <store-dir> (--dir <csv-dir> | --index <file>)
                      [--shards 8] [--threads 1] [--sketch-size 256]
  corrsketch corpus info --store <store-dir> [--threads 1] [--json true]
  corrsketch corpus append --store <store-dir> (--dir <csv-dir> | --index <file>)
                      [--threads 1]                     (writes a delta shard)
  corrsketch corpus rm --store <store-dir> --ids <id>[,<id>...]
                      [--threads 1]                     (tombstones live ids)
  corrsketch corpus compact --store <store-dir> [--shards 8] [--threads 1]
                      (folds deltas + tombstones back into base shards)
  corrsketch corpus shard --store <store-dir> --out <dir> --workers <n>
                      [--threads 1]  (partitions the live view into n
                       worker stores + partition.cskp, for sharded serving)
  corrsketch query    (--index <file> | --store <store-dir>)
                      --table <csv> --key <col> --value <col>
                      [--k 10] [--candidates 100] [--estimator pearson]
                      [--scorer s1|s2|s3|s4] [--confidence 0.95] [--threads 1]
                      (s1 = raw point estimate; s2..s4 penalize by the
                       confidence interval; paper aliases rp, rp*sez,
                       rb*cib, rp*cih accepted. The jc/jc_est/random
                       joinability baselines live in the sketch-ranking
                       evaluation harness, not the query path)
  corrsketch serve    --store <store-dir> [--host 127.0.0.1] [--port 0]
                      [--threads 4] [--cache 1024] [--poll-ms 200]
                      [--scorer s1] [--confidence 0.95]  (request defaults)
                      [--request-timeout-ms 10000]      (0 disables)
                      [--slow-query-ms 0]  (0 off; else trace internally
                       and log requests at/over the threshold to stderr)
                      (HTTP: POST /query, POST /query_batch, GET /corpus,
                       GET /healthz, GET /stats, GET /metrics — Prometheus
                       text; graceful stop on SIGTERM)
  corrsketch serve    --coordinator true --workers <host:port>[,<host:port>…]
                      [--worker-timeout-ms 2000] [--startup-timeout-ms 10000]
                      (scatter-gather over worker servers, one per
                       `corpus shard` partition in manifest order; merged
                       answers are bit-identical to a single server over
                       the union corpus, minus degraded shards)
  corrsketch estimate --left <csv> --left-key <col> --left-value <col>
                      --right <csv> --right-key <col> --right-value <col>
                      [--sketch-size 1024] [--aggregation mean]
  corrsketch inspect  --index <file>
  corrsketch help";
