//! Flag parsing and the CLI error type.

use std::collections::HashMap;

/// Anything that can go wrong in a CLI invocation.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line; the string is a usage message.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Input data was malformed or columns were missing.
    Data(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "{msg}"),
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Data(msg) => write!(f, "data error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Parsed `--key value` flags.
#[derive(Debug, Default)]
pub struct CliArgs {
    values: HashMap<String, String>,
}

impl CliArgs {
    /// Parse flags; every flag must have a value.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for positional arguments or dangling flags.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut values = HashMap::new();
        let mut iter = argv.iter();
        while let Some(arg) = iter.next() {
            let key = arg.strip_prefix("--").ok_or_else(|| {
                CliError::Usage(format!(
                    "unexpected argument '{arg}' (expected --flag value)"
                ))
            })?;
            let value = iter
                .next()
                .ok_or_else(|| CliError::Usage(format!("flag --{key} is missing a value")))?;
            values.insert(key.to_string(), value.clone());
        }
        Ok(Self { values })
    }

    /// Required string flag.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when absent.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required flag --{key}")))
    }

    /// Optional string flag.
    #[must_use]
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Optional typed flag with a default.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] when present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map_err(|e| CliError::Usage(format!("--{key} {v}: {e}"))),
            None => Ok(default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flags() {
        let a = CliArgs::parse(&argv("--dir data --sketch-size 128")).unwrap();
        assert_eq!(a.required("dir").unwrap(), "data");
        assert_eq!(a.parse_or("sketch-size", 0usize).unwrap(), 128);
        assert_eq!(a.parse_or("missing", 42usize).unwrap(), 42);
        assert!(a.optional("nope").is_none());
    }

    #[test]
    fn rejects_positional_and_dangling() {
        assert!(matches!(
            CliArgs::parse(&argv("positional")),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            CliArgs::parse(&argv("--flag")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn missing_required_flag_is_usage_error() {
        let a = CliArgs::parse(&argv("--x 1")).unwrap();
        assert!(matches!(a.required("dir"), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_typed_value_is_usage_error() {
        let a = CliArgs::parse(&argv("--k lots")).unwrap();
        assert!(matches!(a.parse_or("k", 1usize), Err(CliError::Usage(_))));
    }
}
