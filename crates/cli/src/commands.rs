//! The subcommands. Each returns its rendered report as a `String` so
//! the binary stays a thin printing shell and the integration tests can
//! assert on outputs directly.

use std::fmt::Write as _;
use std::path::Path;

use correlation_sketches::{join_sketches, CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_stats::CorrelationEstimator;
use sketch_table::{Aggregation, Table};

use crate::cli::{CliArgs, CliError};

fn load_table(path: &str) -> Result<Table, CliError> {
    let text = std::fs::read_to_string(path)?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    Table::from_csv(name, &text).map_err(|e| CliError::Data(format!("{path}: {e}")))
}

/// Render a store-layer failure (I/O with path, or a typed corruption
/// reason) as a data error.
fn store_err(e: sketch_store::StoreError) -> CliError {
    CliError::Data(e.to_string())
}

/// Sketch every `⟨categorical, numeric⟩` column pair of every `.csv`
/// file in a directory, in sorted path order. Returns the sketches plus
/// the table count.
fn sketch_csv_dir(
    dir: &str,
    builder: &SketchBuilder,
) -> Result<(Vec<CorrelationSketch>, usize), CliError> {
    let mut csvs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
        .collect();
    csvs.sort();
    if csvs.is_empty() {
        return Err(CliError::Data(format!("no .csv files in {dir}")));
    }
    let mut sketches = Vec::new();
    for path in &csvs {
        let table = load_table(path.to_str().expect("utf-8 path"))?;
        for pair in table.column_pairs() {
            sketches.push(builder.build(&pair));
        }
    }
    Ok((sketches, csvs.len()))
}

fn sketch_config(args: &CliArgs, default_size: usize) -> Result<SketchConfig, CliError> {
    let size = args.parse_or("sketch-size", default_size)?;
    let aggregation: Aggregation = args
        .optional("aggregation")
        .unwrap_or("mean")
        .parse()
        .map_err(CliError::Usage)?;
    let seed = args.parse_or("seed", 0u64)?;
    Ok(SketchConfig::with_size(size)
        .aggregation(aggregation)
        .hasher(sketch_hashing::TupleHasher::new_64(seed)))
}

/// `corrsketch index` — sketch every `⟨categorical, numeric⟩` column pair
/// of every `.csv` file in a directory into a newline-delimited JSON file.
pub mod index {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, unreadable files, or empty corpora.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("dir")?;
        let out = args.required("out")?;
        let config = sketch_config(args, 256)?;
        let builder = SketchBuilder::new(config);

        let (sketches, tables) = sketch_csv_dir(dir, &builder)?;
        let mut lines = String::new();
        let pairs = sketches.len();
        for sketch in &sketches {
            lines.push_str(
                &sketch
                    .to_json()
                    .map_err(|e| CliError::Data(e.to_string()))?,
            );
            lines.push('\n');
        }
        std::fs::write(out, lines)?;
        Ok(format!(
            "indexed {pairs} column pairs from {tables} tables into {out} \
             (sketch size {}, aggregation {})",
            match config.strategy {
                correlation_sketches::SelectionStrategy::FixedSize(n) => n,
                correlation_sketches::SelectionStrategy::Threshold(_) => 0,
            },
            config.aggregation
        ))
    }
}

/// `corrsketch append` — sketch another directory of CSVs and append to
/// an existing index file, reusing its hasher/aggregation configuration
/// so old and new sketches remain joinable.
pub mod append {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, an empty/unreadable index, or
    /// unreadable CSVs.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("dir")?;
        let index_path = args.required("index")?;
        let existing = load_sketches(index_path)?;
        let Some(first) = existing.first() else {
            return Err(CliError::Data(format!(
                "{index_path} contains no sketches; use `corrsketch index` first"
            )));
        };
        let config = SketchConfig {
            strategy: first.strategy(),
            hasher: first.hasher(),
            aggregation: first.aggregation(),
        };
        let builder = SketchBuilder::new(config);

        let mut csvs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
            .collect();
        csvs.sort();
        if csvs.is_empty() {
            return Err(CliError::Data(format!("no .csv files in {dir}")));
        }

        let mut lines = String::new();
        let mut pairs = 0usize;
        for path in &csvs {
            let table = load_table(path.to_str().expect("utf-8 path"))?;
            for pair in table.column_pairs() {
                lines.push_str(
                    &builder
                        .build(&pair)
                        .to_json()
                        .map_err(|e| CliError::Data(e.to_string()))?,
                );
                lines.push('\n');
                pairs += 1;
            }
        }
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(index_path)?;
        file.write_all(lines.as_bytes())?;
        Ok(format!(
            "appended {pairs} column pairs from {} tables to {index_path} \
             ({} sketches total)",
            csvs.len(),
            existing.len() + pairs
        ))
    }
}

/// Load a newline-delimited JSON sketch file.
fn load_sketches(path: &str) -> Result<Vec<CorrelationSketch>, CliError> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            CorrelationSketch::from_json(line).map_err(|e| CliError::Data(format!("{path}: {e}")))
        })
        .collect()
}

/// `corrsketch corpus` — manage packed binary corpus stores (sharded
/// `.cskb` files + manifest; the `sketch-store` crate's format).
pub mod corpus {
    use super::*;
    use sketch_store::{pack_corpus, read_corpus_with_manifest, PackOptions, FORMAT_VERSION};

    /// `corrsketch corpus pack` — pack sketches into a sharded binary
    /// store, either straight from a directory of CSVs (`--dir`) or by
    /// converting an existing newline-delimited JSON index (`--index`).
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing/conflicting flags, unreadable inputs, or
    /// store write failures.
    pub fn pack(args: &CliArgs) -> Result<String, CliError> {
        let out = args.required("out")?;
        let shards = args.parse_or("shards", 8usize)?;
        let threads = args.parse_or("threads", 1usize)?;
        let (sketches, source) = match (args.optional("dir"), args.optional("index")) {
            (Some(dir), None) => {
                let builder = SketchBuilder::new(sketch_config(args, 256)?);
                let (sketches, tables) = sketch_csv_dir(dir, &builder)?;
                (sketches, format!("{tables} tables in {dir}"))
            }
            (None, Some(path)) => (load_sketches(path)?, path.to_string()),
            _ => {
                return Err(CliError::Usage(
                    "corpus pack needs exactly one of --dir <csv-dir> or --index <json-file>"
                        .into(),
                ))
            }
        };
        let manifest = pack_corpus(Path::new(out), &sketches, &PackOptions { shards, threads })
            .map_err(store_err)?;
        Ok(format!(
            "packed {} sketches from {source} into {} shards under {out}",
            manifest.total,
            manifest.shards.len()
        ))
    }

    /// `corrsketch corpus info` — validate a packed store (every
    /// checksum is verified by the full load) and report its shape.
    ///
    /// # Errors
    ///
    /// [`CliError`] on unreadable or corrupt stores.
    pub fn info(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("store")?;
        let threads = args.parse_or("threads", 1usize)?;
        // One load: the reported shape and the verified checksums come
        // from the same manifest read.
        let (manifest, sketches) =
            read_corpus_with_manifest(Path::new(dir), threads).map_err(store_err)?;
        let tuples: usize = sketches.iter().map(CorrelationSketch::len).sum();
        let mem: usize = sketches.iter().map(CorrelationSketch::memory_bytes).sum();
        let mut disk = 0u64;
        let mut out = String::new();
        let _ = writeln!(out, "store {dir} (format v{FORMAT_VERSION}):");
        let _ = writeln!(out, "  sketches        : {}", manifest.total);
        let _ = writeln!(out, "  shards          : {}", manifest.shards.len());
        for s in &manifest.shards {
            let bytes = std::fs::metadata(Path::new(dir).join(&s.file))
                .map(|m| m.len())
                .unwrap_or(0);
            disk += bytes;
            let _ = writeln!(
                out,
                "    {:<20} records={:<6} {:.1} KiB",
                s.file,
                s.count,
                bytes as f64 / 1024.0
            );
        }
        let _ = writeln!(out, "  tuples          : {tuples}");
        let _ = writeln!(out, "  on disk         : {:.1} KiB", disk as f64 / 1024.0);
        let _ = writeln!(out, "  memory (loaded) : {:.1} KiB", mem as f64 / 1024.0);
        let _ = writeln!(
            out,
            "  integrity       : ok (all record checksums verified)"
        );
        Ok(out)
    }
}

/// `corrsketch query` — top-k join-correlation query against an index.
pub mod query {
    use super::*;
    use sketch_index::SketchIndex;
    use sketch_ranking::{features_from_sample, score_candidates, ScoringFunction};

    fn parse_scorer(s: &str) -> Result<ScoringFunction, CliError> {
        ScoringFunction::ALL
            .into_iter()
            .find(|f| f.name() == s)
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown scorer '{s}' (expected one of rp, rp*sez, rb*cib, rp*cih, jc_est)"
                ))
            })
    }

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, a hasher-incompatible index, or
    /// missing query columns.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let table_path = args.required("table")?;
        let key = args.required("key")?;
        let value = args.required("value")?;
        let k = args.parse_or("k", 10usize)?;
        let candidates = args.parse_or("candidates", 100usize)?;
        let threads = args.parse_or("threads", 1usize)?;
        let estimator: CorrelationEstimator = args
            .optional("estimator")
            .unwrap_or("pearson")
            .parse()
            .map_err(CliError::Usage)?;
        // Default to the Fisher-z penalized scorer: the paper's rp*cih
        // normalizes CI lengths *within the candidate list*, which is
        // meaningful for the ~100-candidate lists of the evaluation but
        // degenerate for tiny result sets (the longest-CI candidate is
        // always zeroed). rp*sez penalizes by sample size alone and
        // behaves well at any list size.
        let scorer = parse_scorer(args.optional("scorer").unwrap_or("rp*sez"))?;

        // The corpus can come from the JSON index file or from a packed
        // binary store; both yield the same sketches in the same order,
        // so results are identical either way (tested).
        let (sketches, source) = match (args.optional("index"), args.optional("store")) {
            (Some(path), None) => (load_sketches(path)?, path),
            (None, Some(dir)) => (
                sketch_store::read_corpus(Path::new(dir), threads).map_err(store_err)?,
                dir,
            ),
            _ => {
                return Err(CliError::Usage(
                    "query needs exactly one of --index <json-file> or --store <store-dir>".into(),
                ))
            }
        };
        let Some(first) = sketches.first() else {
            return Err(CliError::Data(format!("{source} contains no sketches")));
        };
        // Reuse the index's full configuration so the query sketch is
        // joinable and comparably sized.
        let config = SketchConfig {
            strategy: first.strategy(),
            hasher: first.hasher(),
            aggregation: first.aggregation(),
        };
        let index =
            SketchIndex::from_sketches(sketches).map_err(|e| CliError::Data(e.to_string()))?;

        let table = load_table(table_path)?;
        let pair = table.column_pair(key, value).ok_or_else(|| {
            CliError::Data(format!(
                "{table_path}: need categorical '{key}' and numeric '{value}' columns \
                 (categorical: {:?}, numeric: {:?})",
                table.categorical_names(),
                table.numeric_names()
            ))
        })?;
        let q_sketch = SketchBuilder::new(config).build(&pair);

        // Retrieve (joins fanned out over --threads workers), featurize,
        // score as a list (ci_h normalization is list-level), then rank.
        let cands = sketch_index::engine::retrieve_candidates_threaded(
            &index, &q_sketch, candidates, threads,
        );
        let features: Vec<_> = cands
            .iter()
            .map(|c| features_from_sample(&q_sketch, c.sketch, &c.sample, None, 0x5eed))
            .collect();
        let scores = score_candidates(&features, scorer);
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

        let mut out = String::new();
        let _ = writeln!(
            out,
            "query {}/{}/{} against {} sketches (scorer {}, estimator {})",
            pair.table,
            key,
            value,
            index.len(),
            scorer.name(),
            estimator.name()
        );
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>6} {:>9} {:>8}",
            "column", "overlap", "n", "estimate", "score"
        );
        for &i in order.iter().take(k) {
            let cand = &cands[i];
            let est = cand
                .sample
                .estimate(estimator)
                .map_or_else(|_| "-".to_string(), |r| format!("{r:+.3}"));
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>6} {:>9} {:>8.3}",
                features[i].id,
                cand.overlap,
                cand.sample.len(),
                est,
                scores[i]
            );
        }
        if order.is_empty() {
            let _ = writeln!(out, "(no joinable columns found)");
        }
        Ok(out)
    }
}

/// `corrsketch estimate` — one-off estimate between two CSV columns,
/// showing every estimator plus the confidence intervals.
pub mod estimate {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags/columns or degenerate samples.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let config = sketch_config(args, 1024)?;
        let builder = SketchBuilder::new(config);

        let mut pairs = Vec::new();
        for side in ["left", "right"] {
            let path = args.required(side)?;
            let key = args.required(&format!("{side}-key"))?;
            let value = args.required(&format!("{side}-value"))?;
            let table = load_table(path)?;
            let pair = table.column_pair(key, value).ok_or_else(|| {
                CliError::Data(format!(
                    "{path}: need categorical '{key}' and numeric '{value}' columns"
                ))
            })?;
            pairs.push(pair);
        }
        let (left, right) = (&pairs[0], &pairs[1]);

        let sample = join_sketches(&builder.build(left), &builder.build(right))
            .map_err(|e| CliError::Data(e.to_string()))?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} ({} rows)  ⨝  {} ({} rows): sketch join sample = {} rows",
            left.id(),
            left.len(),
            right.id(),
            right.len(),
            sample.len()
        );
        if sample.len() < 3 {
            let _ = writeln!(out, "join sample too small for estimation");
            return Ok(out);
        }
        for est in CorrelationEstimator::EXTENDED {
            let _ = writeln!(
                out,
                "  {:<10} {}",
                est.name(),
                sample
                    .estimate(est)
                    .map_or_else(|e| format!("({e})"), |r| format!("{r:+.4}"))
            );
        }
        if let Ok(ci) = sample.hoeffding_ci(0.05) {
            let _ = writeln!(out, "  hoeffding 95% CI: [{:+.3}, {:+.3}]", ci.low, ci.high);
        }
        let _ = writeln!(out, "  fisher-z SE: {:.4}", sample.fisher_se());
        Ok(out)
    }
}

/// `corrsketch inspect` — summary statistics of an index file.
pub mod inspect {
    use super::*;
    use correlation_sketches::distinct_value_estimate;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on unreadable or malformed index files.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let path = args.required("index")?;
        let sketches = load_sketches(path)?;
        let total_entries: usize = sketches.iter().map(CorrelationSketch::len).sum();
        let bytes: usize = sketches.iter().map(CorrelationSketch::memory_bytes).sum();
        let saturated = sketches.iter().filter(|s| s.is_saturated()).count();
        let mut out = String::new();
        let _ = writeln!(out, "index {path}:");
        let _ = writeln!(out, "  sketches        : {}", sketches.len());
        let _ = writeln!(out, "  tuples          : {total_entries}");
        let _ = writeln!(out, "  memory (tuples) : {:.1} KiB", bytes as f64 / 1024.0);
        let _ = writeln!(out, "  saturated       : {saturated}");
        for s in sketches.iter().take(20) {
            let _ = writeln!(
                out,
                "  {:<40} n={:<6} rows={:<8} distinct≈{:.0}",
                s.id(),
                s.len(),
                s.rows_scanned(),
                distinct_value_estimate(s)
            );
        }
        if sketches.len() > 20 {
            let _ = writeln!(out, "  … and {} more", sketches.len() - 20);
        }
        Ok(out)
    }
}
