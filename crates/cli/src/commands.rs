//! The subcommands. Each returns its rendered report as a `String` so
//! the binary stays a thin printing shell and the integration tests can
//! assert on outputs directly.

use std::fmt::Write as _;
use std::path::Path;

use correlation_sketches::{join_sketches, CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_stats::CorrelationEstimator;
use sketch_table::{Aggregation, Table};

use crate::cli::{CliArgs, CliError};

fn load_table(path: &str) -> Result<Table, CliError> {
    let text = std::fs::read_to_string(path)?;
    let name = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(path)
        .to_string();
    Table::from_csv(name, &text).map_err(|e| CliError::Data(format!("{path}: {e}")))
}

/// Render a store-layer failure (I/O with path, or a typed corruption
/// reason) as a data error.
fn store_err(e: sketch_store::StoreError) -> CliError {
    CliError::Data(e.to_string())
}

/// Sketch every `⟨categorical, numeric⟩` column pair of every `.csv`
/// file in a directory, in sorted path order. Returns the sketches plus
/// the table count.
fn sketch_csv_dir(
    dir: &str,
    builder: &SketchBuilder,
) -> Result<(Vec<CorrelationSketch>, usize), CliError> {
    let mut csvs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
        .collect();
    csvs.sort();
    if csvs.is_empty() {
        return Err(CliError::Data(format!("no .csv files in {dir}")));
    }
    let mut sketches = Vec::new();
    for path in &csvs {
        let table = load_table(path.to_str().expect("utf-8 path"))?;
        for pair in table.column_pairs() {
            sketches.push(builder.build(&pair));
        }
    }
    Ok((sketches, csvs.len()))
}

fn sketch_config(args: &CliArgs, default_size: usize) -> Result<SketchConfig, CliError> {
    let size = args.parse_or("sketch-size", default_size)?;
    let aggregation: Aggregation = args
        .optional("aggregation")
        .unwrap_or("mean")
        .parse()
        .map_err(CliError::Usage)?;
    let seed = args.parse_or("seed", 0u64)?;
    Ok(SketchConfig::with_size(size)
        .aggregation(aggregation)
        .hasher(sketch_hashing::TupleHasher::new_64(seed)))
}

/// `corrsketch index` — sketch every `⟨categorical, numeric⟩` column pair
/// of every `.csv` file in a directory into a newline-delimited JSON file.
pub mod index {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, unreadable files, or empty corpora.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("dir")?;
        let out = args.required("out")?;
        let config = sketch_config(args, 256)?;
        let builder = SketchBuilder::new(config);

        let (sketches, tables) = sketch_csv_dir(dir, &builder)?;
        let mut lines = String::new();
        let pairs = sketches.len();
        for sketch in &sketches {
            lines.push_str(
                &sketch
                    .to_json()
                    .map_err(|e| CliError::Data(e.to_string()))?,
            );
            lines.push('\n');
        }
        std::fs::write(out, lines)?;
        Ok(format!(
            "indexed {pairs} column pairs from {tables} tables into {out} \
             (sketch size {}, aggregation {})",
            match config.strategy {
                correlation_sketches::SelectionStrategy::FixedSize(n) => n,
                correlation_sketches::SelectionStrategy::Threshold(_) => 0,
            },
            config.aggregation
        ))
    }
}

/// `corrsketch append` — sketch another directory of CSVs and append to
/// an existing index file, reusing its hasher/aggregation configuration
/// so old and new sketches remain joinable.
pub mod append {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, an empty/unreadable index, or
    /// unreadable CSVs.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("dir")?;
        let index_path = args.required("index")?;
        let existing = load_sketches(index_path)?;
        let Some(first) = existing.first() else {
            return Err(CliError::Data(format!(
                "{index_path} contains no sketches; use `corrsketch index` first"
            )));
        };
        let config = SketchConfig {
            strategy: first.strategy(),
            hasher: first.hasher(),
            aggregation: first.aggregation(),
        };
        let builder = SketchBuilder::new(config);

        let mut csvs: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("csv"))
            .collect();
        csvs.sort();
        if csvs.is_empty() {
            return Err(CliError::Data(format!("no .csv files in {dir}")));
        }

        let mut lines = String::new();
        let mut pairs = 0usize;
        for path in &csvs {
            let table = load_table(path.to_str().expect("utf-8 path"))?;
            for pair in table.column_pairs() {
                lines.push_str(
                    &builder
                        .build(&pair)
                        .to_json()
                        .map_err(|e| CliError::Data(e.to_string()))?,
                );
                lines.push('\n');
                pairs += 1;
            }
        }
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().append(true).open(index_path)?;
        file.write_all(lines.as_bytes())?;
        Ok(format!(
            "appended {pairs} column pairs from {} tables to {index_path} \
             ({} sketches total)",
            csvs.len(),
            existing.len() + pairs
        ))
    }
}

/// Load a newline-delimited JSON sketch file.
fn load_sketches(path: &str) -> Result<Vec<CorrelationSketch>, CliError> {
    let text = std::fs::read_to_string(path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            CorrelationSketch::from_json(line).map_err(|e| CliError::Data(format!("{path}: {e}")))
        })
        .collect()
}

/// `corrsketch corpus` — manage packed binary corpus stores (sharded
/// `.cskb` files + manifest; the `sketch-store` crate's format),
/// including live mutation: `append` and `rm` write delta shards,
/// `compact` folds them back into base shards.
pub mod corpus {
    use super::*;
    use correlation_sketches::DeltaRecord;
    use sketch_store::{
        append_corpus, compact_corpus, pack_corpus, read_corpus_with_manifest, remove_from_corpus,
        Manifest, PackOptions, FORMAT_VERSION,
    };

    /// `corrsketch corpus pack` — pack sketches into a sharded binary
    /// store, either straight from a directory of CSVs (`--dir`) or by
    /// converting an existing newline-delimited JSON index (`--index`).
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing/conflicting flags, unreadable inputs, or
    /// store write failures.
    pub fn pack(args: &CliArgs) -> Result<String, CliError> {
        let out = args.required("out")?;
        let shards = args.parse_or("shards", 8usize)?;
        let threads = args.parse_or("threads", 1usize)?;
        let (sketches, source) = match (args.optional("dir"), args.optional("index")) {
            (Some(dir), None) => {
                let builder = SketchBuilder::new(sketch_config(args, 256)?);
                let (sketches, tables) = sketch_csv_dir(dir, &builder)?;
                (sketches, format!("{tables} tables in {dir}"))
            }
            (None, Some(path)) => (load_sketches(path)?, path.to_string()),
            _ => {
                return Err(CliError::Usage(
                    "corpus pack needs exactly one of --dir <csv-dir> or --index <json-file>"
                        .into(),
                ))
            }
        };
        let manifest = pack_corpus(Path::new(out), &sketches, &PackOptions { shards, threads })
            .map_err(store_err)?;
        Ok(format!(
            "packed {} sketches from {source} into {} shards under {out}",
            manifest.total,
            manifest.shards.len()
        ))
    }

    /// `corrsketch corpus info` — validate a packed store (every
    /// checksum is verified by the full load, delta shards included) and
    /// report its shape, generations, and pending delta records. With
    /// `--json true` the same metadata is emitted as one machine-readable
    /// JSON object (the schema the query server's `GET /corpus` endpoint
    /// nests under `"store"`), for scripts and tooling.
    ///
    /// # Errors
    ///
    /// [`CliError`] on unreadable or corrupt stores.
    pub fn info(args: &CliArgs) -> Result<String, CliError> {
        let dir = args.required("store")?;
        let threads = args.parse_or("threads", 1usize)?;
        // One load: the reported shape and the verified checksums come
        // from the same manifest read.
        let (manifest, sketches) =
            read_corpus_with_manifest(Path::new(dir), threads).map_err(store_err)?;
        let tuples: usize = sketches.iter().map(CorrelationSketch::len).sum();
        let mem: usize = sketches.iter().map(CorrelationSketch::memory_bytes).sum();
        if args.parse_or("json", false)? {
            // The full load above already verified every checksum; the
            // stat re-read only needs the manifest + delta shards.
            let info = sketch_store::stat_corpus(Path::new(dir)).map_err(store_err)?;
            let mut out = String::new();
            out.push_str("{\"store\":");
            correlation_sketches::json::push_string(&mut out, dir);
            let _ = write!(
                out,
                ",\"format_version\":{FORMAT_VERSION},\"integrity\":\"ok\",\
                 \"tuples\":{tuples},\"memory_bytes\":{mem},\"layout\":{}}}",
                info.to_json()
            );
            return Ok(out);
        }
        let base_records: u64 = manifest.shards.iter().map(|s| s.count).sum();
        let mut disk = 0u64;
        let mut out = String::new();
        let _ = writeln!(out, "store {dir} (format v{FORMAT_VERSION}):");
        let _ = writeln!(out, "  sketches (live) : {}", manifest.total);
        let _ = writeln!(
            out,
            "  generation      : {} (base at {})",
            manifest.generation, manifest.base_generation
        );
        let _ = writeln!(out, "  base records    : {base_records}");
        let _ = writeln!(out, "  shards          : {}", manifest.shards.len());
        for s in &manifest.shards {
            let bytes = std::fs::metadata(Path::new(dir).join(&s.file))
                .map(|m| m.len())
                .unwrap_or(0);
            disk += bytes;
            let _ = writeln!(
                out,
                "    {:<20} records={:<6} {:.1} KiB",
                s.file,
                s.count,
                bytes as f64 / 1024.0
            );
        }
        let _ = writeln!(out, "  delta shards    : {}", manifest.deltas.len());
        let mut appends = 0u64;
        let mut tombstones = 0u64;
        for d in &manifest.deltas {
            let path = Path::new(dir).join(&d.file);
            let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            disk += bytes;
            // The full load above already verified every delta checksum;
            // this re-read only tallies the append/tombstone split.
            let records = sketch_store::read_delta_shard(&path).map_err(store_err)?;
            let dead = records
                .iter()
                .filter(|r| matches!(r, DeltaRecord::Tombstone(_)))
                .count() as u64;
            tombstones += dead;
            appends += d.records - dead;
            let _ = writeln!(
                out,
                "    {:<20} records={:<6} tombstones={:<4} gen={:<4} {:.1} KiB",
                d.file,
                d.records,
                dead,
                d.generation,
                bytes as f64 / 1024.0
            );
        }
        if !manifest.deltas.is_empty() {
            let _ = writeln!(
                out,
                "  pending         : {appends} appends, {tombstones} tombstones \
                 (reclaimable by `corpus compact`)"
            );
        }
        let _ = writeln!(out, "  tuples          : {tuples}");
        let _ = writeln!(out, "  on disk         : {:.1} KiB", disk as f64 / 1024.0);
        let _ = writeln!(out, "  memory (loaded) : {:.1} KiB", mem as f64 / 1024.0);
        let _ = writeln!(
            out,
            "  integrity       : ok (all record checksums verified)"
        );
        Ok(out)
    }

    /// The sketch configuration of the store's first record, read from
    /// the first populated manifest-listed shard only — `corpus append`
    /// needs just the configuration up front (the full corpus is loaded
    /// and validated once, inside `append_corpus`), so a whole-store
    /// read here would double the append cost.
    fn store_config(dir: &Path) -> Result<Option<SketchConfig>, CliError> {
        let manifest = Manifest::load(dir).map_err(store_err)?;
        let mut first = None;
        if let Some(s) = manifest.shards.iter().find(|s| s.count > 0) {
            first = sketch_store::read_shard(&dir.join(&s.file))
                .map_err(store_err)?
                .into_iter()
                .next();
        }
        for d in &manifest.deltas {
            if first.is_some() {
                break;
            }
            first = sketch_store::read_delta_shard(&dir.join(&d.file))
                .map_err(store_err)?
                .into_iter()
                .find_map(|r| match r {
                    DeltaRecord::Sketch(s) => Some(s),
                    DeltaRecord::Tombstone(_) => None,
                });
        }
        Ok(first.map(|first| SketchConfig {
            strategy: first.strategy(),
            hasher: first.hasher(),
            aggregation: first.aggregation(),
        }))
    }

    /// `corrsketch corpus append` — sketch more columns (from CSVs or a
    /// JSON index file) and append them to a live store as one delta
    /// shard, without re-packing. CSV inputs reuse the store's sketch
    /// configuration so old and new sketches stay joinable (the store
    /// layer additionally rejects hasher-incompatible appends).
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing/conflicting flags, unreadable inputs,
    /// id collisions with the live corpus, hasher-incompatible appends,
    /// or store write failures.
    pub fn append(args: &CliArgs) -> Result<String, CliError> {
        let store = args.required("store")?;
        let threads = args.parse_or("threads", 1usize)?;
        let (sketches, source) = match (args.optional("dir"), args.optional("index")) {
            (Some(dir), None) => {
                let config = match store_config(Path::new(store))? {
                    Some(config) => config,
                    None => sketch_config(args, 256)?,
                };
                let builder = SketchBuilder::new(config);
                let (sketches, tables) = sketch_csv_dir(dir, &builder)?;
                (sketches, format!("{tables} tables in {dir}"))
            }
            (None, Some(path)) => (load_sketches(path)?, path.to_string()),
            _ => {
                return Err(CliError::Usage(
                    "corpus append needs exactly one of --dir <csv-dir> or --index <json-file>"
                        .into(),
                ))
            }
        };
        let manifest = append_corpus(Path::new(store), &sketches, threads).map_err(store_err)?;
        Ok(format!(
            "appended {} sketches from {source} to {store} \
             (generation {}, {} live sketches)",
            sketches.len(),
            manifest.generation,
            manifest.total
        ))
    }

    /// `corrsketch corpus rm` — tombstone live sketches by id
    /// (comma-separated `--ids`) as one delta shard. The records stay on
    /// disk until `corpus compact` reclaims them.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, ids that are not live, or store
    /// write failures.
    pub fn rm(args: &CliArgs) -> Result<String, CliError> {
        let store = args.required("store")?;
        let threads = args.parse_or("threads", 1usize)?;
        let ids: Vec<String> = args
            .required("ids")?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if ids.is_empty() {
            return Err(CliError::Usage(
                "corpus rm needs --ids <id>[,<id>…] (sketch ids like table/key/value)".into(),
            ));
        }
        let manifest = remove_from_corpus(Path::new(store), &ids, threads).map_err(store_err)?;
        Ok(format!(
            "tombstoned {} sketches in {store} (generation {}, {} live sketches)",
            ids.len(),
            manifest.generation,
            manifest.total
        ))
    }

    /// `corrsketch corpus shard` — partition a packed store's live view
    /// into `--workers` per-worker stores (deterministic contiguous
    /// slices, in live-view order) plus a `partition.cskp` manifest, for
    /// scatter-gather serving: boot one `corrsketch serve` per worker
    /// directory, then a `serve --coordinator` over them. Worker order
    /// in the manifest is the shard order the coordinator must use.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, a zero worker count, unreadable
    /// stores, or write failures.
    pub fn shard(args: &CliArgs) -> Result<String, CliError> {
        let store = args.required("store")?;
        let out = args.required("out")?;
        let workers: usize = args
            .required("workers")?
            .parse()
            .map_err(|e| CliError::Usage(format!("--workers: {e}")))?;
        if workers == 0 {
            return Err(CliError::Usage("--workers must be at least 1".into()));
        }
        let threads = args.parse_or("threads", 1usize)?;
        let manifest =
            sketch_store::shard_corpus(Path::new(store), Path::new(out), workers, threads)
                .map_err(store_err)?;
        let mut report = format!(
            "partitioned {} live sketches of {store} (generation {}) into {} worker stores under {out}:\n",
            manifest.total,
            manifest.source_generation,
            manifest.shards.len()
        );
        for (i, s) in manifest.shards.iter().enumerate() {
            let _ = writeln!(
                report,
                "  shard {i}: {}/{} ({} sketches)",
                out, s.dir, s.count
            );
        }
        Ok(report)
    }

    /// `corrsketch corpus compact` — fold every delta shard back into
    /// freshly packed base shards, reclaiming tombstoned records. Query
    /// results over the store are unchanged; only the layout is.
    ///
    /// # Errors
    ///
    /// [`CliError`] on unreadable/corrupt stores or write failures.
    pub fn compact(args: &CliArgs) -> Result<String, CliError> {
        let store = args.required("store")?;
        let shards = args.parse_or("shards", 8usize)?;
        let threads = args.parse_or("threads", 1usize)?;
        let before = Manifest::load(Path::new(store)).map_err(store_err)?;
        let before_records: u64 = before.shards.iter().map(|s| s.count).sum::<u64>()
            + before.deltas.iter().map(|d| d.records).sum::<u64>();
        let manifest = compact_corpus(Path::new(store), &PackOptions { shards, threads })
            .map_err(store_err)?;
        Ok(format!(
            "compacted {store}: {} records across {} base + {} delta shards -> \
             {} live sketches in {} shards (reclaimed {} records, generation {})",
            before_records,
            before.shards.len(),
            before.deltas.len(),
            manifest.total,
            manifest.shards.len(),
            before_records - manifest.total,
            manifest.generation
        ))
    }
}

/// `corrsketch query` — top-k join-correlation query against an index,
/// ranked by one of the confidence-aware `s1..s4` scorers through the
/// same engine path the server uses.
pub mod query {
    use super::*;
    use sketch_index::{engine, PlanMode, QueryOptions, Scorer, SketchIndex};

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, a hasher-incompatible index, or
    /// missing query columns.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let table_path = args.required("table")?;
        let key = args.required("key")?;
        let value = args.required("value")?;
        let k = args.parse_or("k", 10usize)?;
        let candidates = args.parse_or("candidates", 100usize)?;
        let threads = args.parse_or("threads", 1usize)?;
        let estimator: CorrelationEstimator = args
            .optional("estimator")
            .unwrap_or("pearson")
            .parse()
            .map_err(CliError::Usage)?;
        // Default to s2 (Fisher-z penalization): s4 normalizes CI
        // lengths *within the candidate list*, which is meaningful for
        // the ~100-candidate lists of the evaluation but degenerate for
        // tiny result sets (the longest-CI candidate is always zeroed).
        // s2 penalizes by sample size alone and behaves well at any
        // list size.
        let scorer: Scorer = args
            .optional("scorer")
            .unwrap_or("s2")
            .parse()
            .map_err(CliError::Usage)?;
        let confidence = args.parse_or("confidence", 0.95f64)?;
        if !(confidence > 0.0 && confidence < 1.0) {
            return Err(CliError::Usage(format!(
                "--confidence must be in (0, 1), got {confidence}"
            )));
        }
        // `--plan two-pass[@conf]` prunes on cheap Pearson CIs and
        // spends --estimator only on the contested band; results are
        // identical to exhaustive (the engine's losslessness contract).
        let plan: PlanMode = args
            .optional("plan")
            .unwrap_or("exhaustive")
            .parse()
            .map_err(CliError::Usage)?;

        // The corpus can come from the JSON index file or from a packed
        // binary store; both yield the same sketches in the same order,
        // so results are identical either way (tested).
        let (sketches, source) = match (args.optional("index"), args.optional("store")) {
            (Some(path), None) => (load_sketches(path)?, path),
            (None, Some(dir)) => (
                sketch_store::read_corpus(Path::new(dir), threads).map_err(store_err)?,
                dir,
            ),
            _ => {
                return Err(CliError::Usage(
                    "query needs exactly one of --index <json-file> or --store <store-dir>".into(),
                ))
            }
        };
        let Some(first) = sketches.first() else {
            return Err(CliError::Data(format!("{source} contains no sketches")));
        };
        // Reuse the index's full configuration so the query sketch is
        // joinable and comparably sized.
        let config = SketchConfig {
            strategy: first.strategy(),
            hasher: first.hasher(),
            aggregation: first.aggregation(),
        };
        let index =
            SketchIndex::from_sketches(sketches).map_err(|e| CliError::Data(e.to_string()))?;

        let table = load_table(table_path)?;
        let pair = table.column_pair(key, value).ok_or_else(|| {
            CliError::Data(format!(
                "{table_path}: need categorical '{key}' and numeric '{value}' columns \
                 (categorical: {:?}, numeric: {:?})",
                table.categorical_names(),
                table.numeric_names()
            ))
        })?;
        let q_sketch = SketchBuilder::new(config).build(&pair);

        // The live engine path: retrieve, fused estimate + CI (joins
        // fanned out over --threads workers), re-rank by the scorer.
        let opts = QueryOptions {
            overlap_candidates: candidates,
            k,
            estimator,
            threads,
            scorer,
            confidence,
            plan,
            ..QueryOptions::default()
        };
        let (results, stats) = engine::top_k_with_plan_stats(&index, &q_sketch, &opts);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "query {}/{}/{} against {} sketches (scorer {}, estimator {}, confidence {:.0}%, plan {})",
            pair.table,
            key,
            value,
            index.len(),
            scorer.name(),
            estimator.name(),
            confidence * 100.0,
            plan
        );
        if stats.two_pass {
            let _ = writeln!(
                out,
                "plan: {} candidates, {} cheap CIs, {} pruned, {} {} calls, {} promotion round(s)",
                stats.candidates,
                stats.cheap_invocations,
                stats.pruned,
                stats.expensive_invocations,
                estimator.name(),
                stats.promotion_rounds
            );
        }
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>6} {:>9} {:>17} {:>8}",
            "column", "overlap", "n", "estimate", "ci", "score"
        );
        for r in &results {
            let est = r
                .estimate
                .map_or_else(|| "-".to_string(), |e| format!("{e:+.3}"));
            let ci = match (r.ci_lo, r.ci_hi) {
                (Some(lo), Some(hi)) => format!("[{lo:+.3}, {hi:+.3}]"),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>6} {:>9} {:>17} {:>8.3}",
                r.id, r.overlap, r.sample_size, est, ci, r.score
            );
        }
        if results.is_empty() {
            let _ = writeln!(out, "(no joinable columns found)");
        }
        Ok(out)
    }
}

/// `corrsketch estimate` — one-off estimate between two CSV columns,
/// showing every estimator plus the confidence intervals.
pub mod estimate {
    use super::*;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags/columns or degenerate samples.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let config = sketch_config(args, 1024)?;
        let builder = SketchBuilder::new(config);

        let mut pairs = Vec::new();
        for side in ["left", "right"] {
            let path = args.required(side)?;
            let key = args.required(&format!("{side}-key"))?;
            let value = args.required(&format!("{side}-value"))?;
            let table = load_table(path)?;
            let pair = table.column_pair(key, value).ok_or_else(|| {
                CliError::Data(format!(
                    "{path}: need categorical '{key}' and numeric '{value}' columns"
                ))
            })?;
            pairs.push(pair);
        }
        let (left, right) = (&pairs[0], &pairs[1]);

        let sample = join_sketches(&builder.build(left), &builder.build(right))
            .map_err(|e| CliError::Data(e.to_string()))?;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} ({} rows)  ⨝  {} ({} rows): sketch join sample = {} rows",
            left.id(),
            left.len(),
            right.id(),
            right.len(),
            sample.len()
        );
        if sample.len() < 3 {
            let _ = writeln!(out, "join sample too small for estimation");
            return Ok(out);
        }
        for est in CorrelationEstimator::EXTENDED {
            let _ = writeln!(
                out,
                "  {:<10} {}",
                est.name(),
                sample
                    .estimate(est)
                    .map_or_else(|e| format!("({e})"), |r| format!("{r:+.4}"))
            );
        }
        if let Ok(ci) = sample.hoeffding_ci(0.05) {
            let _ = writeln!(out, "  hoeffding 95% CI: [{:+.3}, {:+.3}]", ci.low, ci.high);
        }
        let _ = writeln!(out, "  fisher-z SE: {:.4}", sample.fisher_se());
        Ok(out)
    }
}

/// `corrsketch serve` — boot the `sketch-server` HTTP query service
/// over a packed corpus store and run until `SIGTERM`/`SIGINT`, then
/// shut down gracefully (in-flight requests finish, workers join, exit
/// code 0).
pub mod serve {
    use super::*;
    use std::time::Duration;

    /// Run the subcommand. Blocks until a termination signal; the bound
    /// address is printed to stdout immediately so scripts can wait for
    /// readiness. With `--workers` (or `--coordinator true`) it boots
    /// the scatter-gather coordinator over already-running worker
    /// servers instead of serving a store directly.
    ///
    /// # Errors
    ///
    /// [`CliError`] on missing flags, unreadable stores, unreachable
    /// workers, or unbindable addresses.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        if args.parse_or("coordinator", false)? || args.optional("workers").is_some() {
            return run_coordinator(args);
        }
        let store = args.required("store")?;
        let mut config = sketch_server::ServerConfig::new(store);
        config.addr = format!(
            "{}:{}",
            args.optional("host").unwrap_or("127.0.0.1"),
            args.parse_or("port", 0u16)?
        );
        config.threads = args.parse_or("threads", 4usize)?;
        config.load_threads = args.parse_or("load-threads", config.threads)?;
        config.cache_capacity = args.parse_or("cache", 1024usize)?;
        config.poll_interval = Duration::from_millis(args.parse_or("poll-ms", 200u64)?);
        config.request_timeout =
            Duration::from_millis(args.parse_or("request-timeout-ms", 10_000u64)?);
        // 0 keeps the slow-query log off (the default); any other value
        // arms always-on internal tracing plus one structured stderr
        // line per request at or over the threshold.
        let slow_ms = args.parse_or("slow-query-ms", 0u64)?;
        config.slow_query = (slow_ms > 0).then(|| Duration::from_millis(slow_ms));
        // Corpus-level ranking defaults: requests that omit "scorer" /
        // "confidence" resolve to these (and they participate in the
        // cache fingerprint exactly like spelled-out values).
        if let Some(scorer) = args.optional("scorer") {
            config.defaults.scorer = scorer.parse().map_err(CliError::Usage)?;
        }
        if let Some(confidence) = args.optional("confidence") {
            let confidence: f64 = confidence
                .parse()
                .map_err(|e| CliError::Usage(format!("--confidence: {e}")))?;
            if !(confidence > 0.0 && confidence < 1.0) {
                return Err(CliError::Usage(format!(
                    "--confidence must be in (0, 1), got {confidence}"
                )));
            }
            config.defaults.confidence = confidence;
        }
        if let Some(plan) = args.optional("plan") {
            config.defaults.plan = plan.parse().map_err(CliError::Usage)?;
        }

        // Handlers must be in place before the (possibly slow) store
        // load: a supervisor's SIGTERM during startup should still take
        // the graceful exit path, not the default disposition.
        sketch_server::signal::install();
        let handle = sketch_server::start(config).map_err(|e| CliError::Data(e.to_string()))?;

        // Readiness goes to stdout *now* — the final report string is
        // only printed at shutdown, and launch scripts poll for this.
        println!(
            "serving {store} at http://{} ({} sketches, generation {})",
            handle.addr(),
            handle.sketches(),
            handle.generation()
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        while !sketch_server::signal::termination_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        let summary = handle.shutdown();
        Ok(format!("graceful shutdown; final stats: {summary}"))
    }

    /// The coordinator mode: fan `/query` and `/query_batch` out over
    /// `--workers` (comma-separated `host:port`, **in partition order**
    /// — the order `corpus shard` wrote them) and merge losslessly.
    fn run_coordinator(args: &CliArgs) -> Result<String, CliError> {
        let workers: Vec<String> = args
            .required("workers")?
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
        if workers.is_empty() {
            return Err(CliError::Usage(
                "--workers needs at least one host:port address".into(),
            ));
        }
        let mut config = sketch_server::CoordinatorConfig::new(workers);
        config.addr = format!(
            "{}:{}",
            args.optional("host").unwrap_or("127.0.0.1"),
            args.parse_or("port", 0u16)?
        );
        config.threads = args.parse_or("threads", 4usize)?;
        config.cache_capacity = args.parse_or("cache", 1024usize)?;
        config.poll_interval = Duration::from_millis(args.parse_or("poll-ms", 200u64)?);
        config.request_timeout =
            Duration::from_millis(args.parse_or("request-timeout-ms", 10_000u64)?);
        config.worker_timeout =
            Duration::from_millis(args.parse_or("worker-timeout-ms", 2_000u64)?);
        config.startup_timeout =
            Duration::from_millis(args.parse_or("startup-timeout-ms", 10_000u64)?);
        let slow_ms = args.parse_or("slow-query-ms", 0u64)?;
        config.slow_query = (slow_ms > 0).then(|| Duration::from_millis(slow_ms));
        if let Some(scorer) = args.optional("scorer") {
            config.defaults.scorer = scorer.parse().map_err(CliError::Usage)?;
        }
        if let Some(confidence) = args.optional("confidence") {
            let confidence: f64 = confidence
                .parse()
                .map_err(|e| CliError::Usage(format!("--confidence: {e}")))?;
            if !(confidence > 0.0 && confidence < 1.0) {
                return Err(CliError::Usage(format!(
                    "--confidence must be in (0, 1), got {confidence}"
                )));
            }
            config.defaults.confidence = confidence;
        }
        if let Some(plan) = args.optional("plan") {
            config.defaults.plan = plan.parse().map_err(CliError::Usage)?;
        }

        sketch_server::signal::install();
        let worker_count = config.workers.len();
        let handle =
            sketch_server::start_coordinator(config).map_err(|e| CliError::Data(e.to_string()))?;

        println!(
            "coordinating {worker_count} workers at http://{} (generations {:?})",
            handle.addr(),
            handle.generations()
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        while !sketch_server::signal::termination_requested() {
            std::thread::sleep(Duration::from_millis(25));
        }
        let summary = handle.shutdown();
        Ok(format!("graceful shutdown; final stats: {summary}"))
    }
}

/// `corrsketch inspect` — summary statistics of an index file.
pub mod inspect {
    use super::*;
    use correlation_sketches::distinct_value_estimate;

    /// Run the subcommand.
    ///
    /// # Errors
    ///
    /// [`CliError`] on unreadable or malformed index files.
    pub fn run(args: &CliArgs) -> Result<String, CliError> {
        let path = args.required("index")?;
        let sketches = load_sketches(path)?;
        let total_entries: usize = sketches.iter().map(CorrelationSketch::len).sum();
        let bytes: usize = sketches.iter().map(CorrelationSketch::memory_bytes).sum();
        let saturated = sketches.iter().filter(|s| s.is_saturated()).count();
        let mut out = String::new();
        let _ = writeln!(out, "index {path}:");
        let _ = writeln!(out, "  sketches        : {}", sketches.len());
        let _ = writeln!(out, "  tuples          : {total_entries}");
        let _ = writeln!(out, "  memory (tuples) : {:.1} KiB", bytes as f64 / 1024.0);
        let _ = writeln!(out, "  saturated       : {saturated}");
        for s in sketches.iter().take(20) {
            let _ = writeln!(
                out,
                "  {:<40} n={:<6} rows={:<8} distinct≈{:.0}",
                s.id(),
                s.len(),
                s.rows_scanned(),
                distinct_value_estimate(s)
            );
        }
        if sketches.len() > 20 {
            let _ = writeln!(out, "  … and {} more", sketches.len() - 20);
        }
        Ok(out)
    }
}
