//! End-to-end CLI tests: write CSV files to a temp dir, index them, query
//! the index, and check the reports.

use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("corrsketch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_lake(dir: &TempDir) {
    // Three tables over a shared day key; pickups ~ 2·demand,
    // rain ~ −demand, noise independent.
    let days: Vec<String> = (0..300).map(|i| format!("d{i:03}")).collect();
    let demand: Vec<f64> = (0..300)
        .map(|i| ((i as f64) * 0.21).sin() * 10.0 + 20.0)
        .collect();

    let mut taxi = String::from("day,pickups\n");
    let mut weather = String::from("day,rain\n");
    let mut noise = String::from("day,reading\n");
    for (i, d) in days.iter().enumerate() {
        taxi.push_str(&format!("{d},{}\n", 2.0 * demand[i]));
        weather.push_str(&format!("{d},{}\n", 30.0 - demand[i]));
        noise.push_str(&format!("{d},{}\n", ((i * 7919) % 100) as f64));
    }
    std::fs::write(dir.path("taxi.csv"), taxi).unwrap();
    std::fs::write(dir.path("weather.csv"), weather).unwrap();
    std::fs::write(dir.path("noise.csv"), noise).unwrap();
}

#[test]
fn index_query_roundtrip() {
    let dir = TempDir::new("roundtrip");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");

    let report = sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--sketch-size",
        "128",
    ]))
    .unwrap();
    assert!(
        report.contains("indexed 3 column pairs from 3 tables"),
        "{report}"
    );

    let report = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "day",
        "--value",
        "pickups",
        "--k",
        "3",
    ]))
    .unwrap();
    // The query column finds itself (r = 1) and the anti-correlated
    // weather column; the noise column must rank last.
    let taxi_pos = report.find("taxi/day/pickups").expect("self match");
    let weather_pos = report.find("weather/day/rain").expect("weather match");
    let noise_pos = report.find("noise/day/reading").expect("noise present");
    assert!(taxi_pos < weather_pos, "{report}");
    assert!(weather_pos < noise_pos, "{report}");
}

#[test]
fn estimate_between_two_files() {
    let dir = TempDir::new("estimate");
    write_lake(&dir);
    let report = sketch_cli::run(&argv(&[
        "estimate",
        "--left",
        &dir.path("taxi.csv"),
        "--left-key",
        "day",
        "--left-value",
        "pickups",
        "--right",
        &dir.path("weather.csv"),
        "--right-key",
        "day",
        "--right-value",
        "rain",
    ]))
    .unwrap();
    assert!(report.contains("join sample = 300 rows"), "{report}");
    // pickups = 2·demand, rain = 30 − demand: perfectly anti-correlated.
    assert!(report.contains("pearson    -1.0000"), "{report}");
    assert!(report.contains("hoeffding 95% CI"), "{report}");
    assert!(report.contains("kendall"), "{report}");
}

#[test]
fn inspect_reports_index_stats() {
    let dir = TempDir::new("inspect");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
    ]))
    .unwrap();
    let report = sketch_cli::run(&argv(&["inspect", "--index", &index_file])).unwrap();
    assert!(report.contains("sketches        : 3"), "{report}");
    assert!(report.contains("taxi/day/pickups"), "{report}");
}

#[test]
fn append_extends_an_index_compatibly() {
    let dir = TempDir::new("append");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--seed",
        "7",
    ]))
    .unwrap();

    // Second batch in a sub-directory with an extra correlated table.
    let sub = dir.path("more");
    std::fs::create_dir_all(&sub).unwrap();
    let days: Vec<String> = (0..300).map(|i| format!("d{i:03}")).collect();
    let mut extra = String::from("day,events\n");
    for (i, d) in days.iter().enumerate() {
        extra.push_str(&format!(
            "{d},{}\n",
            ((i as f64) * 0.21).sin() * 10.0 + 20.0
        ));
    }
    std::fs::write(format!("{sub}/events.csv"), extra).unwrap();

    let report =
        sketch_cli::run(&argv(&["append", "--dir", &sub, "--index", &index_file])).unwrap();
    assert!(report.contains("appended 1 column pairs"), "{report}");
    assert!(report.contains("4 sketches total"), "{report}");

    // The appended sketch must be joinable with the originals: querying
    // taxi must now surface the new events column with a real estimate.
    let report = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "day",
        "--value",
        "pickups",
        "--k",
        "4",
    ]))
    .unwrap();
    assert!(report.contains("events/day/events"), "{report}");
}

#[test]
fn helpful_errors() {
    assert!(sketch_cli::run(&argv(&["frobnicate"])).is_err());
    assert!(sketch_cli::run(&[]).is_err());
    let help = sketch_cli::run(&argv(&["help"])).unwrap();
    assert!(help.contains("USAGE"));

    // Missing flags.
    let err = sketch_cli::run(&argv(&["index", "--dir", "/nonexistent"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("--out"), "{err}");

    // Nonexistent directory.
    let err = sketch_cli::run(&argv(&[
        "index",
        "--dir",
        "/nonexistent-dir-xyz",
        "--out",
        "/tmp/x",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("I/O"), "{err}");
}

#[test]
fn query_rejects_wrong_columns() {
    let dir = TempDir::new("wrongcols");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
    ]))
    .unwrap();
    let err = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "pickups", // numeric, not categorical
        "--value",
        "day",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("categorical"), "{err}");
}
