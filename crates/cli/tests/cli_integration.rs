//! End-to-end CLI tests: write CSV files to a temp dir, index them, query
//! the index, and check the reports.

use std::path::PathBuf;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| (*s).to_string()).collect()
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("corrsketch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_str().unwrap().to_string()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn write_lake(dir: &TempDir) {
    // Three tables over a shared day key; pickups ~ 2·demand,
    // rain ~ −demand, noise independent.
    let days: Vec<String> = (0..300).map(|i| format!("d{i:03}")).collect();
    let demand: Vec<f64> = (0..300)
        .map(|i| ((i as f64) * 0.21).sin() * 10.0 + 20.0)
        .collect();

    let mut taxi = String::from("day,pickups\n");
    let mut weather = String::from("day,rain\n");
    let mut noise = String::from("day,reading\n");
    for (i, d) in days.iter().enumerate() {
        taxi.push_str(&format!("{d},{}\n", 2.0 * demand[i]));
        weather.push_str(&format!("{d},{}\n", 30.0 - demand[i]));
        noise.push_str(&format!("{d},{}\n", ((i * 7919) % 100) as f64));
    }
    std::fs::write(dir.path("taxi.csv"), taxi).unwrap();
    std::fs::write(dir.path("weather.csv"), weather).unwrap();
    std::fs::write(dir.path("noise.csv"), noise).unwrap();
}

#[test]
fn index_query_roundtrip() {
    let dir = TempDir::new("roundtrip");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");

    let report = sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--sketch-size",
        "128",
    ]))
    .unwrap();
    assert!(
        report.contains("indexed 3 column pairs from 3 tables"),
        "{report}"
    );

    let report = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "day",
        "--value",
        "pickups",
        "--k",
        "3",
    ]))
    .unwrap();
    // The query column finds itself (r = 1) and the anti-correlated
    // weather column; the noise column must rank last.
    let taxi_pos = report.find("taxi/day/pickups").expect("self match");
    let weather_pos = report.find("weather/day/rain").expect("weather match");
    let noise_pos = report.find("noise/day/reading").expect("noise present");
    assert!(taxi_pos < weather_pos, "{report}");
    assert!(weather_pos < noise_pos, "{report}");
}

#[test]
fn query_scorer_and_confidence_flags() {
    let dir = TempDir::new("scored-query");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--sketch-size",
        "128",
    ]))
    .unwrap();

    let table = dir.path("taxi.csv");
    let query_with = |extra: &[&str]| {
        let mut a = vec![
            "query",
            "--index",
            &index_file,
            "--table",
            &table,
            "--key",
            "day",
            "--value",
            "pickups",
        ];
        a.extend_from_slice(extra);
        sketch_cli::run(&argv(&a))
    };

    // Every scorer answers, reports its name, and renders CI columns;
    // the self-match stays on top for all of them (it has both the
    // strongest estimate and the largest sample).
    for scorer in ["s1", "s2", "s3", "s4"] {
        let report = query_with(&["--scorer", scorer, "--confidence", "0.9"]).unwrap();
        assert!(
            report.contains(&format!("scorer {scorer}")),
            "{scorer}: {report}"
        );
        assert!(report.contains("confidence 90%"), "{report}");
        assert!(report.contains("ci"), "{report}");
        let self_pos = report.find("taxi/day/pickups").expect("self match");
        let noise_pos = report.find("noise/day/reading").expect("noise");
        assert!(self_pos < noise_pos, "{scorer}: {report}");
        // CI endpoints render as a bracketed pair.
        assert!(report.contains('['), "{report}");
    }
    // Paper alias accepted.
    let report = query_with(&["--scorer", "rp*cih"]).unwrap();
    assert!(report.contains("scorer s4"), "{report}");

    // Bad values are usage errors, not panics.
    let err = query_with(&["--scorer", "s9"]).unwrap_err();
    assert!(err.to_string().contains("scorer"), "{err}");
    let err = query_with(&["--confidence", "1.5"]).unwrap_err();
    assert!(err.to_string().contains("confidence"), "{err}");
}

#[test]
fn estimate_between_two_files() {
    let dir = TempDir::new("estimate");
    write_lake(&dir);
    let report = sketch_cli::run(&argv(&[
        "estimate",
        "--left",
        &dir.path("taxi.csv"),
        "--left-key",
        "day",
        "--left-value",
        "pickups",
        "--right",
        &dir.path("weather.csv"),
        "--right-key",
        "day",
        "--right-value",
        "rain",
    ]))
    .unwrap();
    assert!(report.contains("join sample = 300 rows"), "{report}");
    // pickups = 2·demand, rain = 30 − demand: perfectly anti-correlated.
    assert!(report.contains("pearson    -1.0000"), "{report}");
    assert!(report.contains("hoeffding 95% CI"), "{report}");
    assert!(report.contains("kendall"), "{report}");
}

#[test]
fn inspect_reports_index_stats() {
    let dir = TempDir::new("inspect");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
    ]))
    .unwrap();
    let report = sketch_cli::run(&argv(&["inspect", "--index", &index_file])).unwrap();
    assert!(report.contains("sketches        : 3"), "{report}");
    assert!(report.contains("taxi/day/pickups"), "{report}");
}

#[test]
fn append_extends_an_index_compatibly() {
    let dir = TempDir::new("append");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--seed",
        "7",
    ]))
    .unwrap();

    // Second batch in a sub-directory with an extra correlated table.
    let sub = dir.path("more");
    std::fs::create_dir_all(&sub).unwrap();
    let days: Vec<String> = (0..300).map(|i| format!("d{i:03}")).collect();
    let mut extra = String::from("day,events\n");
    for (i, d) in days.iter().enumerate() {
        extra.push_str(&format!(
            "{d},{}\n",
            ((i as f64) * 0.21).sin() * 10.0 + 20.0
        ));
    }
    std::fs::write(format!("{sub}/events.csv"), extra).unwrap();

    let report =
        sketch_cli::run(&argv(&["append", "--dir", &sub, "--index", &index_file])).unwrap();
    assert!(report.contains("appended 1 column pairs"), "{report}");
    assert!(report.contains("4 sketches total"), "{report}");

    // The appended sketch must be joinable with the originals: querying
    // taxi must now surface the new events column with a real estimate.
    let report = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "day",
        "--value",
        "pickups",
        "--k",
        "4",
    ]))
    .unwrap();
    assert!(report.contains("events/day/events"), "{report}");
}

#[test]
fn helpful_errors() {
    assert!(sketch_cli::run(&argv(&["frobnicate"])).is_err());
    assert!(sketch_cli::run(&[]).is_err());
    let help = sketch_cli::run(&argv(&["help"])).unwrap();
    assert!(help.contains("USAGE"));

    // Missing flags.
    let err = sketch_cli::run(&argv(&["index", "--dir", "/nonexistent"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("--out"), "{err}");

    // Nonexistent directory.
    let err = sketch_cli::run(&argv(&[
        "index",
        "--dir",
        "/nonexistent-dir-xyz",
        "--out",
        "/tmp/x",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("I/O"), "{err}");
}

#[test]
fn query_rejects_wrong_columns() {
    let dir = TempDir::new("wrongcols");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
    ]))
    .unwrap();
    let err = sketch_cli::run(&argv(&[
        "query",
        "--index",
        &index_file,
        "--table",
        &dir.path("taxi.csv"),
        "--key",
        "pickups", // numeric, not categorical
        "--value",
        "day",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("categorical"), "{err}");
}

#[test]
fn corpus_pack_info_query_roundtrip() {
    let dir = TempDir::new("corpus-pack");
    write_lake(&dir);
    let store_dir = dir.path("store");

    // Pack straight from the CSV directory.
    let report = sketch_cli::run(&argv(&[
        "corpus",
        "pack",
        "--dir",
        &dir.path(""),
        "--out",
        &store_dir,
        "--shards",
        "2",
        "--threads",
        "2",
        "--sketch-size",
        "128",
    ]))
    .unwrap();
    assert!(report.contains("packed 3 sketches"), "{report}");
    assert!(report.contains("2 shards"), "{report}");

    // Info validates every checksum and reports the shape.
    let info = sketch_cli::run(&argv(&["corpus", "info", "--store", &store_dir])).unwrap();
    assert!(info.contains("sketches (live) : 3"), "{info}");
    assert!(info.contains("shard-0000.cskb"), "{info}");
    assert!(info.contains("generation      : 0"), "{info}");
    assert!(info.contains("integrity       : ok"), "{info}");

    // --json true: the same metadata, machine-readable.
    let json = sketch_cli::run(&argv(&[
        "corpus", "info", "--store", &store_dir, "--json", "true",
    ]))
    .unwrap();
    let v = correlation_sketches::json::parse(&json).unwrap();
    let obj = v.as_object("info").unwrap();
    assert_eq!(
        obj.get("integrity").unwrap().as_str("i").unwrap(),
        "ok",
        "{json}"
    );
    assert!(obj.get("tuples").unwrap().as_u64("t").unwrap() > 0);
    let layout = obj.get("layout").unwrap().as_object("layout").unwrap();
    assert_eq!(layout.get("generation").unwrap().as_u64("g").unwrap(), 0);
    assert_eq!(layout.get("live").unwrap().as_u64("live").unwrap(), 3);
    assert_eq!(
        layout
            .get("shards")
            .unwrap()
            .as_array("shards")
            .unwrap()
            .len(),
        2
    );

    // Query the packed store; the ranking must match the JSON path.
    let query = |source: &[&str]| {
        let mut cmd = [
            "query",
            "--table",
            &dir.path("taxi.csv"),
            "--key",
            "day",
            "--value",
            "pickups",
            "--k",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>();
        cmd.extend(source.iter().map(|s| s.to_string()));
        sketch_cli::run(&cmd).unwrap()
    };
    let from_store = query(&["--store", &store_dir]);
    let taxi = from_store.find("taxi/day/pickups").expect("self match");
    let weather = from_store.find("weather/day/rain").expect("weather");
    let noise = from_store.find("noise/day/reading").expect("noise");
    assert!(taxi < weather && weather < noise, "{from_store}");
}

#[test]
fn corpus_pack_from_json_index_is_equivalent() {
    let dir = TempDir::new("corpus-convert");
    write_lake(&dir);
    let index_file = dir.path("lake.sketches");
    let store_dir = dir.path("store");
    sketch_cli::run(&argv(&[
        "index",
        "--dir",
        &dir.path(""),
        "--out",
        &index_file,
        "--sketch-size",
        "128",
    ]))
    .unwrap();
    sketch_cli::run(&argv(&[
        "corpus",
        "pack",
        "--index",
        &index_file,
        "--out",
        &store_dir,
    ]))
    .unwrap();

    // Same corpus, same order -> byte-identical query reports, except the
    // header line naming the source.
    let query = |source: &[&str]| {
        let mut cmd: Vec<String> = argv(&[
            "query",
            "--table",
            &dir.path("taxi.csv"),
            "--key",
            "day",
            "--value",
            "pickups",
        ]);
        cmd.extend(source.iter().map(|s| s.to_string()));
        sketch_cli::run(&cmd).unwrap()
    };
    let via_json = query(&["--index", &index_file]);
    let via_store = query(&["--store", &store_dir]);
    assert_eq!(via_json, via_store);
}

/// The mutable-corpus round trip: append → query --store → rm → compact,
/// with query reports asserted byte-identical before and after the
/// compaction, and the compaction reclaiming every tombstoned record.
#[test]
fn corpus_append_rm_compact_roundtrip() {
    let dir = TempDir::new("corpus-mutate");
    write_lake(&dir);
    let store_dir = dir.path("store");
    sketch_cli::run(&argv(&[
        "corpus",
        "pack",
        "--dir",
        &dir.path(""),
        "--out",
        &store_dir,
        "--shards",
        "2",
        "--sketch-size",
        "128",
    ]))
    .unwrap();

    // Append a fourth, correlated table from a sub-directory. The
    // sketch configuration is inherited from the store, so no
    // --sketch-size is needed (or allowed to disagree).
    let sub = dir.path("more");
    std::fs::create_dir_all(&sub).unwrap();
    let mut extra = String::from("day,events\n");
    for i in 0..300 {
        extra.push_str(&format!(
            "d{i:03},{}\n",
            ((i as f64) * 0.21).sin() * 10.0 + 20.0
        ));
    }
    std::fs::write(format!("{sub}/events.csv"), extra).unwrap();
    let report = sketch_cli::run(&argv(&[
        "corpus", "append", "--store", &store_dir, "--dir", &sub,
    ]))
    .unwrap();
    assert!(report.contains("appended 1 sketches"), "{report}");
    assert!(report.contains("generation 1"), "{report}");
    assert!(report.contains("4 live sketches"), "{report}");

    let query = || {
        sketch_cli::run(&argv(&[
            "query",
            "--store",
            &store_dir,
            "--table",
            &dir.path("taxi.csv"),
            "--key",
            "day",
            "--value",
            "pickups",
            "--k",
            "5",
        ]))
        .unwrap()
    };
    // The appended column is queryable immediately, no re-pack needed.
    assert!(query().contains("events/day/events"), "{}", query());

    // Tombstone the noise column; it must vanish from results while the
    // record still sits in the store (reclaimed only by compact).
    let report = sketch_cli::run(&argv(&[
        "corpus",
        "rm",
        "--store",
        &store_dir,
        "--ids",
        "noise/day/reading",
    ]))
    .unwrap();
    assert!(report.contains("tombstoned 1 sketches"), "{report}");
    assert!(report.contains("3 live sketches"), "{report}");
    let after_rm = query();
    assert!(!after_rm.contains("noise/day/reading"), "{after_rm}");

    // Info shows the pending delta records before compaction.
    let info = sketch_cli::run(&argv(&["corpus", "info", "--store", &store_dir])).unwrap();
    assert!(info.contains("sketches (live) : 3"), "{info}");
    assert!(info.contains("generation      : 2"), "{info}");
    assert!(info.contains("delta shards    : 2"), "{info}");
    assert!(
        info.contains("pending         : 1 appends, 1 tombstones"),
        "{info}"
    );

    // The JSON view carries the same generation/tombstone metadata.
    let json = sketch_cli::run(&argv(&[
        "corpus", "info", "--store", &store_dir, "--json", "true",
    ]))
    .unwrap();
    let v = correlation_sketches::json::parse(&json).unwrap();
    let layout = v
        .as_object("info")
        .unwrap()
        .get("layout")
        .unwrap()
        .as_object("layout")
        .unwrap();
    assert_eq!(layout.get("generation").unwrap().as_u64("g").unwrap(), 2);
    assert_eq!(
        layout
            .get("pending_tombstones")
            .unwrap()
            .as_u64("t")
            .unwrap(),
        1
    );
    assert_eq!(
        layout.get("pending_appends").unwrap().as_u64("a").unwrap(),
        1
    );
    assert_eq!(
        layout
            .get("deltas")
            .unwrap()
            .as_array("deltas")
            .unwrap()
            .len(),
        2
    );

    // Compact: the report is byte-identical before and after, and info
    // shows every tombstoned record reclaimed.
    let report = sketch_cli::run(&argv(&["corpus", "compact", "--store", &store_dir])).unwrap();
    assert!(report.contains("reclaimed 2 records"), "{report}");
    let after_compact = query();
    assert_eq!(
        after_rm, after_compact,
        "compaction must not change reports"
    );
    let info = sketch_cli::run(&argv(&["corpus", "info", "--store", &store_dir])).unwrap();
    assert!(info.contains("sketches (live) : 3"), "{info}");
    assert!(info.contains("base records    : 3"), "{info}");
    assert!(info.contains("delta shards    : 0"), "{info}");
    assert!(info.contains("generation      : 3 (base at 3)"), "{info}");
    assert!(!info.contains("pending"), "{info}");
}

/// Mutation error paths stay typed and readable at the CLI surface.
#[test]
fn corpus_mutation_errors_are_usable() {
    let dir = TempDir::new("corpus-mutate-errs");
    write_lake(&dir);
    let store_dir = dir.path("store");
    sketch_cli::run(&argv(&[
        "corpus",
        "pack",
        "--dir",
        &dir.path(""),
        "--out",
        &store_dir,
    ]))
    .unwrap();

    // Appending a column that is already live names the duplicate id.
    let err = sketch_cli::run(&argv(&[
        "corpus",
        "append",
        "--store",
        &store_dir,
        "--dir",
        &dir.path(""),
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("duplicate sketch id"), "{err}");

    // Removing an unknown id names it.
    let err = sketch_cli::run(&argv(&[
        "corpus",
        "rm",
        "--store",
        &store_dir,
        "--ids",
        "ghost/day/x",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("tombstone for unknown sketch id"), "{err}");
    assert!(err.contains("ghost/day/x"), "{err}");

    // A store whose manifest references a deleted shard file reports the
    // typed missing-shard reason, not a bare I/O error.
    std::fs::remove_file(std::path::Path::new(&store_dir).join("shard-0000.cskb")).unwrap();
    let err = sketch_cli::run(&argv(&["corpus", "info", "--store", &store_dir]))
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("shard-0000.cskb") && err.contains("missing"),
        "{err}"
    );
}

#[test]
fn corpus_command_errors_are_usable() {
    // Missing subcommand.
    let err = sketch_cli::run(&argv(&["corpus"])).unwrap_err().to_string();
    assert!(err.contains("pack | info"), "{err}");
    // Unknown subcommand.
    let err = sketch_cli::run(&argv(&["corpus", "shrink"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("shrink"), "{err}");
    // pack needs exactly one source.
    let err = sketch_cli::run(&argv(&["corpus", "pack", "--out", "/tmp/x"]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("--dir") && err.contains("--index"), "{err}");
    // query refuses both sources at once.
    let err = sketch_cli::run(&argv(&[
        "query", "--index", "a", "--store", "b", "--table", "t.csv", "--key", "k", "--value", "v",
    ]))
    .unwrap_err()
    .to_string();
    assert!(err.contains("exactly one"), "{err}");
}

#[test]
fn corrupt_store_fails_with_typed_reason() {
    let dir = TempDir::new("corpus-corrupt");
    write_lake(&dir);
    let store_dir = dir.path("store");
    sketch_cli::run(&argv(&[
        "corpus",
        "pack",
        "--dir",
        &dir.path(""),
        "--out",
        &store_dir,
        "--shards",
        "1",
    ]))
    .unwrap();
    // Flip a byte inside the shard; info must fail with the checksum
    // diagnosis, not a panic or a silent partial load.
    let shard = std::path::Path::new(&store_dir).join("shard-0000.cskb");
    let mut bytes = std::fs::read(&shard).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&shard, bytes).unwrap();
    let err = sketch_cli::run(&argv(&["corpus", "info", "--store", &store_dir]))
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("checksum") || err.contains("truncated") || err.contains("corrupt"),
        "{err}"
    );
}

/// `query --store` against a directory that is not a store must exit
/// with the typed "not a packed store" message, never a raw
/// `No such file or directory` I/O string.
#[test]
fn query_missing_or_empty_store_is_typed() {
    let dir = TempDir::new("missing-store");
    write_lake(&dir);
    let query_against = |store: &str| {
        sketch_cli::run(&argv(&[
            "query",
            "--store",
            store,
            "--table",
            &dir.path("taxi.csv"),
            "--key",
            "day",
            "--value",
            "pickups",
        ]))
        .unwrap_err()
        .to_string()
    };

    // A directory that does not exist at all.
    let err = query_against(&dir.path("never-created"));
    assert!(err.contains("manifest.cskm"), "{err}");
    assert!(err.contains("not a packed store"), "{err}");
    assert!(!err.contains("os error"), "{err}");

    // An existing but empty directory.
    let empty = dir.path("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let err = query_against(&empty);
    assert!(err.contains("not a packed store"), "{err}");
    assert!(!err.contains("os error"), "{err}");

    // `corpus info` reports the same typed reason.
    let err = sketch_cli::run(&argv(&["corpus", "info", "--store", &empty]))
        .unwrap_err()
        .to_string();
    assert!(err.contains("not a packed store"), "{err}");
}
