//! Risk-aware ranking for join-correlation queries (paper Section 4) and
//! the ranking evaluation harness (Section 5.4).
//!
//! In a large corpus there are many more uncorrelated columns than
//! correlated ones, so raw correlation estimates produce false positives
//! "simply by chance". The paper's fix is the scoring framework
//! `score = |r̂| · (1 − risk)` (Eq. 5), with risk measured by Fisher's z
//! standard error, a bootstrap confidence interval, or the new Hoeffding
//! interval. This crate implements:
//!
//! * [`scored`] — the live query path's `s1..s4` scorers over
//!   confidence-aware estimates ([`sketch_stats::ScoredEstimate`]:
//!   estimate + estimator-matched CI), consumed by the
//!   `sketch-index` engine, the server, and the CLI;
//! * [`scoring`] — candidate feature extraction and the scoring functions
//!   `s1 = r_p`, `s2 = r_p·se_z`, `s3 = r_b·ci_b`, `s4 = r_p·ci_h`, plus
//!   the `jc` (exact Jaccard containment), `ĵc` (sketch-estimated
//!   containment) and `random` baselines;
//! * [`evaluation`] — the experiment harness that replays Section 5.4:
//!   for every query column, rank all joinable corpus columns with every
//!   scorer and measure MAP (r > 0.75, r > 0.5) and nDCG@{5, 10} against
//!   the ground-truth after-join correlations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evaluation;
pub mod scored;
pub mod scoring;

pub use evaluation::{run_ranking_experiment, QueryOutcome, RankingConfig, RankingReport};
pub use scored::{score_bounds, score_estimates, Scorer};
pub use scoring::{
    desc_score_nan_last, extract_features, features_from_sample, rank_candidates, score_candidates,
    CandidateFeatures, ScoringFunction,
};
