//! The ranking evaluation harness (paper Section 5.4, Table 1, Figure 5).
//!
//! For every query column pair: retrieve all joinable corpus pairs,
//! compute the ground-truth after-join correlation (the relevance grade),
//! rank the candidates with every scoring function, and measure MAP and
//! nDCG against the ground truth.

use std::collections::HashMap;

use correlation_sketches::{CorrelationSketch, SketchBuilder, SketchConfig};
use sketch_stats::{average_precision, mean, ndcg_at_k, pearson};
use sketch_table::{exact_join, Aggregation, ColumnPair};

use crate::scoring::{extract_features, score_candidates, CandidateFeatures, ScoringFunction};

/// Configuration of a ranking experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RankingConfig {
    /// Maximum sketch size (paper Section 5.2 uses 256 for accuracy plots;
    /// Section 5.5 uses 1024 for the query-latency study).
    pub sketch_size: usize,
    /// Minimum ground-truth join size for a corpus pair to count as
    /// joinable with the query.
    pub min_overlap: usize,
    /// MAP relevance thresholds (Table 1 uses 0.75 and 0.50).
    pub map_thresholds: (f64, f64),
    /// nDCG cutoffs (Table 1 uses 5 and 10).
    pub ndcg_ks: (usize, usize),
    /// Aggregation for repeated keys.
    pub aggregation: Aggregation,
    /// Seed for the PM1 bootstrap and the random baseline.
    pub seed: u64,
}

impl Default for RankingConfig {
    fn default() -> Self {
        Self {
            sketch_size: 256,
            min_overlap: 3,
            map_thresholds: (0.75, 0.50),
            ndcg_ks: (5, 10),
            aggregation: Aggregation::Mean,
            seed: 0x7a_11,
        }
    }
}

/// Metrics of one scorer on one query's ranked list. `None` when the
/// metric is undefined for the query (e.g. no relevant candidate for
/// MAP, all-zero gains for nDCG) — such queries are excluded from that
/// metric's average, trec-style.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QueryMetrics {
    /// MAP at the high relevance threshold (`r > 0.75`).
    pub map_high: Option<f64>,
    /// MAP at the mid relevance threshold (`r > 0.50`).
    pub map_mid: Option<f64>,
    /// nDCG at the first cutoff (5).
    pub ndcg_a: Option<f64>,
    /// nDCG at the second cutoff (10).
    pub ndcg_b: Option<f64>,
}

/// Outcome of one query: the candidate set size and per-scorer metrics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Query column pair identifier.
    pub query_id: String,
    /// Number of joinable candidates ranked.
    pub candidates: usize,
    /// Metrics per scoring function (in [`ScoringFunction::ALL`] order).
    pub metrics: Vec<(ScoringFunction, QueryMetrics)>,
}

/// Aggregated report over all queries.
#[derive(Debug, Clone)]
pub struct RankingReport {
    /// Per-query outcomes (Figure 5 histograms are built from these).
    pub per_query: Vec<QueryOutcome>,
}

/// Aggregate (mean) metrics for one scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScorerSummary {
    /// The scorer.
    pub scorer: ScoringFunction,
    /// Mean MAP (`r > 0.75`) over queries where defined.
    pub map_high: f64,
    /// Mean MAP (`r > 0.50`).
    pub map_mid: f64,
    /// Mean nDCG@5.
    pub ndcg_a: f64,
    /// Mean nDCG@10.
    pub ndcg_b: f64,
}

impl RankingReport {
    /// Mean metrics per scorer (the numbers of Table 1).
    #[must_use]
    pub fn summaries(&self) -> Vec<ScorerSummary> {
        ScoringFunction::ALL
            .iter()
            .map(|&scorer| {
                let collect = |f: fn(&QueryMetrics) -> Option<f64>| -> f64 {
                    let vals: Vec<f64> = self
                        .per_query
                        .iter()
                        .filter_map(|q| {
                            q.metrics
                                .iter()
                                .find(|(s, _)| s.name() == scorer.name())
                                .and_then(|(_, m)| f(m))
                        })
                        .collect();
                    mean(&vals)
                };
                ScorerSummary {
                    scorer,
                    map_high: collect(|m| m.map_high),
                    map_mid: collect(|m| m.map_mid),
                    ndcg_a: collect(|m| m.ndcg_a),
                    ndcg_b: collect(|m| m.ndcg_b),
                }
            })
            .collect()
    }

    /// Per-query scores of one scorer/metric, for the Figure 5
    /// histograms.
    #[must_use]
    pub fn per_query_scores(
        &self,
        scorer: ScoringFunction,
        metric: fn(&QueryMetrics) -> Option<f64>,
    ) -> Vec<f64> {
        self.per_query
            .iter()
            .filter_map(|q| {
                q.metrics
                    .iter()
                    .find(|(s, _)| s.name() == scorer.name())
                    .and_then(|(_, m)| metric(m))
            })
            .collect()
    }
}

/// Ground truth for one candidate: the absolute after-join correlation.
fn ground_truth_grade(q: &ColumnPair, c: &ColumnPair, cfg: &RankingConfig) -> Option<f64> {
    let joined = exact_join(q, c, cfg.aggregation);
    if joined.len() < cfg.min_overlap {
        return None;
    }
    Some(pearson(&joined.x, &joined.y).map_or(0.0, f64::abs))
}

fn metrics_for_ranking(order: &[usize], grades: &[f64], cfg: &RankingConfig) -> QueryMetrics {
    let ranked_grades: Vec<f64> = order.iter().map(|&i| grades[i]).collect();
    let (thr_high, thr_mid) = cfg.map_thresholds;
    let rel_high: Vec<bool> = ranked_grades.iter().map(|&g| g > thr_high).collect();
    let rel_mid: Vec<bool> = ranked_grades.iter().map(|&g| g > thr_mid).collect();
    let (k_a, k_b) = cfg.ndcg_ks;
    QueryMetrics {
        map_high: average_precision(&rel_high),
        map_mid: average_precision(&rel_mid),
        ndcg_a: ndcg_at_k(&ranked_grades, k_a),
        ndcg_b: ndcg_at_k(&ranked_grades, k_b),
    }
}

/// Run the full ranking experiment: every query against every corpus
/// pair.
///
/// Cost scales as `O(|queries| · |corpus|)` ground-truth joins — the
/// experiment binaries control corpus sizes (the paper itself does this
/// offline over the NYC collection).
#[must_use]
pub fn run_ranking_experiment(
    queries: &[ColumnPair],
    corpus: &[ColumnPair],
    cfg: &RankingConfig,
) -> RankingReport {
    let builder =
        SketchBuilder::new(SketchConfig::with_size(cfg.sketch_size).aggregation(cfg.aggregation));
    let corpus_sketches: Vec<CorrelationSketch> = corpus.iter().map(|p| builder.build(p)).collect();

    let mut per_query = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let q_sketch = builder.build(q);

        let mut grades: Vec<f64> = Vec::new();
        let mut features: Vec<CandidateFeatures> = Vec::new();
        for (c, c_sketch) in corpus.iter().zip(&corpus_sketches) {
            if c.table == q.table {
                continue; // never rank a table against itself
            }
            let Some(grade) = ground_truth_grade(q, c, cfg) else {
                continue;
            };
            grades.push(grade);
            features.push(extract_features(
                &q_sketch,
                c_sketch,
                Some((q, c)),
                cfg.seed,
            ));
        }
        if features.is_empty() {
            continue;
        }

        let mut metrics = Vec::new();
        for scorer in ScoringFunction::ALL {
            // The random baseline must differ per query but stay
            // reproducible.
            let scorer = match scorer {
                ScoringFunction::Random { .. } => ScoringFunction::Random {
                    seed: cfg.seed ^ (qi as u64).wrapping_mul(0x9e37_79b9),
                },
                other => other,
            };
            let scores = score_candidates(&features, scorer);
            let mut order: Vec<usize> = (0..features.len()).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
            metrics.push((scorer, metrics_for_ranking(&order, &grades, cfg)));
        }

        per_query.push(QueryOutcome {
            query_id: q.id(),
            candidates: features.len(),
            metrics,
        });
    }

    RankingReport { per_query }
}

/// Convenience: map scorer name → summary, for report printing.
#[must_use]
pub fn summaries_by_name(report: &RankingReport) -> HashMap<&'static str, ScorerSummary> {
    report
        .summaries()
        .into_iter()
        .map(|s| (s.scorer.name(), s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a small corpus where ground truth is unambiguous: the query
    /// has one strongly-correlated candidate with *low* key containment
    /// and several uncorrelated candidates with *full* containment. A
    /// correlation-aware scorer must beat `jc`.
    fn fixture() -> (Vec<ColumnPair>, Vec<ColumnPair>) {
        let n = 1_200usize;
        let keys: Vec<String> = (0..n).map(|i| format!("k{i}")).collect();
        let signal: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() * 5.0).collect();

        let query = ColumnPair::new("q", "k", "v", keys.clone(), signal.clone());

        // Correlated candidate: only 40% of the keys (low jc).
        let sub: Vec<usize> = (0..n).filter(|i| i % 5 < 2).collect();
        let corr = ColumnPair::new(
            "corr",
            "k",
            "v",
            sub.iter().map(|&i| keys[i].clone()).collect(),
            sub.iter().map(|&i| signal[i] * 2.0 + 1.0).collect(),
        );

        // Uncorrelated candidates with full key overlap (high jc).
        let mut corpus = vec![corr];
        for t in 0..4 {
            corpus.push(ColumnPair::new(
                format!("noise{t}"),
                "k",
                "v",
                keys.clone(),
                (0..n)
                    .map(|i| (((i * (31 + t)) % 997) as f64) - 500.0)
                    .collect(),
            ));
        }
        (vec![query], corpus)
    }

    #[test]
    fn correlation_scorers_beat_jc_on_the_fixture() {
        let (queries, corpus) = fixture();
        let report = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        assert_eq!(report.per_query.len(), 1);
        let by_name = summaries_by_name(&report);
        let rp = by_name["rp"];
        let jc = by_name["jc"];
        assert!(
            rp.map_high > jc.map_high,
            "rp {:?} must beat jc {:?}",
            rp.map_high,
            jc.map_high
        );
        assert_eq!(rp.map_high, 1.0, "single relevant doc must rank first");
        assert!(jc.map_high < 0.5, "jc ranks the noise first");
    }

    #[test]
    fn all_scorers_produce_metrics() {
        let (queries, corpus) = fixture();
        let report = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        let q = &report.per_query[0];
        assert_eq!(q.metrics.len(), ScoringFunction::ALL.len());
        assert_eq!(q.candidates, 5);
        for (s, m) in &q.metrics {
            assert!(m.map_high.is_some(), "{s}: map_high missing");
            assert!(m.ndcg_a.is_some(), "{s}: ndcg missing");
        }
    }

    #[test]
    fn risk_aware_scorers_also_rank_the_needle_first() {
        let (queries, corpus) = fixture();
        let report = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        let by_name = summaries_by_name(&report);
        for name in ["rp*cih", "rb*cib", "rp*sez"] {
            assert!(by_name[name].map_high > 0.9, "{name}: {:?}", by_name[name]);
        }
    }

    #[test]
    fn experiment_is_deterministic() {
        let (queries, corpus) = fixture();
        let a = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        let b = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        for (qa, qb) in a.per_query.iter().zip(&b.per_query) {
            assert_eq!(qa.candidates, qb.candidates);
            for ((sa, ma), (sb, mb)) in qa.metrics.iter().zip(&qb.metrics) {
                assert_eq!(sa.name(), sb.name());
                assert_eq!(ma, mb);
            }
        }
    }

    #[test]
    fn queries_without_joinable_candidates_are_skipped() {
        let q = ColumnPair::new(
            "lonely",
            "k",
            "v",
            vec!["x1".into(), "x2".into(), "x3".into()],
            vec![1.0, 2.0, 3.0],
        );
        let c = ColumnPair::new(
            "corpus",
            "k",
            "v",
            vec!["y1".into(), "y2".into(), "y3".into()],
            vec![1.0, 2.0, 3.0],
        );
        let report = run_ranking_experiment(&[q], &[c], &RankingConfig::default());
        assert!(report.per_query.is_empty());
    }

    #[test]
    fn per_query_scores_feed_histograms() {
        let (queries, corpus) = fixture();
        let report = run_ranking_experiment(&queries, &corpus, &RankingConfig::default());
        let scores = report.per_query_scores(ScoringFunction::Rp, |m| m.map_high);
        assert_eq!(scores.len(), 1);
        let hist = sketch_stats::metrics::histogram(&scores, 10, 0.0, 1.0);
        assert_eq!(hist.iter().sum::<usize>(), 1);
    }
}
