//! The `s1`–`s4` scoring functions on the live query path (paper
//! Section 4.4), operating on confidence-aware estimates
//! ([`ScoredEstimate`]: point estimate + matched CI) instead of the
//! evaluation harness's full feature vectors.
//!
//! ```text
//! s1 = |r̂|                                      (no penalization)
//! s2 = |r̂| · (1 − se_z)      se_z = 1/√(max(4,n) − 3)
//! s3 = |r̂| · max(0, 1 − ci_len/2)               (absolute CI length)
//! s4 = |r̂| · (1 − (ci_len − min)/(max − min))   (list-normalized CI length)
//! ```
//!
//! The CI is the estimator-matched interval of
//! [`sketch_stats::scored_estimate`] — Fisher z for Pearson, bootstrap
//! for the robust estimators — so each scorer generalizes its paper
//! counterpart (`s2 = rp·se_z`, `s3 = rb·ci_b`, `s4 = rp·ci_h`) to every
//! estimator the engine supports.
//!
//! Scoring is **list-level** because `s4` normalizes CI lengths within
//! the ranked candidate list; `score_estimates` therefore takes the
//! whole list and returns one score per candidate. Candidates without a
//! usable estimate (degenerate join sample) or with a non-finite CI
//! score 0 — they sort behind every scorable candidate but ahead of
//! nothing else, deterministically.

use sketch_stats::{fisher_z_se, ScoredEstimate};

/// The four scoring functions of the live query path, in ascending
/// paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scorer {
    /// `s1 = |r̂|` — the raw point estimate (the baseline the paper's
    /// CI-aware scorers are measured against).
    #[default]
    S1,
    /// `s2 = |r̂|·(1 − se_z)` — Fisher's z standard-error penalization.
    S2,
    /// `s3 = |r̂|·max(0, 1 − ci_len/2)` — absolute CI-length penalization
    /// (the paper's bootstrap-CI scorer shape).
    S3,
    /// `s4 = |r̂|·(1 − normalized ci_len)` — CI length normalized over
    /// the candidate list (the paper's best constant-time scorer shape).
    S4,
}

impl Scorer {
    /// All scorers, `s1..s4`.
    pub const ALL: [Self; 4] = [Self::S1, Self::S2, Self::S3, Self::S4];

    /// Canonical name (`"s1"`…`"s4"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::S1 => "s1",
            Self::S2 => "s2",
            Self::S3 => "s3",
            Self::S4 => "s4",
        }
    }

    /// Can a two-pass planner prune candidates under this scorer from
    /// per-candidate score bounds alone?
    ///
    /// `s1`–`s3` are per-candidate functions of `(estimate, n, ci_len)`,
    /// so a candidate's score bound is independent of who else is in the
    /// list. `s4` normalizes CI lengths *across the list*: removing a
    /// candidate with an extreme CI length shifts `(min, max)` and can
    /// reorder — or re-tie — the survivors, so no survivor-only
    /// evaluation reproduces the exhaustive ranking and pruning cannot
    /// be lossless. Planners must fall back to exhaustive for `s4`.
    #[must_use]
    pub fn prunable(&self) -> bool {
        !matches!(self, Self::S4)
    }
}

impl std::fmt::Display for Scorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Scorer {
    type Err = String;

    /// Accepts the canonical `s1..s4` plus the paper-notation aliases
    /// used by the evaluation harness (`rp`, `rp*sez`, `rb*cib`,
    /// `rp*cih`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "s1" | "rp" | "point" => Ok(Self::S1),
            "s2" | "rp*sez" | "sez" => Ok(Self::S2),
            "s3" | "rb*cib" | "cib" => Ok(Self::S3),
            "s4" | "rp*cih" | "cih" => Ok(Self::S4),
            other => Err(format!(
                "unknown scorer '{other}' (expected s1|s2|s3|s4; aliases rp, rp*sez, rb*cib, rp*cih)"
            )),
        }
    }
}

/// Is this estimate usable for scoring? Non-finite estimates or interval
/// endpoints (a degenerate candidate can surface NaN through the CI
/// arithmetic) are treated exactly like a missing estimate: score 0,
/// never a NaN that poisons the sort.
fn usable(e: &ScoredEstimate) -> bool {
    e.estimate.is_finite() && e.ci_lo.is_finite() && e.ci_hi.is_finite()
}

/// Score a candidate list under `scorer`; `estimates[i]` is `None` when
/// candidate `i` had no usable estimate (too-small or degenerate join
/// sample). Returns one finite score per candidate, aligned with the
/// input. List-level because `s4` normalizes CI lengths within the list.
#[must_use]
pub fn score_estimates(scorer: Scorer, estimates: &[Option<ScoredEstimate>]) -> Vec<f64> {
    let per_candidate = |f: &dyn Fn(&ScoredEstimate) -> f64| -> Vec<f64> {
        estimates
            .iter()
            .map(|e| e.as_ref().filter(|e| usable(e)).map_or(0.0, f))
            .collect()
    };
    match scorer {
        Scorer::S1 => per_candidate(&|e| e.estimate.abs()),
        Scorer::S2 => per_candidate(&|e| e.estimate.abs() * (1.0 - fisher_z_se(e.sample_size))),
        Scorer::S3 => per_candidate(&|e| e.estimate.abs() * (1.0 - e.ci_length() / 2.0).max(0.0)),
        Scorer::S4 => {
            let (min_len, max_len) = estimates
                .iter()
                .flatten()
                .filter(|e| usable(e))
                .map(ScoredEstimate::ci_length)
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), l| {
                    (lo.min(l), hi.max(l))
                });
            per_candidate(&|e| {
                let cih = if max_len > min_len {
                    1.0 - (e.ci_length() - min_len) / (max_len - min_len)
                } else {
                    // One usable candidate (or all-equal lengths): the
                    // normalization carries no information.
                    1.0
                };
                e.estimate.abs() * cih
            })
        }
    }
}

/// Bounds `[lb, ub]` on the score `scorer` could assign to a candidate
/// whose final estimate lies anywhere in the candidate's confidence
/// interval — the pruning primitive of the two-pass query planner.
///
/// `est` is the *cheap-pass* estimate (Pearson + Fisher-z CI): the upper
/// bound is sound for any estimator whose estimate falls inside
/// `[ci_lo, ci_hi]`, which is exactly the planner's configured-confidence
/// contract. Per scorer:
///
/// * `s1` — `|r̂|` over the interval: `ub = max(|lo|, |hi|)`, `lb = 0` if
///   the interval straddles zero, else `min(|lo|, |hi|)`.
/// * `s2` — both bounds scale by `(1 − se_z(n))`, which depends only on
///   the join-sample size `n` (identical in both passes), so the mapping
///   is exact.
/// * `s3` — the CI-length penalty is in `[0, 1]`, so `ub` is the raw
///   magnitude bound (sound without knowing the expensive estimator's
///   interval); the lower bound applies the *cheap* interval's penalty
///   as a heuristic (lower bounds only seed the initial band — planner
///   correctness never depends on them).
/// * `s4` — not prunable (see [`Scorer::prunable`]); returns
///   `(0, ∞)` so a defensive caller never prunes on it.
///
/// A non-finite estimate or endpoint also yields `(0, ∞)`: no
/// information, never prune.
#[must_use]
pub fn score_bounds(scorer: Scorer, est: &ScoredEstimate) -> (f64, f64) {
    if !usable(est) || !scorer.prunable() {
        return (0.0, f64::INFINITY);
    }
    let mag_ub = est.ci_lo.abs().max(est.ci_hi.abs());
    let mag_lb = if est.ci_lo <= 0.0 && 0.0 <= est.ci_hi {
        0.0
    } else {
        est.ci_lo.abs().min(est.ci_hi.abs())
    };
    match scorer {
        Scorer::S1 => (mag_lb, mag_ub),
        Scorer::S2 => {
            let f = 1.0 - fisher_z_se(est.sample_size);
            (mag_lb * f, mag_ub * f)
        }
        Scorer::S3 => (mag_lb * (1.0 - est.ci_length() / 2.0).max(0.0), mag_ub),
        Scorer::S4 => unreachable!("s4 is not prunable"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(estimate: f64, ci_len: f64, n: usize) -> Option<ScoredEstimate> {
        Some(ScoredEstimate {
            estimate,
            ci_lo: estimate - ci_len / 2.0,
            ci_hi: estimate + ci_len / 2.0,
            sample_size: n,
        })
    }

    #[test]
    fn names_and_parsing_roundtrip() {
        for s in Scorer::ALL {
            assert_eq!(s.name().parse::<Scorer>().unwrap(), s);
        }
        assert_eq!("rp".parse::<Scorer>().unwrap(), Scorer::S1);
        assert_eq!("rp*sez".parse::<Scorer>().unwrap(), Scorer::S2);
        assert_eq!("rb*cib".parse::<Scorer>().unwrap(), Scorer::S3);
        assert_eq!("rp*cih".parse::<Scorer>().unwrap(), Scorer::S4);
        assert_eq!("S4".parse::<Scorer>().unwrap(), Scorer::S4);
        assert!("s5".parse::<Scorer>().is_err());
        assert_eq!(Scorer::default(), Scorer::S1);
    }

    #[test]
    fn s1_is_the_absolute_estimate() {
        let s = score_estimates(Scorer::S1, &[est(-0.9, 0.5, 100), est(0.4, 0.1, 10), None]);
        assert_eq!(s, vec![0.9, 0.4, 0.0]);
    }

    #[test]
    fn s2_penalizes_small_samples() {
        let s = score_estimates(Scorer::S2, &[est(0.8, 0.2, 403), est(0.8, 0.2, 4)]);
        assert!((s[0] - 0.8 * 0.95).abs() < 1e-12, "{s:?}");
        assert_eq!(s[1], 0.0, "se_z = 1 at the n floor");
    }

    #[test]
    fn s3_penalizes_absolute_interval_length() {
        let s = score_estimates(
            Scorer::S3,
            &[est(0.6, 0.2, 50), est(0.6, 1.8, 50), est(0.6, 4.0, 50)],
        );
        assert!((s[0] - 0.6 * 0.9).abs() < 1e-12);
        assert!((s[1] - 0.6 * 0.1).abs() < 1e-12);
        assert_eq!(s[2], 0.0, "lengths past 2 clamp to zero, never negative");
    }

    #[test]
    fn s4_normalizes_within_the_list() {
        let s = score_estimates(Scorer::S4, &[est(0.7, 0.1, 500), est(0.9, 1.9, 10)]);
        assert!((s[0] - 0.7).abs() < 1e-12, "sharpest CI keeps full score");
        assert_eq!(s[1], 0.0, "widest CI is fully penalized");
        // Single candidate: the normalization degrades to factor 1.
        let s = score_estimates(Scorer::S4, &[est(0.7, 0.1, 500)]);
        assert!((s[0] - 0.7).abs() < 1e-12);
        // Missing estimates do not perturb the normalization bounds.
        let s = score_estimates(Scorer::S4, &[None, est(0.5, 0.3, 20), None]);
        assert_eq!(s, vec![0.0, 0.5, 0.0]);
    }

    #[test]
    fn non_finite_inputs_score_zero_for_every_scorer() {
        let bad = [
            Some(ScoredEstimate {
                estimate: f64::NAN,
                ci_lo: 0.0,
                ci_hi: 1.0,
                sample_size: 10,
            }),
            Some(ScoredEstimate {
                estimate: 0.9,
                ci_lo: f64::NEG_INFINITY,
                ci_hi: 0.9,
                sample_size: 10,
            }),
            est(0.5, 0.2, 100),
        ];
        for scorer in Scorer::ALL {
            let s = score_estimates(scorer, &bad);
            assert_eq!(s[0], 0.0, "{scorer}: NaN estimate must score 0");
            assert_eq!(s[1], 0.0, "{scorer}: infinite CI must score 0");
            assert!(s[2] > 0.0 && s[2].is_finite(), "{scorer}: {s:?}");
        }
    }

    #[test]
    fn score_bounds_contain_the_actual_score_for_any_estimate_in_the_ci() {
        // For every prunable scorer: sweep estimates across the interval
        // and check each resulting score lands inside the bounds (the
        // upper bound is the planner's soundness contract; for s1/s2 the
        // lower bound is tight too).
        let cases = [est(0.6, 0.5, 40).unwrap(), est(-0.2, 0.9, 7).unwrap()];
        for cheap in &cases {
            for scorer in [Scorer::S1, Scorer::S2] {
                let (lb, ub) = score_bounds(scorer, cheap);
                assert!(lb <= ub, "{scorer}: ({lb}, {ub})");
                for step in 0..=20 {
                    let r = cheap.ci_lo + cheap.ci_length() * f64::from(step) / 20.0;
                    let moved = ScoredEstimate {
                        estimate: r,
                        ..*cheap
                    };
                    let s = score_estimates(scorer, &[Some(moved)])[0];
                    assert!(
                        lb - 1e-12 <= s && s <= ub + 1e-12,
                        "{scorer}: score {s} outside [{lb}, {ub}] at r={r}"
                    );
                }
            }
            // s3's upper bound must hold for ANY expensive interval
            // (penalty ≤ 1), including one much sharper than the cheap CI.
            let (_, ub) = score_bounds(Scorer::S3, cheap);
            let sharp = ScoredEstimate {
                estimate: cheap.ci_hi,
                ci_lo: cheap.ci_hi - 0.01,
                ci_hi: cheap.ci_hi,
                sample_size: cheap.sample_size,
            };
            let s = score_estimates(Scorer::S3, &[Some(sharp)])[0];
            assert!(s <= ub + 1e-12, "s3: score {s} above ub {ub}");
        }
    }

    #[test]
    fn score_bounds_straddling_zero_has_zero_lower_bound() {
        let cheap = est(0.1, 0.6, 50).unwrap(); // CI [-0.2, 0.4]
        let (lb, ub) = score_bounds(Scorer::S1, &cheap);
        assert_eq!(lb, 0.0);
        assert!((ub - 0.4).abs() < 1e-12);
    }

    #[test]
    fn s4_and_unusable_estimates_are_never_prunable() {
        assert!(Scorer::S1.prunable() && Scorer::S2.prunable() && Scorer::S3.prunable());
        assert!(!Scorer::S4.prunable());
        let cheap = est(0.9, 0.1, 100).unwrap();
        assert_eq!(score_bounds(Scorer::S4, &cheap), (0.0, f64::INFINITY));
        let nan = ScoredEstimate {
            estimate: f64::NAN,
            ..cheap
        };
        for scorer in Scorer::ALL {
            assert_eq!(
                score_bounds(scorer, &nan),
                (0.0, f64::INFINITY),
                "{scorer}: NaN estimate must be unprunable"
            );
        }
    }

    #[test]
    fn ci_aware_scorers_prefer_confident_candidates_on_ties() {
        // Same |estimate|, very different uncertainty: s1 ties, s2–s4
        // all rank the confident candidate first.
        let list = [est(0.8, 0.1, 400), est(0.8, 1.5, 5)];
        let s1 = score_estimates(Scorer::S1, &list);
        assert_eq!(s1[0], s1[1]);
        for scorer in [Scorer::S2, Scorer::S3, Scorer::S4] {
            let s = score_estimates(scorer, &list);
            assert!(s[0] > s[1], "{scorer}: {s:?}");
        }
    }
}
