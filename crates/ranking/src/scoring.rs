//! Scoring functions (paper Section 4.4).
//!
//! Each candidate gets `score = |r̂| · penalization` where the
//! penalization factor is one of:
//!
//! ```text
//! se_z = 1 − 1/√(max(4, n) − 3)                      (Fisher's z SE)
//! ci_b = 1 − (ρ_PM1_high − ρ_PM1_low)/2              (bootstrap CI)
//! ci_h = 1 − (ci_len − ci_min)/(ci_max − ci_min)     (Hoeffding/HFD CI,
//!                                                     normalized per list)
//! ```
//!
//! `s1` applies no penalization; `jc`, `ĵc` and `random` are the
//! joinability baselines of Section 5.4.

use correlation_sketches::{containment_estimate, join_sketches, CorrelationSketch, JoinSample};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sketch_stats::{fisher_z_se, CorrelationEstimator};
use sketch_table::{jaccard_containment, ColumnPair};

/// Everything a scoring function may consume about one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateFeatures {
    /// Candidate identifier.
    pub id: String,
    /// Join-sample size `n` (rows in `L_{Q⨝C}`).
    pub sample_size: usize,
    /// Pearson estimate `r_p` on the join sample.
    pub rp: Option<f64>,
    /// PM1 bootstrap estimate `r_b`.
    pub rb: Option<f64>,
    /// Length of the HFD (Hoeffding small-sample) interval.
    pub hfd_ci_length: Option<f64>,
    /// Length of the PM1 bootstrap interval.
    pub pm1_ci_length: Option<f64>,
    /// Exact Jaccard containment of the query keys in the candidate
    /// (requires full data; only available in evaluation harnesses).
    pub jc_exact: Option<f64>,
    /// Sketch-estimated Jaccard containment `ĵc`.
    pub jc_estimate: f64,
}

/// Extract scoring features from a query/candidate sketch pair.
///
/// `full_pairs` optionally provides the raw column pairs to compute the
/// exact `jc` baseline (evaluation only — a real system never joins the
/// full data at query time).
#[must_use]
pub fn extract_features(
    query_sketch: &CorrelationSketch,
    cand_sketch: &CorrelationSketch,
    full_pairs: Option<(&ColumnPair, &ColumnPair)>,
    pm1_seed: u64,
) -> CandidateFeatures {
    let sample = join_sketches(query_sketch, cand_sketch).unwrap_or_else(|_| JoinSample {
        key_hashes: Vec::new(),
        x: Vec::new(),
        y: Vec::new(),
        bounds: None,
    });
    features_from_sample(query_sketch, cand_sketch, &sample, full_pairs, pm1_seed)
}

/// As [`extract_features`] but reusing an already-materialized join
/// sample (avoids re-joining when the caller has one).
#[must_use]
pub fn features_from_sample(
    query_sketch: &CorrelationSketch,
    cand_sketch: &CorrelationSketch,
    sample: &JoinSample,
    full_pairs: Option<(&ColumnPair, &ColumnPair)>,
    pm1_seed: u64,
) -> CandidateFeatures {
    let rp = sample.estimate(CorrelationEstimator::Pearson).ok();
    let rb = sample
        .estimate(CorrelationEstimator::Pm1Bootstrap { seed: pm1_seed })
        .ok();
    let hfd_ci_length = sample.hfd_ci(0.05).ok().map(|ci| ci.length());
    let pm1_ci_length = sample.pm1_ci(pm1_seed).ok().map(|ci| ci.length());
    let jc_estimate = containment_estimate(query_sketch, cand_sketch).unwrap_or(0.0);
    let jc_exact = full_pairs.map(|(q, c)| jaccard_containment(q, c));

    CandidateFeatures {
        id: cand_sketch.id().to_string(),
        sample_size: sample.len(),
        rp,
        rb,
        hfd_ci_length,
        pm1_ci_length,
        jc_exact,
        jc_estimate,
    }
}

/// The scoring functions evaluated in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScoringFunction {
    /// `s1 = |r_p|` — no risk penalization.
    Rp,
    /// `s2 = |r_p| · se_z` — Fisher's z penalization.
    RpSez,
    /// `s3 = |r_b| · ci_b` — PM1 bootstrap estimate and CI penalization.
    RbCib,
    /// `s4 = |r_p| · ci_h` — Hoeffding/HFD CI penalization (the paper's
    /// best constant-time scorer).
    RpCih,
    /// Baseline: exact Jaccard containment (joinability ranking).
    Jc,
    /// Baseline: sketch-estimated Jaccard containment `ĵc`.
    JcEstimate,
    /// Baseline: uniform random scores (seeded per ranked list).
    Random {
        /// Seed for the per-list score stream.
        seed: u64,
    },
}

impl ScoringFunction {
    /// All scorers in the order of Table 1's rows.
    pub const ALL: [Self; 7] = [
        Self::RpCih,
        Self::RbCib,
        Self::Rp,
        Self::RpSez,
        Self::Jc,
        Self::JcEstimate,
        Self::Random { seed: 0xabcd },
    ];

    /// Label matching the paper's notation.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Rp => "rp",
            Self::RpSez => "rp*sez",
            Self::RbCib => "rb*cib",
            Self::RpCih => "rp*cih",
            Self::Jc => "jc",
            Self::JcEstimate => "jc_est",
            Self::Random { .. } => "random",
        }
    }
}

impl std::fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Score a full candidate list. List-level scoring is required because
/// the `ci_h` factor normalizes by the minimum/maximum CI length *within
/// the ranked list*.
///
/// Returns one score per candidate, aligned with `features`. Candidates
/// whose required statistic is unavailable (degenerate sample) score 0.
#[must_use]
pub fn score_candidates(features: &[CandidateFeatures], f: ScoringFunction) -> Vec<f64> {
    match f {
        ScoringFunction::Rp => features
            .iter()
            .map(|c| c.rp.map_or(0.0, f64::abs))
            .collect(),
        ScoringFunction::RpSez => features
            .iter()
            .map(|c| {
                c.rp.map_or(0.0, |r| r.abs() * (1.0 - fisher_z_se(c.sample_size)))
            })
            .collect(),
        ScoringFunction::RbCib => features
            .iter()
            .map(|c| match (c.rb, c.pm1_ci_length) {
                (Some(r), Some(len)) => r.abs() * (1.0 - len / 2.0).max(0.0),
                _ => 0.0,
            })
            .collect(),
        ScoringFunction::RpCih => {
            let lengths: Vec<f64> = features.iter().filter_map(|c| c.hfd_ci_length).collect();
            let (min_len, max_len) = lengths
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &l| {
                    (lo.min(l), hi.max(l))
                });
            features
                .iter()
                .map(|c| match (c.rp, c.hfd_ci_length) {
                    (Some(r), Some(len)) => {
                        let cih = if max_len > min_len {
                            1.0 - (len - min_len) / (max_len - min_len)
                        } else {
                            1.0
                        };
                        r.abs() * cih
                    }
                    _ => 0.0,
                })
                .collect()
        }
        ScoringFunction::Jc => features.iter().map(|c| c.jc_exact.unwrap_or(0.0)).collect(),
        ScoringFunction::JcEstimate => features.iter().map(|c| c.jc_estimate).collect(),
        ScoringFunction::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            features.iter().map(|_| rng.random::<f64>()).collect()
        }
    }
}

/// Descending-score comparison that deterministically ranks NaN *last*.
/// `f64::total_cmp` alone would put NaN above +∞ in a descending sort,
/// so one degenerate candidate (constant column → undefined correlation)
/// would float to the top of the ranking instead of the bottom.
#[must_use]
pub fn desc_score_nan_last(a: f64, b: f64) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater, // a sorts after b
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Indices of `features` in descending score order under scorer `f`
/// (stable: ties keep input order; NaN scores rank last).
#[must_use]
pub fn rank_candidates(features: &[CandidateFeatures], f: ScoringFunction) -> Vec<usize> {
    let scores = score_candidates(features, f);
    let mut idx: Vec<usize> = (0..features.len()).collect();
    idx.sort_by(|&a, &b| desc_score_nan_last(scores[a], scores[b]));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(
        id: &str,
        n: usize,
        rp: Option<f64>,
        hfd_len: Option<f64>,
        jc: f64,
    ) -> CandidateFeatures {
        CandidateFeatures {
            id: id.into(),
            sample_size: n,
            rp,
            rb: rp,
            hfd_ci_length: hfd_len,
            pm1_ci_length: hfd_len,
            jc_exact: Some(jc),
            jc_estimate: jc,
        }
    }

    #[test]
    fn s1_is_absolute_estimate() {
        let fs = vec![
            feat("a", 100, Some(-0.9), Some(0.2), 0.1),
            feat("b", 100, Some(0.5), Some(0.2), 0.9),
        ];
        let s = score_candidates(&fs, ScoringFunction::Rp);
        assert_eq!(s, vec![0.9, 0.5]);
    }

    #[test]
    fn s2_penalizes_small_samples() {
        let fs = vec![
            feat("big", 403, Some(0.8), None, 0.0), // se_z = 0.05
            feat("tiny", 4, Some(0.8), None, 0.0),  // se_z = 1.0 → score 0
        ];
        let s = score_candidates(&fs, ScoringFunction::RpSez);
        assert!(s[0] > 0.75, "{s:?}");
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn s4_normalizes_ci_lengths_within_the_list() {
        let fs = vec![
            feat("sharp", 500, Some(0.7), Some(0.1), 0.0),
            feat("fuzzy", 10, Some(0.9), Some(1.9), 0.0),
        ];
        let s = score_candidates(&fs, ScoringFunction::RpCih);
        // sharp: cih = 1 → 0.7; fuzzy: cih = 0 → 0.
        assert!((s[0] - 0.7).abs() < 1e-12);
        assert_eq!(s[1], 0.0);
        // With a single candidate the factor degrades to 1.
        let s = score_candidates(&fs[..1], ScoringFunction::RpCih);
        assert!((s[0] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn s3_uses_bootstrap_interval() {
        let fs = vec![
            feat("confident", 200, Some(0.6), Some(0.2), 0.0),
            feat("uncertain", 200, Some(0.6), Some(1.8), 0.0),
        ];
        let s = score_candidates(&fs, ScoringFunction::RbCib);
        assert!(s[0] > s[1]);
        assert!((s[0] - 0.6 * 0.9).abs() < 1e-12);
    }

    #[test]
    fn baselines_ignore_correlation() {
        let fs = vec![
            feat("high_jc", 10, Some(0.01), Some(0.5), 0.95),
            feat("high_corr", 10, Some(0.99), Some(0.5), 0.05),
        ];
        let jc = score_candidates(&fs, ScoringFunction::Jc);
        assert!(jc[0] > jc[1]);
        let jce = score_candidates(&fs, ScoringFunction::JcEstimate);
        assert!(jce[0] > jce[1]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let fs = vec![feat("a", 10, None, None, 0.0); 5];
        let a = score_candidates(&fs, ScoringFunction::Random { seed: 1 });
        let b = score_candidates(&fs, ScoringFunction::Random { seed: 1 });
        let c = score_candidates(&fs, ScoringFunction::Random { seed: 2 });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn missing_estimates_score_zero() {
        let fs = vec![feat("dead", 1, None, None, 0.3)];
        for f in [
            ScoringFunction::Rp,
            ScoringFunction::RpSez,
            ScoringFunction::RbCib,
            ScoringFunction::RpCih,
        ] {
            assert_eq!(score_candidates(&fs, f), vec![0.0], "{f}");
        }
    }

    #[test]
    fn rank_candidates_orders_by_score() {
        let fs = vec![
            feat("low", 100, Some(0.2), Some(0.3), 0.0),
            feat("high", 100, Some(0.9), Some(0.3), 0.0),
            feat("mid", 100, Some(0.5), Some(0.3), 0.0),
        ];
        assert_eq!(rank_candidates(&fs, ScoringFunction::Rp), vec![1, 2, 0]);
    }

    #[test]
    fn nan_scores_rank_last_deterministically() {
        // A hand-built score vector with NaN, ±∞, and ordinary values:
        // NaN must land at the very end, after −∞.
        let scores = [0.5, f64::NAN, f64::INFINITY, -0.2, f64::NEG_INFINITY];
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| desc_score_nan_last(scores[a], scores[b]));
        assert_eq!(idx, vec![2, 0, 3, 4, 1]);
        // And the property holds through rank_candidates for every
        // scorer even when a feature is fully degenerate.
        let fs = vec![
            feat("good", 100, Some(0.9), Some(0.2), 0.5),
            feat("dead", 100, None, None, 0.0),
        ];
        for f in [
            ScoringFunction::Rp,
            ScoringFunction::RpSez,
            ScoringFunction::RbCib,
            ScoringFunction::RpCih,
        ] {
            assert_eq!(rank_candidates(&fs, f), vec![0, 1], "{f}");
        }
    }

    #[test]
    fn names_match_paper_notation() {
        let names: Vec<&str> = ScoringFunction::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(
            names,
            vec!["rp*cih", "rb*cib", "rp", "rp*sez", "jc", "jc_est", "random"]
        );
    }

    #[test]
    fn extract_features_end_to_end() {
        use correlation_sketches::{SketchBuilder, SketchConfig};
        let b = SketchBuilder::new(SketchConfig::with_size(128));
        let keys: Vec<String> = (0..2_000).map(|i| format!("k{i}")).collect();
        let q = ColumnPair::new(
            "q",
            "k",
            "v",
            keys.clone(),
            (0..2_000).map(|i| i as f64).collect(),
        );
        let c = ColumnPair::new(
            "c",
            "k",
            "v",
            keys,
            (0..2_000).map(|i| 2.0 * i as f64).collect(),
        );
        let (sq, sc) = (b.build(&q), b.build(&c));
        let f = extract_features(&sq, &sc, Some((&q, &c)), 7);
        assert!(f.sample_size > 50);
        assert!(f.rp.unwrap() > 0.99);
        assert!(f.rb.unwrap() > 0.95);
        assert!(f.hfd_ci_length.unwrap() > 0.0);
        assert_eq!(f.jc_exact, Some(1.0));
        assert!(f.jc_estimate > 0.9);
        assert_eq!(f.id, "c/k/v");
    }
}
