//! Property-based tests for scoring functions and ranking metrics.

use proptest::collection::vec;
use proptest::prelude::*;

use sketch_ranking::{rank_candidates, score_candidates, CandidateFeatures, ScoringFunction};

fn arb_feature(i: usize) -> impl Strategy<Value = CandidateFeatures> {
    (
        1usize..2000,
        proptest::option::of(-1.0f64..1.0),
        proptest::option::of(0.0f64..10.0),
        0.0f64..1.0,
    )
        .prop_map(move |(n, rp, ci_len, jc)| CandidateFeatures {
            id: format!("cand{i}"),
            sample_size: n,
            rp,
            rb: rp.map(|r| (r + 0.01).clamp(-1.0, 1.0)),
            hfd_ci_length: ci_len,
            pm1_ci_length: ci_len.map(|l| l.min(2.0)),
            jc_exact: Some(jc),
            jc_estimate: (jc + 0.05).min(1.0),
        })
}

fn arb_features() -> impl Strategy<Value = Vec<CandidateFeatures>> {
    vec(any::<u8>(), 1..20).prop_flat_map(|tags| {
        tags.into_iter()
            .enumerate()
            .map(|(i, _)| arb_feature(i))
            .collect::<Vec<_>>()
    })
}

proptest! {
    /// Scores are finite, non-negative, aligned with the input, and
    /// deterministic.
    #[test]
    fn scores_are_sane(features in arb_features()) {
        for scorer in ScoringFunction::ALL {
            let scores = score_candidates(&features, scorer);
            prop_assert_eq!(scores.len(), features.len());
            for &s in &scores {
                prop_assert!(s.is_finite(), "{scorer}: {s}");
                prop_assert!(s >= 0.0, "{scorer}: {s}");
            }
            prop_assert_eq!(scores.clone(), score_candidates(&features, scorer));
        }
    }

    /// Candidates lacking the needed statistic never outrank candidates
    /// that have it with a positive estimate (they score exactly zero).
    #[test]
    fn missing_statistics_score_zero(features in arb_features()) {
        for scorer in [
            ScoringFunction::Rp,
            ScoringFunction::RpSez,
            ScoringFunction::RbCib,
            ScoringFunction::RpCih,
        ] {
            let scores = score_candidates(&features, scorer);
            for (f, &s) in features.iter().zip(&scores) {
                if f.rp.is_none() {
                    prop_assert_eq!(s, 0.0, "scorer {}", scorer);
                }
            }
        }
    }

    /// rank_candidates returns a permutation ordered by score.
    #[test]
    fn rank_is_an_ordered_permutation(features in arb_features()) {
        for scorer in ScoringFunction::ALL {
            let scores = score_candidates(&features, scorer);
            let order = rank_candidates(&features, scorer);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..features.len()).collect::<Vec<_>>());
            for w in order.windows(2) {
                prop_assert!(scores[w[0]] >= scores[w[1]], "{scorer}");
            }
        }
    }

    /// The se_z penalization is monotone in sample size: same estimate,
    /// more samples, never a lower score.
    #[test]
    fn sez_monotone_in_sample_size(r in -1.0f64..1.0, n1 in 1usize..500, extra in 1usize..500) {
        let feat = |n: usize| CandidateFeatures {
            id: "c".into(),
            sample_size: n,
            rp: Some(r),
            rb: Some(r),
            hfd_ci_length: Some(1.0),
            pm1_ci_length: Some(1.0),
            jc_exact: None,
            jc_estimate: 0.0,
        };
        let fs = vec![feat(n1), feat(n1 + extra)];
        let scores = score_candidates(&fs, ScoringFunction::RpSez);
        prop_assert!(scores[1] >= scores[0] - 1e-12);
    }

    /// ci_h normalization maps the per-list min/max CI lengths to factors
    /// 1 and 0 respectively.
    #[test]
    fn cih_normalization_endpoints(lens in vec(0.01f64..5.0, 2..10)) {
        let fs: Vec<CandidateFeatures> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| CandidateFeatures {
                id: format!("c{i}"),
                sample_size: 100,
                rp: Some(0.5),
                rb: Some(0.5),
                hfd_ci_length: Some(l),
                pm1_ci_length: Some(l.min(2.0)),
                jc_exact: None,
                jc_estimate: 0.0,
            })
            .collect();
        let scores = score_candidates(&fs, ScoringFunction::RpCih);
        let min_i = lens
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let max_i = lens
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assume!(lens[min_i] < lens[max_i]);
        prop_assert!((scores[min_i] - 0.5).abs() < 1e-9, "shortest CI gets full score");
        prop_assert!(scores[max_i].abs() < 1e-9, "longest CI gets zero");
    }
}
