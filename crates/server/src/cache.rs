//! The generation-aware query-result cache: an O(1) hand-rolled LRU
//! keyed by `(query fingerprint, store generation)`.
//!
//! Because the store generation is part of the key, a corpus mutation
//! invalidates exactly the stale entries — requests against the new
//! generation miss and recompute, while the old generation's entries
//! age out of the LRU tail naturally. Values are the fully rendered
//! response bodies (`Arc<str>`), so a cache hit serves byte-identical
//! output to the miss that populated it, by construction.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: `(canonical query fingerprint, store generation)`.
pub type CacheKey = (u128, u64);

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

struct Lru {
    map: HashMap<CacheKey, usize>,
    entries: Vec<Entry>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
    capacity: usize,
}

impl Lru {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }
}

/// A thread-safe LRU of rendered query responses. Capacity 0 disables
/// caching entirely (every lookup misses, every insert is dropped).
pub struct QueryCache {
    inner: Mutex<Lru>,
}

impl QueryCache {
    /// An empty cache holding at most `capacity` responses.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Lru {
                map: HashMap::with_capacity(capacity.min(1 << 16)),
                entries: Vec::with_capacity(capacity.min(1 << 16)),
                head: NIL,
                tail: NIL,
                capacity,
            }),
        }
    }

    /// Fetch a cached response and mark it most recently used.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let mut lru = self.inner.lock().expect("cache lock is never poisoned");
        let &i = lru.map.get(key)?;
        let value = Arc::clone(&lru.entries[i].value);
        if lru.head != i {
            lru.unlink(i);
            lru.push_front(i);
        }
        Some(value)
    }

    /// Insert (or refresh) a response, evicting the least recently used
    /// entry when full.
    pub fn put(&self, key: CacheKey, value: Arc<str>) {
        let mut lru = self.inner.lock().expect("cache lock is never poisoned");
        if lru.capacity == 0 {
            return;
        }
        if let Some(&i) = lru.map.get(&key) {
            lru.entries[i].value = value;
            if lru.head != i {
                lru.unlink(i);
                lru.push_front(i);
            }
            return;
        }
        let i = if lru.entries.len() < lru.capacity {
            lru.entries.push(Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            lru.entries.len() - 1
        } else {
            // Reuse the LRU slot in place.
            let i = lru.tail;
            lru.unlink(i);
            let old_key = lru.entries[i].key;
            lru.map.remove(&old_key);
            lru.entries[i].key = key;
            lru.entries[i].value = value;
            i
        };
        lru.map.insert(key, i);
        lru.push_front(i);
    }

    /// Number of cached responses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("cache lock is never poisoned")
            .map
            .len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u128, generation: u64) -> CacheKey {
        (fp, generation)
    }

    fn val(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_and_lru_eviction_order() {
        let c = QueryCache::new(2);
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(1, 0), val("one"));
        c.put(key(2, 0), val("two"));
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("one"));
        // 2 is now least recently used; inserting a third evicts it.
        c.put(key(3, 0), val("three"));
        assert!(c.get(&key(2, 0)).is_none());
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("one"));
        assert_eq!(c.get(&key(3, 0)).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_fingerprint_different_generation_are_distinct() {
        let c = QueryCache::new(8);
        c.put(key(7, 0), val("gen0"));
        c.put(key(7, 1), val("gen1"));
        assert_eq!(c.get(&key(7, 0)).as_deref(), Some("gen0"));
        assert_eq!(c.get(&key(7, 1)).as_deref(), Some("gen1"));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let c = QueryCache::new(2);
        c.put(key(1, 0), val("a"));
        c.put(key(2, 0), val("b"));
        c.put(key(1, 0), val("a2"));
        c.put(key(3, 0), val("c")); // evicts 2, not the refreshed 1
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("a2"));
        assert!(c.get(&key(2, 0)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        c.put(key(1, 0), val("x"));
        assert!(c.get(&key(1, 0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let c = QueryCache::new(1);
        for i in 0..100u128 {
            c.put(key(i, 0), val(&i.to_string()));
            assert_eq!(c.get(&key(i, 0)).as_deref(), Some(i.to_string().as_str()));
            if i > 0 {
                assert!(c.get(&key(i - 1, 0)).is_none());
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let c = Arc::new(QueryCache::new(64));
        std::thread::scope(|s| {
            for t in 0..8u128 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u128 {
                        let k = key(t * 1000 + (i % 96), i as u64 % 3);
                        if let Some(v) = c.get(&k) {
                            assert!(!v.is_empty());
                        } else {
                            c.put(k, val("payload"));
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 64);
    }
}
