//! The generation-aware query-result cache: an O(1) hand-rolled LRU
//! keyed by `(query fingerprint, store generation)`.
//!
//! Because the store generation is part of the key, a corpus mutation
//! invalidates exactly the stale entries — requests against the new
//! generation miss and recompute, while the old generation's entries
//! age out of the LRU tail naturally. Values are the fully rendered
//! response bodies (`Arc<str>`), so a cache hit serves byte-identical
//! output to the miss that populated it, by construction.
//!
//! Retention is bounded two ways: by entry count (`capacity`) and by
//! total value bytes ([`BYTE_BUDGET`]) — request parameters size the
//! rendered bodies, so an entry-count bound alone would let a client
//! asking huge-`k` queries pin memory proportional to
//! `capacity × max body`.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: `(canonical query fingerprint, store generation)`.
pub type CacheKey = (u128, u64);

/// Upper bound on the summed length of cached response bodies. Bodies
/// larger than the whole budget are never cached at all.
pub const BYTE_BUDGET: usize = 64 << 20;

const NIL: usize = usize::MAX;

struct Entry {
    key: CacheKey,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

struct Lru {
    map: HashMap<CacheKey, usize>,
    entries: Vec<Entry>,
    /// Slab slots in `entries` freed by byte-budget eviction.
    free: Vec<usize>,
    /// Most recently used entry, `NIL` when empty.
    head: usize,
    /// Least recently used entry, `NIL` when empty.
    tail: usize,
    capacity: usize,
    /// Summed `value.len()` of live entries.
    bytes: usize,
    byte_budget: usize,
    /// Entries removed by capacity/byte-budget pressure over the cache's
    /// lifetime (survives the poisoning dump — it is an odometer, not
    /// cache state).
    evictions: u64,
}

impl Lru {
    fn empty(capacity: usize, byte_budget: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            entries: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            bytes: 0,
            byte_budget,
            evictions: 0,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.entries[i].prev, self.entries[i].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.entries[next].prev = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.entries[i].prev = NIL;
        self.entries[i].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Evict the least recently used entry, returning its slab slot to
    /// the free list.
    fn evict_tail(&mut self) {
        let i = self.tail;
        self.unlink(i);
        let key = self.entries[i].key;
        self.map.remove(&key);
        self.bytes -= self.entries[i].value.len();
        self.entries[i].value = Arc::from("");
        self.free.push(i);
        self.evictions += 1;
    }
}

/// A thread-safe LRU of rendered query responses. Capacity 0 disables
/// caching entirely (every lookup misses, every insert is dropped).
pub struct QueryCache {
    inner: Mutex<Lru>,
}

/// Memo capacity for a front end whose response cache holds
/// `cache_capacity` entries: several raw spellings can map onto one
/// cached response, so the memo runs larger than the cache — but
/// entries are ~32 bytes, so even the ceiling is small. 0 stays 0:
/// with caching disabled a memo could never produce a hit.
#[must_use]
pub fn memo_capacity(cache_capacity: usize) -> usize {
    if cache_capacity == 0 {
        0
    } else {
        cache_capacity.saturating_mul(4).clamp(1024, 1 << 16)
    }
}

/// A bounded memo from a *raw request-body* hash to values derived by a
/// pure function of those bytes — the canonical fingerprint, plus
/// whatever per-request accounting the cache-hit path needs.
///
/// Equal bytes parse equally, so a memo hit legitimately skips the full
/// JSON parse in front of the response cache — on large query bodies
/// the parse dominates the warm path. Bodies that differ only in field
/// order or whitespace miss *here* but converge on the same canonical
/// fingerprint through the parse path, so cache semantics are
/// unchanged; the memo is an accelerator, never a source of truth.
pub struct ParseMemo<V> {
    inner: Mutex<HashMap<u128, V>>,
    capacity: usize,
}

impl<V: Copy> ParseMemo<V> {
    /// An empty memo holding at most `capacity` entries (0 disables it).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::with_capacity(capacity.min(1 << 16))),
            capacity,
        }
    }

    /// Survive poisoning the same way [`QueryCache`] does: it is only a
    /// memo, so a map interrupted mid-insert is simply dumped.
    fn lock(&self) -> MutexGuard<'_, HashMap<u128, V>> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            let mut map = poisoned.into_inner();
            map.clear();
            self.inner.clear_poison();
            map
        })
    }

    /// The memoized value for these exact body bytes, if any.
    #[must_use]
    pub fn get(&self, raw: u128) -> Option<V> {
        self.lock().get(&raw).copied()
    }

    /// Memoize `value` for `raw`. At capacity the whole map is dumped
    /// rather than tracking recency — a memo refills in one miss per
    /// body, so LRU bookkeeping on the hot path buys nothing.
    pub fn put(&self, raw: u128, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.lock();
        if map.len() >= self.capacity && !map.contains_key(&raw) {
            map.clear();
        }
        map.insert(raw, value);
    }
}

impl QueryCache {
    /// An empty cache holding at most `capacity` responses totalling at
    /// most [`BYTE_BUDGET`] bytes.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_budget(capacity, BYTE_BUDGET)
    }

    /// An empty cache with an explicit byte budget (tests).
    #[must_use]
    pub fn with_byte_budget(capacity: usize, byte_budget: usize) -> Self {
        Self {
            inner: Mutex::new(Lru::empty(capacity, byte_budget)),
        }
    }

    /// Lock the LRU, surviving poisoning: the server catches panics per
    /// connection, so a panic inside a cache operation must not turn
    /// every later query into a lock panic (a permanent zombie that
    /// still answers `/healthz`). The interrupted operation may have
    /// left the list inconsistent, so a poisoned cache is dumped — it
    /// is only a cache — rather than served from.
    fn lock(&self) -> MutexGuard<'_, Lru> {
        self.inner.lock().unwrap_or_else(|poisoned| {
            let mut lru = poisoned.into_inner();
            let evictions = lru.evictions;
            *lru = Lru::empty(lru.capacity, lru.byte_budget);
            lru.evictions = evictions;
            self.inner.clear_poison();
            lru
        })
    }

    /// Fetch a cached response and mark it most recently used.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let mut lru = self.lock();
        let &i = lru.map.get(key)?;
        let value = Arc::clone(&lru.entries[i].value);
        if lru.head != i {
            lru.unlink(i);
            lru.push_front(i);
        }
        Some(value)
    }

    /// Insert (or refresh) a response, evicting least recently used
    /// entries while over the count capacity or the byte budget. A
    /// value that alone exceeds the whole budget is not cached.
    pub fn put(&self, key: CacheKey, value: Arc<str>) {
        let mut lru = self.lock();
        if lru.capacity == 0 || value.len() > lru.byte_budget {
            return;
        }
        if let Some(&i) = lru.map.get(&key) {
            lru.bytes -= lru.entries[i].value.len();
            lru.bytes += value.len();
            lru.entries[i].value = value;
            if lru.head != i {
                lru.unlink(i);
                lru.push_front(i);
            }
        } else {
            let entry = Entry {
                key,
                value,
                prev: NIL,
                next: NIL,
            };
            let i = if let Some(i) = lru.free.pop() {
                lru.entries[i] = entry;
                i
            } else {
                lru.entries.push(entry);
                lru.entries.len() - 1
            };
            lru.bytes += lru.entries[i].value.len();
            lru.map.insert(key, i);
            lru.push_front(i);
        }
        // The freshly touched entry is the head, so these evictions
        // never remove it: once it is the only survivor, `map.len()`
        // is 1 ≤ capacity and `bytes ≤ byte_budget` (checked above).
        while lru.map.len() > lru.capacity || lru.bytes > lru.byte_budget {
            lru.evict_tail();
        }
    }

    /// Number of cached responses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Entries evicted by capacity or byte-budget pressure since the
    /// cache was created.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(fp: u128, generation: u64) -> CacheKey {
        (fp, generation)
    }

    fn val(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_and_lru_eviction_order() {
        let c = QueryCache::new(2);
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(1, 0), val("one"));
        c.put(key(2, 0), val("two"));
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("one"));
        // 2 is now least recently used; inserting a third evicts it.
        c.put(key(3, 0), val("three"));
        assert!(c.get(&key(2, 0)).is_none());
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("one"));
        assert_eq!(c.get(&key(3, 0)).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn same_fingerprint_different_generation_are_distinct() {
        let c = QueryCache::new(8);
        c.put(key(7, 0), val("gen0"));
        c.put(key(7, 1), val("gen1"));
        assert_eq!(c.get(&key(7, 0)).as_deref(), Some("gen0"));
        assert_eq!(c.get(&key(7, 1)).as_deref(), Some("gen1"));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let c = QueryCache::new(2);
        c.put(key(1, 0), val("a"));
        c.put(key(2, 0), val("b"));
        c.put(key(1, 0), val("a2"));
        c.put(key(3, 0), val("c")); // evicts 2, not the refreshed 1
        assert_eq!(c.get(&key(1, 0)).as_deref(), Some("a2"));
        assert!(c.get(&key(2, 0)).is_none());
    }

    #[test]
    fn byte_budget_bounds_retained_memory() {
        // Budget of 100 bytes: four 30-byte values can't all stay.
        let c = QueryCache::with_byte_budget(1024, 100);
        let big = "x".repeat(30);
        for i in 0..4u128 {
            c.put(key(i, 0), val(&big));
        }
        assert_eq!(c.len(), 3, "fourth insert must evict the LRU entry");
        assert!(c.get(&key(0, 0)).is_none());
        assert_eq!(c.get(&key(3, 0)).as_deref(), Some(big.as_str()));
        // A value bigger than the whole budget is never cached.
        c.put(key(9, 0), val(&"y".repeat(101)));
        assert!(c.get(&key(9, 0)).is_none());
        assert_eq!(c.len(), 3);
        // Refreshing a key with a bigger value re-balances the budget.
        c.put(key(3, 0), val(&"z".repeat(90)));
        assert_eq!(c.get(&key(3, 0)).as_deref(), Some("z".repeat(90).as_str()));
        assert_eq!(c.len(), 1, "the two other 30-byte entries must go");
        // Freed slab slots are reused, not leaked.
        for i in 100..200u128 {
            c.put(key(i, 0), val("small"));
        }
        assert!(c.len() <= 20);
    }

    #[test]
    fn evictions_count_both_pressure_kinds() {
        let c = QueryCache::with_byte_budget(2, 100);
        assert_eq!(c.evictions(), 0);
        c.put(key(1, 0), val("a"));
        c.put(key(2, 0), val("b"));
        assert_eq!(c.evictions(), 0, "within capacity: nothing evicted");
        c.put(key(3, 0), val("c"));
        assert_eq!(c.evictions(), 1, "count-capacity eviction");
        // A budget-sized value: the third entry trips a count eviction
        // first, then the remaining 1-byte survivor goes out by bytes.
        c.put(key(4, 0), val(&"x".repeat(100)));
        assert_eq!(c.evictions(), 3, "count then byte-budget eviction");
        // Refreshing an existing key evicts nothing.
        c.put(key(4, 0), val("small"));
        assert_eq!(c.evictions(), 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = QueryCache::new(0);
        c.put(key(1, 0), val("x"));
        assert!(c.get(&key(1, 0)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let c = QueryCache::new(1);
        for i in 0..100u128 {
            c.put(key(i, 0), val(&i.to_string()));
            assert_eq!(c.get(&key(i, 0)).as_deref(), Some(i.to_string().as_str()));
            if i > 0 {
                assert!(c.get(&key(i - 1, 0)).is_none());
            }
        }
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn poisoned_lock_recovers_by_dumping() {
        let c = QueryCache::new(4);
        c.put(key(1, 0), val("x"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = c.inner.lock().unwrap();
            panic!("poison the cache lock");
        }));
        assert!(result.is_err());
        // The cache dumped its (possibly inconsistent) contents and
        // keeps working — no permanent lock panic on every later query.
        assert!(c.get(&key(1, 0)).is_none());
        c.put(key(2, 0), val("y"));
        assert_eq!(c.get(&key(2, 0)).as_deref(), Some("y"));
    }

    #[test]
    fn parse_memo_roundtrips_and_dumps_at_capacity() {
        let m: ParseMemo<u128> = ParseMemo::new(2);
        assert!(m.get(1).is_none());
        m.put(1, 10);
        m.put(2, 20);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(2), Some(20));
        // Refreshing an existing key at capacity must not dump.
        m.put(2, 21);
        assert_eq!(m.get(1), Some(10));
        assert_eq!(m.get(2), Some(21));
        // A new key at capacity dumps the map, then inserts.
        m.put(3, 30);
        assert!(m.get(1).is_none());
        assert_eq!(m.get(3), Some(30));
    }

    #[test]
    fn parse_memo_zero_capacity_disables() {
        let m: ParseMemo<u128> = ParseMemo::new(0);
        m.put(1, 10);
        assert!(m.get(1).is_none());
    }

    #[test]
    fn parse_memo_poisoned_lock_recovers_by_dumping() {
        let m: ParseMemo<u128> = ParseMemo::new(8);
        m.put(1, 10);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.inner.lock().unwrap();
            panic!("poison the memo lock");
        }));
        assert!(result.is_err());
        assert!(m.get(1).is_none());
        m.put(2, 20);
        assert_eq!(m.get(2), Some(20));
    }

    #[test]
    fn concurrent_access_is_safe_and_bounded() {
        let c = Arc::new(QueryCache::new(64));
        std::thread::scope(|s| {
            for t in 0..8u128 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..500u128 {
                        let k = key(t * 1000 + (i % 96), i as u64 % 3);
                        if let Some(v) = c.get(&k) {
                            assert!(!v.is_empty());
                        } else {
                            c.put(k, val("payload"));
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 64);
    }
}
