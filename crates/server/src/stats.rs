//! Lock-free server counters and a log-bucketed latency histogram.
//!
//! Everything is `AtomicU64` with relaxed ordering — the stats endpoint
//! is observability, not accounting, and must never contend with the
//! query hot path. The histogram buckets latencies by power-of-two
//! microseconds (bucket 0 holds 0 µs; bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i)` µs), which is accurate to within ~50% per sample
//! across nine decades — plenty for p50/p95/p99 reporting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 histogram buckets: covers up to ~2^40 µs ≈ 12 days.
pub const BUCKETS: usize = 40;

/// A latency histogram with power-of-two microsecond buckets, plus
/// exact sum/min/max — the log2 buckets alone are accurate to ~50% per
/// sample, and the saturation clamp would silently hide the true
/// worst-case latency from `/stats` and the load-harness reports.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Copy out the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Exact sum of every recorded latency, µs.
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Exact smallest recorded latency, µs (`None` before any sample).
    #[must_use]
    pub fn min_us(&self) -> Option<u64> {
        let v = self.min_us.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// Exact largest recorded latency, µs (`None` before any sample —
    /// distinguishable from a genuine 0 µs fastest-path sample).
    #[must_use]
    pub fn max_us(&self) -> Option<u64> {
        self.min_us().map(|_| self.max_us.load(Ordering::Relaxed))
    }

    /// Estimate the `p`-th percentile (0–100, clamped) in milliseconds
    /// from a snapshot: the geometric midpoint of the bucket containing
    /// the rank. Returns 0.0 for an empty histogram.
    ///
    /// The last bucket is the *saturation* bucket — every duration at or
    /// beyond `2^(BUCKETS-2)` µs is clamped into it, so its upper edge
    /// is unbounded. A percentile landing there reports the bucket's
    /// lower bound (the clamp value, the largest latency the histogram
    /// can resolve) rather than a fabricated midpoint above it.
    #[must_use]
    pub fn percentile_ms(counts: &[u64; BUCKETS], p: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket 0 holds 0 µs; bucket i≥1 covers [2^(i-1), 2^i) µs.
                let low = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                if i == BUCKETS - 1 {
                    return low / 1000.0;
                }
                let high = (1u64 << i) as f64;
                return (low + high) / 2.0 / 1000.0;
            }
        }
        f64::from(u32::MAX) // unreachable: ranks are <= total
    }
}

/// All server counters, shared by the workers, the refresher, and the
/// `/stats` endpoint.
#[derive(Debug)]
pub struct ServerStats {
    /// Monotonic start instant, for `uptime_s`.
    pub started: Instant,
    /// Wall-clock start as a unix timestamp (seconds), so scrapers can
    /// align counter resets across restarts.
    pub started_unix: u64,
    /// Requests that reached routing (any endpoint, any status).
    pub requests: AtomicU64,
    /// `POST /query` requests.
    pub query: AtomicU64,
    /// `POST /query_batch` requests.
    pub query_batch: AtomicU64,
    /// Individual queries inside batch requests.
    pub batched_queries: AtomicU64,
    /// Internal shard endpoints (`/shard_query`, `/shard_query_batch`,
    /// `/shard_reports`) served for a coordinator.
    pub shard: AtomicU64,
    /// `GET /corpus` requests.
    pub corpus: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz: AtomicU64,
    /// `GET /stats` requests.
    pub stats: AtomicU64,
    /// `GET /metrics` scrapes.
    pub metrics: AtomicU64,
    /// Responses with a non-2xx status.
    pub errors: AtomicU64,
    /// Coordinator responses served with at least one degraded shard
    /// (always 0 on a single-store server).
    pub degraded: AtomicU64,
    /// Query-cache hits.
    pub cache_hits: AtomicU64,
    /// Query-cache misses.
    pub cache_misses: AtomicU64,
    /// Incremental snapshot refreshes applied by the background poller.
    pub refreshes: AtomicU64,
    /// Full index rebuilds (post-compaction `StaleGeneration`).
    pub rebuilds: AtomicU64,
    /// The store generation the refresher last observed on disk; with
    /// [`Self::store_generation`] ≥ served generation always, the
    /// difference is the refresher's generation lag.
    pub store_generation: AtomicU64,
    /// Requests that carried `"trace": true`.
    pub traced: AtomicU64,
    /// Requests at or over the slow-query threshold (0 when no
    /// threshold is armed).
    pub slow_queries: AtomicU64,
    /// Planner totals across answered queries: candidates that survived
    /// retrieval + join.
    pub plan_candidates: AtomicU64,
    /// Planner totals: cheap (pass-1 Pearson) estimator invocations.
    pub plan_cheap_invocations: AtomicU64,
    /// Planner totals: requested-estimator invocations (the contested
    /// band on the two-pass plan, every admitted candidate otherwise).
    pub plan_expensive_invocations: AtomicU64,
    /// Planner totals: candidates pruned without the expensive
    /// estimator.
    pub plan_pruned: AtomicU64,
    /// Planner totals: promotion fixed-point rounds.
    pub plan_promotion_rounds: AtomicU64,
    /// Query latency histogram (`/query` and `/query_batch`, cache hits
    /// included).
    pub latency: LatencyHistogram,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            started_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            requests: AtomicU64::new(0),
            query: AtomicU64::new(0),
            query_batch: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            shard: AtomicU64::new(0),
            corpus: AtomicU64::new(0),
            healthz: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            metrics: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            refreshes: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
            store_generation: AtomicU64::new(0),
            traced: AtomicU64::new(0),
            slow_queries: AtomicU64::new(0),
            plan_candidates: AtomicU64::new(0),
            plan_cheap_invocations: AtomicU64::new(0),
            plan_expensive_invocations: AtomicU64::new(0),
            plan_pruned: AtomicU64::new(0),
            plan_promotion_rounds: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
        }
    }
}

impl ServerStats {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Whole seconds since the server started.
    #[must_use]
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Fold one answered query's planner statistics into the totals.
    pub fn absorb_plan(&self, plan: &sketch_index::PlanStats) {
        self.plan_candidates
            .fetch_add(plan.candidates as u64, Ordering::Relaxed);
        self.plan_cheap_invocations
            .fetch_add(plan.cheap_invocations as u64, Ordering::Relaxed);
        self.plan_expensive_invocations
            .fetch_add(plan.expensive_invocations as u64, Ordering::Relaxed);
        self.plan_pruned
            .fetch_add(plan.pruned as u64, Ordering::Relaxed);
        self.plan_promotion_rounds
            .fetch_add(plan.promotion_rounds as u64, Ordering::Relaxed);
    }

    /// Render the `/stats` payload: counters plus histogram percentiles,
    /// with `cached` (current cache entry count) and `generation` passed
    /// in by the caller.
    #[must_use]
    pub fn to_json(&self, generation: u64, cached: usize) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let counts = self.latency.snapshot();
        let served: u64 = counts.iter().sum();
        format!(
            "{{\"generation\":{generation},\"uptime_s\":{},\"started_unix\":{},\
             \"requests\":{},\"query\":{},\
             \"query_batch\":{},\"batched_queries\":{},\"shard\":{},\"corpus\":{},\
             \"healthz\":{},\"stats\":{},\"errors\":{},\"degraded\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{cached},\
             \"refreshes\":{},\"rebuilds\":{},\"latency\":{{\"count\":{served},\
             \"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4},\
             \"min_ms\":{:.4},\"max_ms\":{:.4}}}}}",
            self.uptime_s(),
            self.started_unix,
            load(&self.requests),
            load(&self.query),
            load(&self.query_batch),
            load(&self.batched_queries),
            load(&self.shard),
            load(&self.corpus),
            load(&self.healthz),
            load(&self.stats),
            load(&self.errors),
            load(&self.degraded),
            load(&self.cache_hits),
            load(&self.cache_misses),
            load(&self.refreshes),
            load(&self.rebuilds),
            LatencyHistogram::percentile_ms(&counts, 50.0),
            LatencyHistogram::percentile_ms(&counts, 95.0),
            LatencyHistogram::percentile_ms(&counts, 99.0),
            self.latency.min_us().unwrap_or(0) as f64 / 1000.0,
            self.latency.max_us().unwrap_or(0) as f64 / 1000.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::default();
        h.record_us(0); // bucket 0
        h.record_us(1); // bucket 1
        h.record_us(3); // bucket 2
        h.record_us(1000);
        h.record_us(u64::MAX); // clamped to the last bucket
        let counts = h.snapshot();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record_us(100); // ~0.1 ms
        }
        for _ in 0..10 {
            h.record_us(50_000); // ~50 ms
        }
        let counts = h.snapshot();
        let p50 = LatencyHistogram::percentile_ms(&counts, 50.0);
        let p95 = LatencyHistogram::percentile_ms(&counts, 95.0);
        let p99 = LatencyHistogram::percentile_ms(&counts, 99.0);
        assert!(p50 < 1.0, "p50={p50}");
        assert!(p95 > 10.0, "p95={p95}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(LatencyHistogram::percentile_ms(&[0; BUCKETS], 50.0), 0.0);
    }

    #[test]
    fn saturated_bucket_reports_the_clamp_not_a_midpoint() {
        // Every recorded duration is far beyond the last bucket's lower
        // edge: the percentile must report the clamp value 2^38 µs
        // (≈ 2.75e5 ms), not the fabricated midpoint (2^38 + 2^39)/2.
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record_us(u64::MAX);
        }
        let counts = h.snapshot();
        let clamp_ms = (1u64 << (BUCKETS - 2)) as f64 / 1000.0;
        for p in [50.0, 99.0, 100.0] {
            assert_eq!(LatencyHistogram::percentile_ms(&counts, p), clamp_ms);
        }
        // Out-of-range percentile requests clamp instead of scanning
        // past the histogram.
        assert_eq!(LatencyHistogram::percentile_ms(&counts, 150.0), clamp_ms);
        let h2 = LatencyHistogram::default();
        h2.record_us(100);
        let c2 = h2.snapshot();
        assert_eq!(
            LatencyHistogram::percentile_ms(&c2, -5.0),
            LatencyHistogram::percentile_ms(&c2, 0.0)
        );
    }

    #[test]
    fn stats_json_is_parseable() {
        let s = ServerStats::default();
        ServerStats::bump(&s.requests);
        ServerStats::bump(&s.query);
        ServerStats::bump(&s.cache_hits);
        s.latency.record_us(250);
        let text = s.to_json(3, 7);
        let v = correlation_sketches::json::parse(&text).unwrap();
        let obj = v.as_object("stats").unwrap();
        assert_eq!(obj.get("generation").unwrap().as_u64("g").unwrap(), 3);
        assert_eq!(obj.get("requests").unwrap().as_u64("r").unwrap(), 1);
        assert_eq!(obj.get("cache_entries").unwrap().as_u64("c").unwrap(), 7);
        let lat = obj.get("latency").unwrap().as_object("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64("n").unwrap(), 1);
        assert!(lat.get("p99_ms").unwrap().as_f64("p99").unwrap() > 0.0);
        assert_eq!(lat.get("min_ms").unwrap().as_f64("min").unwrap(), 0.25);
        assert_eq!(lat.get("max_ms").unwrap().as_f64("max").unwrap(), 0.25);
        assert!(obj.get("uptime_s").unwrap().as_u64("u").is_ok());
        assert!(obj.get("started_unix").unwrap().as_u64("s").unwrap() > 1_600_000_000);
    }

    #[test]
    fn exact_min_max_sum_track_alongside_the_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.min_us(), None);
        assert_eq!(h.max_us(), None);
        assert_eq!(h.sum_us(), 0);
        h.record_us(700);
        h.record_us(3);
        h.record_us(90_000);
        assert_eq!(h.min_us(), Some(3));
        assert_eq!(h.max_us(), Some(90_000));
        assert_eq!(h.sum_us(), 90_703);
        // A genuine 0 µs sample is distinguishable from "no samples".
        let z = LatencyHistogram::default();
        z.record_us(0);
        assert_eq!(z.min_us(), Some(0));
        assert_eq!(z.max_us(), Some(0));
    }
}
