//! Lock-free server counters and a log-bucketed latency histogram.
//!
//! Everything is `AtomicU64` with relaxed ordering — the stats endpoint
//! is observability, not accounting, and must never contend with the
//! query hot path. The histogram buckets latencies by power-of-two
//! microseconds (bucket 0 holds 0 µs; bucket `i ≥ 1` covers
//! `[2^(i-1), 2^i)` µs), which is accurate to within ~50% per sample
//! across nine decades — plenty for p50/p95/p99 reporting.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 histogram buckets: covers up to ~2^40 µs ≈ 12 days.
const BUCKETS: usize = 40;

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Record one latency in microseconds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Estimate the `p`-th percentile (0–100, clamped) in milliseconds
    /// from a snapshot: the geometric midpoint of the bucket containing
    /// the rank. Returns 0.0 for an empty histogram.
    ///
    /// The last bucket is the *saturation* bucket — every duration at or
    /// beyond `2^(BUCKETS-2)` µs is clamped into it, so its upper edge
    /// is unbounded. A percentile landing there reports the bucket's
    /// lower bound (the clamp value, the largest latency the histogram
    /// can resolve) rather than a fabricated midpoint above it.
    #[must_use]
    pub fn percentile_ms(counts: &[u64; BUCKETS], p: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * total as f64)
            .ceil()
            .max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket 0 holds 0 µs; bucket i≥1 covers [2^(i-1), 2^i) µs.
                let low = if i == 0 {
                    0.0
                } else {
                    (1u64 << (i - 1)) as f64
                };
                if i == BUCKETS - 1 {
                    return low / 1000.0;
                }
                let high = (1u64 << i) as f64;
                return (low + high) / 2.0 / 1000.0;
            }
        }
        f64::from(u32::MAX) // unreachable: ranks are <= total
    }
}

/// All server counters, shared by the workers, the refresher, and the
/// `/stats` endpoint.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests that reached routing (any endpoint, any status).
    pub requests: AtomicU64,
    /// `POST /query` requests.
    pub query: AtomicU64,
    /// `POST /query_batch` requests.
    pub query_batch: AtomicU64,
    /// Individual queries inside batch requests.
    pub batched_queries: AtomicU64,
    /// Internal shard endpoints (`/shard_query`, `/shard_query_batch`,
    /// `/shard_reports`) served for a coordinator.
    pub shard: AtomicU64,
    /// `GET /corpus` requests.
    pub corpus: AtomicU64,
    /// `GET /healthz` requests.
    pub healthz: AtomicU64,
    /// `GET /stats` requests.
    pub stats: AtomicU64,
    /// Responses with a non-2xx status.
    pub errors: AtomicU64,
    /// Coordinator responses served with at least one degraded shard
    /// (always 0 on a single-store server).
    pub degraded: AtomicU64,
    /// Query-cache hits.
    pub cache_hits: AtomicU64,
    /// Query-cache misses.
    pub cache_misses: AtomicU64,
    /// Incremental snapshot refreshes applied by the background poller.
    pub refreshes: AtomicU64,
    /// Full index rebuilds (post-compaction `StaleGeneration`).
    pub rebuilds: AtomicU64,
    /// Query latency histogram (`/query` and `/query_batch`, cache hits
    /// included).
    pub latency: LatencyHistogram,
}

impl ServerStats {
    /// Bump a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Render the `/stats` payload: counters plus histogram percentiles,
    /// with `cached` (current cache entry count) and `generation` passed
    /// in by the caller.
    #[must_use]
    pub fn to_json(&self, generation: u64, cached: usize) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let counts = self.latency.snapshot();
        let served: u64 = counts.iter().sum();
        format!(
            "{{\"generation\":{generation},\"requests\":{},\"query\":{},\
             \"query_batch\":{},\"batched_queries\":{},\"shard\":{},\"corpus\":{},\
             \"healthz\":{},\"stats\":{},\"errors\":{},\"degraded\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_entries\":{cached},\
             \"refreshes\":{},\"rebuilds\":{},\"latency\":{{\"count\":{served},\
             \"p50_ms\":{:.4},\"p95_ms\":{:.4},\"p99_ms\":{:.4}}}}}",
            load(&self.requests),
            load(&self.query),
            load(&self.query_batch),
            load(&self.batched_queries),
            load(&self.shard),
            load(&self.corpus),
            load(&self.healthz),
            load(&self.stats),
            load(&self.errors),
            load(&self.degraded),
            load(&self.cache_hits),
            load(&self.cache_misses),
            load(&self.refreshes),
            load(&self.rebuilds),
            LatencyHistogram::percentile_ms(&counts, 50.0),
            LatencyHistogram::percentile_ms(&counts, 95.0),
            LatencyHistogram::percentile_ms(&counts, 99.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = LatencyHistogram::default();
        h.record_us(0); // bucket 0
        h.record_us(1); // bucket 1
        h.record_us(3); // bucket 2
        h.record_us(1000);
        h.record_us(u64::MAX); // clamped to the last bucket
        let counts = h.snapshot();
        assert_eq!(counts.iter().sum::<u64>(), 5);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[BUCKETS - 1], 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_data() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record_us(100); // ~0.1 ms
        }
        for _ in 0..10 {
            h.record_us(50_000); // ~50 ms
        }
        let counts = h.snapshot();
        let p50 = LatencyHistogram::percentile_ms(&counts, 50.0);
        let p95 = LatencyHistogram::percentile_ms(&counts, 95.0);
        let p99 = LatencyHistogram::percentile_ms(&counts, 99.0);
        assert!(p50 < 1.0, "p50={p50}");
        assert!(p95 > 10.0, "p95={p95}");
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(LatencyHistogram::percentile_ms(&[0; BUCKETS], 50.0), 0.0);
    }

    #[test]
    fn saturated_bucket_reports_the_clamp_not_a_midpoint() {
        // Every recorded duration is far beyond the last bucket's lower
        // edge: the percentile must report the clamp value 2^38 µs
        // (≈ 2.75e5 ms), not the fabricated midpoint (2^38 + 2^39)/2.
        let h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record_us(u64::MAX);
        }
        let counts = h.snapshot();
        let clamp_ms = (1u64 << (BUCKETS - 2)) as f64 / 1000.0;
        for p in [50.0, 99.0, 100.0] {
            assert_eq!(LatencyHistogram::percentile_ms(&counts, p), clamp_ms);
        }
        // Out-of-range percentile requests clamp instead of scanning
        // past the histogram.
        assert_eq!(LatencyHistogram::percentile_ms(&counts, 150.0), clamp_ms);
        let h2 = LatencyHistogram::default();
        h2.record_us(100);
        let c2 = h2.snapshot();
        assert_eq!(
            LatencyHistogram::percentile_ms(&c2, -5.0),
            LatencyHistogram::percentile_ms(&c2, 0.0)
        );
    }

    #[test]
    fn stats_json_is_parseable() {
        let s = ServerStats::default();
        ServerStats::bump(&s.requests);
        ServerStats::bump(&s.query);
        ServerStats::bump(&s.cache_hits);
        s.latency.record_us(250);
        let text = s.to_json(3, 7);
        let v = correlation_sketches::json::parse(&text).unwrap();
        let obj = v.as_object("stats").unwrap();
        assert_eq!(obj.get("generation").unwrap().as_u64("g").unwrap(), 3);
        assert_eq!(obj.get("requests").unwrap().as_u64("r").unwrap(), 1);
        assert_eq!(obj.get("cache_entries").unwrap().as_u64("c").unwrap(), 7);
        let lat = obj.get("latency").unwrap().as_object("latency").unwrap();
        assert_eq!(lat.get("count").unwrap().as_u64("n").unwrap(), 1);
        assert!(lat.get("p99_ms").unwrap().as_f64("p99").unwrap() > 0.0);
    }
}
