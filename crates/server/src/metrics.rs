//! The `GET /metrics` surface: every [`ServerStats`] counter, the cache
//! and refresher gauges, and the query latency histogram rendered in
//! Prometheus text exposition format (version 0.0.4) via
//! [`sketch_obs::promtext`].
//!
//! All families share the `sketch_` prefix. The single-store server and
//! the coordinator expose the same common families (requests, errors,
//! cache, latency, plan totals); the server adds corpus gauges
//! (`sketch_generation`, `sketch_store_generation`,
//! `sketch_generation_lag`, `sketch_sketches`), the coordinator adds
//! per-shard gauges (`sketch_shard_healthy{shard="i"}`, …). Rendering
//! reads relaxed atomics only — a scrape never touches a lock the query
//! path contends on (the one exception is the cache's own mutex, for
//! the entry/eviction gauges).

use std::sync::atomic::Ordering;

use sketch_obs::promtext;

use crate::stats::ServerStats;

/// One worker shard's last-known state, as the coordinator exposes it.
pub(crate) struct ShardView {
    pub generation: u64,
    pub sketches: u64,
    pub healthy: bool,
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    promtext::push_family(out, name, "counter", help);
    promtext::push_sample_u64(out, name, &[], value);
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    promtext::push_family(out, name, "gauge", help);
    promtext::push_sample_u64(out, name, &[], value);
}

/// The families both front ends share.
fn push_common(out: &mut String, stats: &ServerStats, cache_entries: u64, cache_evictions: u64) {
    let load = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);

    promtext::push_family(
        out,
        "sketch_requests_total",
        "counter",
        "Requests routed, by endpoint.",
    );
    for (endpoint, c) in [
        ("query", &stats.query),
        ("query_batch", &stats.query_batch),
        ("shard", &stats.shard),
        ("corpus", &stats.corpus),
        ("healthz", &stats.healthz),
        ("stats", &stats.stats),
        ("metrics", &stats.metrics),
    ] {
        promtext::push_sample_u64(
            out,
            "sketch_requests_total",
            &[("endpoint", endpoint)],
            load(c),
        );
    }
    counter(
        out,
        "sketch_errors_total",
        "Responses with a non-2xx status.",
        load(&stats.errors),
    );
    counter(
        out,
        "sketch_batched_queries_total",
        "Individual queries inside /query_batch requests.",
        load(&stats.batched_queries),
    );
    counter(
        out,
        "sketch_degraded_responses_total",
        "Responses served with at least one degraded shard.",
        load(&stats.degraded),
    );
    counter(
        out,
        "sketch_traced_requests_total",
        "Requests that asked for a span trace.",
        load(&stats.traced),
    );
    counter(
        out,
        "sketch_slow_queries_total",
        "Requests at or over the slow-query threshold.",
        load(&stats.slow_queries),
    );

    counter(
        out,
        "sketch_cache_hits_total",
        "Query-cache hits.",
        load(&stats.cache_hits),
    );
    counter(
        out,
        "sketch_cache_misses_total",
        "Query-cache misses.",
        load(&stats.cache_misses),
    );
    counter(
        out,
        "sketch_cache_evictions_total",
        "Query-cache entries evicted by capacity or byte-budget pressure.",
        cache_evictions,
    );
    gauge(
        out,
        "sketch_cache_entries",
        "Query-cache entries currently resident.",
        cache_entries,
    );

    counter(
        out,
        "sketch_refreshes_total",
        "Incremental snapshot refreshes (generation observations on the coordinator).",
        load(&stats.refreshes),
    );
    counter(
        out,
        "sketch_rebuilds_total",
        "Full index rebuilds after a compaction.",
        load(&stats.rebuilds),
    );

    counter(
        out,
        "sketch_plan_candidates_total",
        "Planner: candidates that survived retrieval and join.",
        load(&stats.plan_candidates),
    );
    counter(
        out,
        "sketch_plan_cheap_invocations_total",
        "Planner: pass-1 (Pearson) estimator invocations.",
        load(&stats.plan_cheap_invocations),
    );
    counter(
        out,
        "sketch_plan_expensive_invocations_total",
        "Planner: requested-estimator invocations.",
        load(&stats.plan_expensive_invocations),
    );
    counter(
        out,
        "sketch_plan_pruned_total",
        "Planner: candidates pruned without the expensive estimator.",
        load(&stats.plan_pruned),
    );
    counter(
        out,
        "sketch_plan_promotion_rounds_total",
        "Planner: promotion fixed-point rounds.",
        load(&stats.plan_promotion_rounds),
    );

    promtext::push_family(
        out,
        "sketch_query_latency_seconds",
        "histogram",
        "Answered /query and /query_batch latency.",
    );
    promtext::push_log2_us_histogram(
        out,
        "sketch_query_latency_seconds",
        &[],
        &stats.latency.snapshot(),
        stats.latency.sum_us(),
    );

    gauge(
        out,
        "sketch_uptime_seconds",
        "Whole seconds since this process started.",
        stats.uptime_s(),
    );
    gauge(
        out,
        "sketch_started_time_seconds",
        "Unix time this process started, seconds.",
        stats.started_unix,
    );
}

/// Render the single-store server's `/metrics` body.
pub(crate) fn render_server(
    stats: &ServerStats,
    generation: u64,
    sketches: u64,
    cache_entries: u64,
    cache_evictions: u64,
) -> String {
    let mut out = String::with_capacity(4096);
    push_common(&mut out, stats, cache_entries, cache_evictions);
    gauge(
        &mut out,
        "sketch_generation",
        "Store generation currently served.",
        generation,
    );
    let store_generation = stats.store_generation.load(Ordering::Relaxed);
    gauge(
        &mut out,
        "sketch_store_generation",
        "Store generation the refresher last observed on disk.",
        store_generation,
    );
    gauge(
        &mut out,
        "sketch_generation_lag",
        "Generations the served snapshot trails the on-disk store.",
        store_generation.saturating_sub(generation),
    );
    gauge(
        &mut out,
        "sketch_sketches",
        "Live sketches in the served snapshot.",
        sketches,
    );
    out
}

/// Render the coordinator's `/metrics` body: the common families plus
/// one gauge sample per shard.
pub(crate) fn render_coordinator(
    stats: &ServerStats,
    shards: &[ShardView],
    cache_entries: u64,
    cache_evictions: u64,
) -> String {
    let mut out = String::with_capacity(4096 + shards.len() * 256);
    push_common(&mut out, stats, cache_entries, cache_evictions);
    gauge(
        &mut out,
        "sketch_shards",
        "Worker shards this coordinator fans out over.",
        shards.len() as u64,
    );
    let labels: Vec<String> = (0..shards.len()).map(|i| i.to_string()).collect();
    promtext::push_family(
        &mut out,
        "sketch_shard_healthy",
        "gauge",
        "1 when the shard answered its last probe or call, else 0.",
    );
    for (i, s) in shards.iter().enumerate() {
        promtext::push_sample_u64(
            &mut out,
            "sketch_shard_healthy",
            &[("shard", &labels[i])],
            u64::from(s.healthy),
        );
    }
    promtext::push_family(
        &mut out,
        "sketch_shard_generation",
        "gauge",
        "Last-known store generation of the shard.",
    );
    for (i, s) in shards.iter().enumerate() {
        promtext::push_sample_u64(
            &mut out,
            "sketch_shard_generation",
            &[("shard", &labels[i])],
            s.generation,
        );
    }
    promtext::push_family(
        &mut out,
        "sketch_shard_sketches",
        "gauge",
        "Last-known live sketch count of the shard.",
    );
    for (i, s) in shards.iter().enumerate() {
        promtext::push_sample_u64(
            &mut out,
            "sketch_shard_sketches",
            &[("shard", &labels[i])],
            s.sketches,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_metrics_render_every_family_once() {
        let stats = ServerStats::default();
        ServerStats::bump(&stats.query);
        stats.latency.record_us(1500);
        let body = render_server(&stats, 4, 100, 7, 2);
        for family in [
            "sketch_requests_total",
            "sketch_errors_total",
            "sketch_cache_hits_total",
            "sketch_cache_evictions_total",
            "sketch_cache_entries",
            "sketch_plan_pruned_total",
            "sketch_query_latency_seconds",
            "sketch_generation",
            "sketch_store_generation",
            "sketch_generation_lag",
            "sketch_sketches",
            "sketch_uptime_seconds",
        ] {
            assert_eq!(
                body.matches(&format!("# HELP {family} ")).count(),
                1,
                "{family}"
            );
            assert_eq!(
                body.matches(&format!("# TYPE {family} ")).count(),
                1,
                "{family}"
            );
        }
        assert!(body.contains("sketch_requests_total{endpoint=\"query\"} 1\n"));
        assert!(body.contains("sketch_generation 4\n"));
        assert!(body.contains("sketch_sketches 100\n"));
        assert!(body.contains("sketch_cache_entries 7\n"));
        assert!(body.contains("sketch_cache_evictions_total 2\n"));
        assert!(body.contains("sketch_query_latency_seconds_count 1\n"));
        assert!(body.contains("sketch_query_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
    }

    #[test]
    fn generation_lag_is_disk_minus_served_floored_at_zero() {
        let stats = ServerStats::default();
        stats.store_generation.store(9, Ordering::Relaxed);
        let body = render_server(&stats, 7, 0, 0, 0);
        assert!(body.contains("sketch_generation_lag 2\n"), "{body}");
        // Startup order can briefly leave the observed disk generation
        // behind the served one; lag must clamp, not wrap.
        let body = render_server(&stats, 11, 0, 0, 0);
        assert!(body.contains("sketch_generation_lag 0\n"));
    }

    #[test]
    fn coordinator_metrics_carry_per_shard_gauges() {
        let stats = ServerStats::default();
        let shards = [
            ShardView {
                generation: 3,
                sketches: 40,
                healthy: true,
            },
            ShardView {
                generation: 2,
                sketches: 41,
                healthy: false,
            },
        ];
        let body = render_coordinator(&stats, &shards, 0, 0);
        assert!(body.contains("sketch_shards 2\n"));
        assert!(body.contains("sketch_shard_healthy{shard=\"0\"} 1\n"));
        assert!(body.contains("sketch_shard_healthy{shard=\"1\"} 0\n"));
        assert!(body.contains("sketch_shard_generation{shard=\"1\"} 2\n"));
        assert!(body.contains("sketch_shard_sketches{shard=\"0\"} 40\n"));
        // No single-store gauges on a coordinator scrape.
        assert!(!body.contains("# HELP sketch_generation "));
        assert!(!body.contains("sketch_generation_lag"));
    }
}
