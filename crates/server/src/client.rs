//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! just enough to drive the server from the load harness, the
//! integration tests, and scripts, without external dependencies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a server.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A response: status code and body (decoded as UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
}

impl HttpClient {
    /// Connect to `addr` with a 30 s read timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connect with a hard deadline on the connect itself *and* on every
    /// subsequent read/write. The coordinator uses this so a stalled or
    /// dead worker costs one bounded timeout, never a 30 s hang.
    ///
    /// # Errors
    ///
    /// Propagates connection failures (including timeout).
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issue a `GET`.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed/oversized response.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, None)
    }

    /// Issue a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed/oversized response.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<Response> {
        self.request("POST", path, Some(body))
    }

    /// Issue a bodyless request with an arbitrary method (tests use
    /// this to cover 405 handling for HEAD/PUT/…).
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed/oversized response.
    pub fn request_with_method(&mut self, method: &str, path: &str) -> std::io::Result<Response> {
        self.request(method, path, None)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: sketch-serve\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        let mut wire = Vec::with_capacity(head.len() + body.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(body.as_bytes());
        self.stream.write_all(&wire)?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let malformed =
            |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            if self.buf.len() > 64 * 1024 {
                return Err(malformed("response head too large"));
            }
            match self.stream.read(&mut chunk)? {
                0 => return Err(malformed("connection closed mid-response")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| malformed("non-utf8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| malformed("bad status line"))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| malformed("bad content-length"))?;
                }
            }
        }
        let total = head_end + 4 + content_length;
        while self.buf.len() < total {
            match self.stream.read(&mut chunk)? {
                0 => return Err(malformed("connection closed mid-body")),
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
        let body = String::from_utf8(self.buf[head_end + 4..total].to_vec())
            .map_err(|_| malformed("non-utf8 response body"))?;
        self.buf.drain(..total);
        Ok(Response { status, body })
    }
}
