//! Graceful-termination flag: `SIGTERM`/`SIGINT` raise a process-wide
//! atomic instead of killing the process, so `corrsketch serve` can
//! drain in-flight requests, join its workers, and exit 0.
//!
//! This is the one place in the workspace that steps outside safe Rust:
//! `std` exposes no signal API, and the workspace is dependency-free by
//! design, so the module declares libc's `signal(2)` itself (libc is
//! already linked by `std` on every supported platform). The handler
//! body is a single atomic store — async-signal-safe by any reading of
//! the rules. On non-Unix targets installation is a no-op and shutdown
//! is driven by the hosting process instead.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATE: AtomicBool = AtomicBool::new(false);

/// Has a termination signal been received since [`install`]?
#[must_use]
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::SeqCst)
}

/// Raise the flag by hand — what the signal handler does, exposed so
/// tests (and embedders without signals) can drive the same path.
pub fn request_termination() {
    TERMINATE.store(true, Ordering::SeqCst);
}

/// Install the `SIGTERM`/`SIGINT` handler. Idempotent; call once at
/// server start. No-op on non-Unix targets.
pub fn install() {
    #[cfg(unix)]
    imp::install();
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        /// POSIX `signal(2)`. The handler argument and return value are
        /// `usize`-encoded function pointers (`SIG_ERR` = `usize::MAX`),
        /// which sidesteps declaring the non-trivial `sighandler_t`.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(signum: c_int) {
        // First signal: request graceful shutdown. Restoring the
        // default disposition here means a *second* signal terminates
        // immediately — so a slow startup or a wedged drain can still
        // be interrupted with a repeated Ctrl-C instead of SIGKILL.
        // SAFETY: `signal` is async-signal-safe per POSIX.
        unsafe {
            signal(signum, SIG_DFL);
        }
        super::request_termination();
    }

    pub(super) fn install() {
        // SAFETY: `signal` is the POSIX API linked by std; the handler
        // only performs an atomic store, which is async-signal-safe.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_raises_the_flag() {
        // NOTE: the flag is process-global, so this test must not run
        // before tests that assert it is unset — none do.
        install();
        assert!(!termination_requested() || cfg!(not(unix)));
        request_termination();
        assert!(termination_requested());
    }
}
