//! The scatter-gather coordinator: a front end that partitions `/query`
//! and `/query_batch` over N worker servers (one per corpus partition,
//! see `sketch_store::shard_corpus`) and merges their candidate rows
//! into the *same answer bytes* a single process would serve over the
//! union corpus.
//!
//! # Protocol
//!
//! One public query becomes two internal phases against each worker:
//!
//! 1. **Scatter** — the coordinator re-renders the request with every
//!    parameter resolved (so worker-side defaults can never skew a
//!    shard) and posts it to each worker's `/shard_query`. Workers
//!    answer with their shard-local candidate rows — overlap, sample
//!    size, and the estimate with its score bounds' inputs — in a
//!    bit-exact wire encoding (`f64::to_bits`).
//! 2. **Gather** — [`sketch_index::merge_shard_candidates`] re-cuts the
//!    union candidate set exactly as the single-process retrieval stage
//!    would, scores it, and uses per-row score bounds to compute the
//!    global k-th lower bound τ: a row whose upper bound cannot reach τ
//!    is *terminated* — its full uncertainty report is never fetched.
//!    Only the surviving rows' reports are pulled via `/shard_reports`
//!    (phase 2), and only for the winners' shards.
//!
//! The merge is unconditionally lossless (`sketch_index::merge`
//! documents the proof), so early termination is a pure transfer
//! optimization: the shipped results, scores, CIs, and tie-breaks are
//! bit-identical to `top_k_with_reports` on the union — the property
//! the `prop_shard` oracle battery checks at every shard count.
//!
//! # Consistency
//!
//! Each worker answers both phases from *its* snapshot; a mutation
//! landing between the phases would pair rows from one generation with
//! reports from another. The coordinator detects this — every internal
//! response carries the worker's generation — and re-scatters (up to
//! [`MAX_ATTEMPTS`] attempts) until both phases agree per shard, else
//! answers 503. Responses are cached under `(query fingerprint,
//! generation-vector hash)`, so mixed-generation answers can never
//! alias across mutations; degraded answers are never cached.
//!
//! # Partial failure
//!
//! A worker that cannot be reached, times out, or answers garbage
//! within `worker_timeout` makes the response **degraded, not wrong**:
//! its shard is skipped, the typed `degraded` field names the shard and
//! the last generation the coordinator observed for it, and the merge
//! runs over the shards that did answer. Never a hang (every socket op
//! is deadline-bounded), never a silently short list.

use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use sketch_index::{merge_shard_candidates, DocId, ReportedResult, ShardCandidate, ShardRows};
use sketch_obs::{promtext, Trace};

use crate::api::{self, BatchRequest, QueryBody, QueryParams, QueryRequest, ShardState};
use crate::cache::{self, ParseMemo, QueryCache};
use crate::client::HttpClient;
use crate::conn::{self, Body, ConnLimits};
use crate::http::Request;
use crate::metrics;
use crate::server::ServerError;
use crate::stats::ServerStats;

/// Scatter attempts before a phase-1/phase-2 generation mismatch (a
/// mutation racing the query) becomes a 503.
const MAX_ATTEMPTS: usize = 3;

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Worker addresses (`host:port`), one per partition, **in
    /// partition order** — the merge reconstructs union doc ids from
    /// this order, so it must match `partition.cskp`.
    pub workers: Vec<String>,
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Front-end threads in the fixed accept pool.
    pub threads: usize,
    /// Merged-response cache capacity (0 disables).
    pub cache_capacity: usize,
    /// How often the health poller refreshes worker generations.
    pub poll_interval: Duration,
    /// Keep-alive idle reclaim for public connections.
    pub keep_alive_idle: Duration,
    /// Per-request receive/send deadline for public connections.
    pub request_timeout: Duration,
    /// Deadline for each internal worker call (connect, read, write).
    /// Bounds the latency cost of a dead or stalled worker.
    pub worker_timeout: Duration,
    /// How long `start_coordinator` waits for every worker to answer
    /// its first health probe before giving up.
    pub startup_timeout: Duration,
    /// When set, trace every `/query` and `/query_batch` internally and
    /// log one structured line (with the full span tree, including
    /// per-shard scatter round trips) for each request whose total
    /// reaches the threshold. `None` disables both the logging and the
    /// always-on tracing it requires.
    pub slow_query: Option<Duration>,
    /// Default ranking parameters for requests that omit them.
    pub defaults: QueryParams,
}

impl CoordinatorConfig {
    /// Sensible defaults for fanning out over `workers`: ephemeral
    /// loopback port, 4 front-end threads, 1024-entry cache, 200 ms
    /// health polling, 2 s per-worker call deadline.
    #[must_use]
    pub fn new(workers: Vec<String>) -> Self {
        Self {
            workers,
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            cache_capacity: 1024,
            poll_interval: Duration::from_millis(200),
            keep_alive_idle: Duration::from_secs(10),
            request_timeout: Duration::from_secs(10),
            worker_timeout: Duration::from_secs(2),
            startup_timeout: Duration::from_secs(10),
            slow_query: None,
            defaults: QueryParams::default(),
        }
    }
}

/// Last-known facts about one worker, updated by every successful call
/// and by the background health poller.
#[derive(Debug, Clone, Copy)]
struct WorkerState {
    generation: u64,
    sketches: u64,
    healthy: bool,
}

/// One worker: its resolved address, a pool of keep-alive connections,
/// and the last-known state.
struct WorkerSlot {
    addr: SocketAddr,
    pool: Mutex<Vec<HttpClient>>,
    state: Mutex<WorkerState>,
}

impl WorkerSlot {
    fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            pool: Mutex::new(Vec::new()),
            state: Mutex::new(WorkerState {
                generation: 0,
                sketches: 0,
                healthy: false,
            }),
        }
    }

    fn state(&self) -> WorkerState {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn observe(&self, generation: u64, sketches: u64) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = WorkerState {
            generation,
            sketches,
            healthy: true,
        };
    }

    fn mark_unhealthy(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .healthy = false;
    }

    /// One bounded request against this worker. A pooled keep-alive
    /// connection is reused when available; on any transport error the
    /// connection is dropped (its stream state is unknown), on success
    /// it returns to the pool. A transport error on a *pooled*
    /// connection gets one retry on a fresh connection — the worker may
    /// simply have reaped the idle socket, which must not masquerade as
    /// a dead shard. `None` covers every remaining failure mode —
    /// connect refusal, timeout, non-200 — because the caller's only
    /// recourse is the same either way: degrade or retry.
    fn call(&self, timeout: Duration, method: &str, path: &str, body: &str) -> Option<String> {
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        let mut from_pool = pooled.is_some();
        let mut client = match pooled {
            Some(c) => c,
            None => HttpClient::connect_with_timeout(self.addr, timeout).ok()?,
        };
        loop {
            let response = if method == "GET" {
                client.get(path)
            } else {
                client.post(path, body)
            };
            match response {
                Ok(resp) => {
                    self.pool
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(client);
                    return (resp.status == 200).then_some(resp.body);
                }
                Err(_) if from_pool => {
                    from_pool = false;
                    client = HttpClient::connect_with_timeout(self.addr, timeout).ok()?;
                }
                Err(_) => return None,
            }
        }
    }

    /// Probe `/healthz` and fold the answer into the last-known state.
    fn probe(&self, timeout: Duration) -> bool {
        let Some(body) = self.call(timeout, "GET", "/healthz", "") else {
            self.mark_unhealthy();
            return false;
        };
        match (
            api::extract_u64(&body, "generation"),
            api::extract_u64(&body, "sketches"),
        ) {
            (Ok(generation), Ok(sketches)) => {
                self.observe(generation, sketches);
                true
            }
            _ => {
                self.mark_unhealthy();
                false
            }
        }
    }
}

/// Everything the front-end threads and the health poller share.
struct Ctx {
    slots: Vec<WorkerSlot>,
    defaults: QueryParams,
    cache: QueryCache,
    /// Raw-body-hash → canonical fingerprint memos: a repeated
    /// byte-identical body skips the JSON parse in front of the cache
    /// (see [`crate::cache::ParseMemo`]). Both memos also carry the
    /// request's trace flag (the hit path never parses, but must still
    /// know whether to splice a span tree in); the batch memo
    /// additionally carries the query count the hit path accounts.
    memo_query: ParseMemo<(u128, bool)>,
    memo_batch: ParseMemo<(u128, u64, bool)>,
    slow_query: Option<Duration>,
    worker_timeout: Duration,
    stats: ServerStats,
    shutdown: AtomicBool,
}

impl Ctx {
    /// The last-known `(generation, sketches)` vector, in shard order.
    fn known_generations(&self) -> Vec<(u64, u64)> {
        self.slots
            .iter()
            .map(|s| {
                let st = s.state();
                (st.generation, st.sketches)
            })
            .collect()
    }
}

/// A running coordinator. Call [`CoordinatorHandle::shutdown`] for a
/// deterministic, graceful stop.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    ctx: Arc<Ctx>,
    workers: Vec<std::thread::JoinHandle<()>>,
    poller: Option<std::thread::JoinHandle<()>>,
}

impl CoordinatorHandle {
    /// The bound address (with the real port when 0 was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Last-known worker generations, in shard order.
    #[must_use]
    pub fn generations(&self) -> Vec<u64> {
        self.ctx
            .slots
            .iter()
            .map(|s| s.state().generation)
            .collect()
    }

    /// Live coordinator counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.ctx.stats
    }

    /// Graceful shutdown: stop accepting, finish in-flight requests,
    /// join every thread. Returns the final `/stats` payload.
    #[must_use = "the returned stats summary describes the coordinator's whole life"]
    pub fn shutdown(self) -> String {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(p) = self.poller {
            let _ = p.join();
        }
        let hash = api::generation_hash(&self.ctx.known_generations());
        self.ctx.stats.to_json(hash, self.ctx.cache.len())
    }
}

/// Resolve the workers, wait for all of them to answer a health probe,
/// bind the public listener, and start the front-end pool plus the
/// health poller.
///
/// # Errors
///
/// [`ServerError::Io`] when a worker address cannot be resolved, a
/// worker stays unreachable past `startup_timeout`, or the public
/// address cannot be bound.
pub fn start_coordinator(config: CoordinatorConfig) -> Result<CoordinatorHandle, ServerError> {
    if config.workers.is_empty() {
        return Err(ServerError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "a coordinator needs at least one worker address",
        )));
    }
    let slots = config
        .workers
        .iter()
        .map(|w| {
            let addr = w.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("worker address resolved to nothing: {w}"),
                )
            })?;
            Ok(WorkerSlot::new(addr))
        })
        .collect::<Result<Vec<_>, std::io::Error>>()?;

    // Startup requires the full partition: serving with a worker that
    // was *never* observed would mean shipping answers whose degraded
    // entries carry made-up generations.
    let deadline = Instant::now() + config.startup_timeout;
    loop {
        let all_up = slots
            .iter()
            .filter(|s| !s.state().healthy)
            .all(|s| s.probe(config.worker_timeout));
        if all_up {
            break;
        }
        if Instant::now() >= deadline {
            let down: Vec<String> = slots
                .iter()
                .filter(|s| !s.state().healthy)
                .map(|s| s.addr.to_string())
                .collect();
            return Err(ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("workers unreachable at startup: {}", down.join(", ")),
            )));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let ctx = Arc::new(Ctx {
        slots,
        defaults: config.defaults,
        cache: QueryCache::new(config.cache_capacity),
        memo_query: ParseMemo::new(cache::memo_capacity(config.cache_capacity)),
        memo_batch: ParseMemo::new(cache::memo_capacity(config.cache_capacity)),
        slow_query: config.slow_query,
        worker_timeout: config.worker_timeout,
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
    });

    let limits = ConnLimits {
        keep_alive_idle: config.keep_alive_idle,
        request_timeout: config.request_timeout,
    };
    let workers = (0..config.threads.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let ctx = Arc::clone(&ctx);
            Ok(std::thread::Builder::new()
                .name(format!("sketch-coord-{i}"))
                .spawn(move || {
                    conn::accept_loop(
                        &listener,
                        &ctx.shutdown,
                        &ctx.stats.requests,
                        &ctx.stats.errors,
                        limits,
                        |req| route(&ctx, req),
                    );
                })
                .expect("spawning a coordinator thread succeeds"))
        })
        .collect::<Result<Vec<_>, std::io::Error>>()?;

    let poller = {
        let ctx = Arc::clone(&ctx);
        let interval = config.poll_interval;
        let timeout = config.worker_timeout;
        std::thread::Builder::new()
            .name("sketch-coord-poll".to_string())
            .spawn(move || poller_loop(&ctx, interval, timeout))
            .expect("spawning the health poller succeeds")
    };

    Ok(CoordinatorHandle {
        addr,
        ctx,
        workers,
        poller: Some(poller),
    })
}

/// Poll every worker's `/healthz` each `interval`. This is how a
/// mutation on a worker's store reaches the coordinator's cache key
/// (generation-vector hash) without any query traffic, and how a dead
/// worker's `healthy` flag clears so `/healthz` reports it.
fn poller_loop(ctx: &Ctx, interval: Duration, timeout: Duration) {
    let tick = interval.min(Duration::from_millis(50));
    let mut next_poll = Instant::now();
    while !ctx.shutdown.load(Ordering::Relaxed) {
        if Instant::now() >= next_poll {
            next_poll = Instant::now() + interval;
            let before = ctx.known_generations();
            std::thread::scope(|s| {
                for slot in &ctx.slots {
                    s.spawn(move || {
                        slot.probe(timeout);
                    });
                }
            });
            if ctx.known_generations() != before {
                ServerStats::bump(&ctx.stats.refreshes);
            }
        }
        std::thread::sleep(tick);
    }
}

/// Dispatch one public request (same 405/404 discipline as the server).
fn route(ctx: &Ctx, req: &Request) -> (u16, Body, Option<&'static str>) {
    let path = req
        .path
        .split_once('?')
        .map_or(req.path.as_str(), |(path, _query)| path);
    let (status, body) = route_path(ctx, req, path);
    let allow = (status == 405).then_some(match path {
        "/healthz" | "/stats" | "/metrics" => "GET",
        _ => "POST",
    });
    (status, body, allow)
}

fn route_path(ctx: &Ctx, req: &Request, path: &str) -> (u16, Body) {
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            ServerStats::bump(&ctx.stats.healthz);
            (200, Body::Owned(healthz_body(ctx)))
        }
        ("GET", "/stats") => {
            ServerStats::bump(&ctx.stats.stats);
            let hash = api::generation_hash(&ctx.known_generations());
            (200, Body::Owned(ctx.stats.to_json(hash, ctx.cache.len())))
        }
        ("GET", "/metrics") => {
            ServerStats::bump(&ctx.stats.metrics);
            let shards: Vec<metrics::ShardView> = ctx
                .slots
                .iter()
                .map(|s| {
                    let st = s.state();
                    metrics::ShardView {
                        generation: st.generation,
                        sketches: st.sketches,
                        healthy: st.healthy,
                    }
                })
                .collect();
            (
                200,
                Body::Text(
                    metrics::render_coordinator(
                        &ctx.stats,
                        &shards,
                        ctx.cache.len() as u64,
                        ctx.cache.evictions(),
                    ),
                    promtext::CONTENT_TYPE,
                ),
            )
        }
        ("POST", "/query") => {
            ServerStats::bump(&ctx.stats.query);
            let t0 = Instant::now();
            let response = handle_query(ctx, &req.body);
            if response.0 < 300 {
                ctx.stats
                    .latency
                    .record_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            response
        }
        ("POST", "/query_batch") => {
            ServerStats::bump(&ctx.stats.query_batch);
            let t0 = Instant::now();
            let response = handle_batch(ctx, &req.body);
            if response.0 < 300 {
                ctx.stats
                    .latency
                    .record_us(t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
            }
            response
        }
        (_, "/healthz" | "/stats" | "/metrics" | "/query" | "/query_batch") => {
            (405, Body::Owned(api::render_error("method not allowed")))
        }
        _ => (404, Body::Owned(api::render_error("no such endpoint"))),
    }
}

/// `GET /healthz`: coordinator liveness plus the per-shard view —
/// integration tests and the smoke script wait on `generation` bumps
/// and `healthy` flips here.
fn healthz_body(ctx: &Ctx) -> String {
    let states: Vec<WorkerState> = ctx.slots.iter().map(WorkerSlot::state).collect();
    let status = if states.iter().all(|s| s.healthy) {
        "ok"
    } else {
        "degraded"
    };
    let mut out = String::with_capacity(64 + states.len() * 64);
    out.push_str("{\"status\":\"");
    out.push_str(status);
    out.push_str("\",\"workers\":");
    out.push_str(&states.len().to_string());
    out.push_str(",\"shards\":[");
    for (i, s) in states.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"shard\":");
        out.push_str(&i.to_string());
        out.push_str(",\"generation\":");
        out.push_str(&s.generation.to_string());
        out.push_str(",\"sketches\":");
        out.push_str(&s.sketches.to_string());
        out.push_str(",\"healthy\":");
        out.push_str(if s.healthy { "true" } else { "false" });
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// One shard's phase-1 outcome: its candidate rows at a generation, or
/// a degraded marker carrying the last-known state.
struct ShardFetch {
    generation: u64,
    sketches: u64,
    degraded: bool,
    /// When the scatter thread issued this shard's call, and how long
    /// the call took (to the answer, or to the failure that degraded
    /// it) — measured in the thread, recorded into the trace after the
    /// join as `shard_rtt` spans.
    started: Instant,
    rtt: Duration,
    /// One row list per query (a single `/query` has exactly one).
    queries: Vec<Vec<ShardCandidate>>,
}

impl ShardFetch {
    fn degraded_from(state: WorkerState, query_count: usize) -> Self {
        Self {
            generation: state.generation,
            sketches: state.sketches,
            degraded: true,
            started: Instant::now(),
            rtt: Duration::ZERO,
            queries: vec![Vec::new(); query_count],
        }
    }

    fn shard_state(&self) -> ShardState {
        ShardState {
            generation: self.generation,
            degraded: self.degraded,
        }
    }
}

/// Phase 1: post `wire` to `path` on every worker concurrently. A
/// worker that fails (or whose answer does not carry `query_count` row
/// lists) comes back degraded with its last-known state; successes
/// update the slot's state.
fn scatter(ctx: &Ctx, path: &str, wire: &str, query_count: usize) -> Vec<ShardFetch> {
    std::thread::scope(|s| {
        let handles: Vec<_> = ctx
            .slots
            .iter()
            .map(|slot| {
                s.spawn(move || {
                    let started = Instant::now();
                    let parsed = slot
                        .call(ctx.worker_timeout, "POST", path, wire)
                        .and_then(|body| {
                            if path == "/shard_query" {
                                api::parse_shard_query_response(&body)
                                    .ok()
                                    .map(|r| (r.generation, r.sketches, vec![r.rows]))
                            } else {
                                api::parse_shard_batch_response(&body)
                                    .ok()
                                    .map(|r| (r.generation, r.sketches, r.queries))
                            }
                        })
                        .filter(|(_, _, queries)| queries.len() == query_count);
                    let rtt = started.elapsed();
                    match parsed {
                        Some((generation, sketches, queries)) => {
                            slot.observe(generation, sketches as u64);
                            ShardFetch {
                                generation,
                                sketches: sketches as u64,
                                degraded: false,
                                started,
                                rtt,
                                queries,
                            }
                        }
                        None => {
                            let state = slot.state();
                            slot.mark_unhealthy();
                            let mut fetch = ShardFetch::degraded_from(state, query_count);
                            fetch.started = started;
                            fetch.rtt = rtt;
                            fetch
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(&ctx.slots)
            .map(|(h, slot)| {
                h.join()
                    .unwrap_or_else(|_| ShardFetch::degraded_from(slot.state(), query_count))
            })
            .collect()
    })
}

/// The per-query gather outcome: final results plus the termination
/// accounting the public response reports.
struct Gather {
    results: Vec<ReportedResult>,
    merged: usize,
    shipped: usize,
}

/// Phase 2 + merge for every query at once. `Err(())` means a healthy
/// shard's reports could not be fetched at the phase-1 generation (a
/// mutation raced the two phases, or the worker died between them) —
/// the caller re-scatters.
#[allow(clippy::result_unit_err)]
fn gather(
    ctx: &Ctx,
    fetches: &[ShardFetch],
    bodies: &[QueryBody],
    params: &QueryParams,
) -> Result<Vec<Gather>, ()> {
    let opts = params.to_options();
    let query_count = bodies.len();
    // Merge each query over the per-shard row lists.
    let outcomes: Vec<_> = (0..query_count)
        .map(|qi| {
            let shard_rows: Vec<ShardRows<'_>> = fetches
                .iter()
                .map(|f| ShardRows {
                    rows: &f.queries[qi],
                    sketches: f.sketches as usize,
                })
                .collect();
            merge_shard_candidates(&shard_rows, &opts)
        })
        .collect();

    // Group surviving winners by (shard, query): these are the only
    // docs whose reports cross the wire — everything the bound
    // terminated stays on its worker.
    let mut docs: Vec<Vec<Vec<DocId>>> = vec![vec![Vec::new(); query_count]; fetches.len()];
    for (qi, outcome) in outcomes.iter().enumerate() {
        for w in &outcome.winners {
            docs[w.shard][qi].push(w.local_doc);
        }
    }

    // Fetch reports per shard (queries serially over one keep-alive
    // connection, shards concurrently). Every response must match the
    // shard's phase-1 generation.
    let reports: Vec<Option<Vec<Vec<Option<correlation_sketches::EstimateReport>>>>> =
        std::thread::scope(|s| {
            let handles: Vec<_> = ctx
                .slots
                .iter()
                .enumerate()
                .map(|(si, slot)| {
                    let shard_docs = &docs[si];
                    let fetch = &fetches[si];
                    s.spawn(move || {
                        let mut per_query = Vec::with_capacity(query_count);
                        for (qi, body) in bodies.iter().enumerate() {
                            if shard_docs[qi].is_empty() {
                                per_query.push(Vec::new());
                                continue;
                            }
                            let wire =
                                api::render_shard_reports_request(body, params, &shard_docs[qi]);
                            let response = slot
                                .call(ctx.worker_timeout, "POST", "/shard_reports", &wire)
                                .and_then(|b| {
                                    api::parse_shard_reports_response(&b, params.estimator).ok()
                                })?;
                            if response.generation != fetch.generation
                                || response.reports.len() != shard_docs[qi].len()
                            {
                                return None;
                            }
                            per_query.push(response.reports);
                        }
                        Some(per_query)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(None))
                .collect()
        });

    // A shard that answered phase 1 but failed phase 2 poisons the
    // attempt (stale reports must never ship); a shard that was already
    // degraded contributed no winners and fetched nothing.
    for (si, fetch) in fetches.iter().enumerate() {
        if !fetch.degraded && reports[si].is_none() && docs[si].iter().any(|d| !d.is_empty()) {
            return Err(());
        }
    }

    // Stitch: walk each query's winners in rank order, pairing them
    // with their shard's reports in the same order they were requested.
    let mut cursors: Vec<Vec<usize>> = vec![vec![0; query_count]; fetches.len()];
    Ok(outcomes
        .into_iter()
        .enumerate()
        .map(|(qi, outcome)| {
            let results = outcome
                .winners
                .into_iter()
                .map(|w| {
                    let idx = cursors[w.shard][qi];
                    cursors[w.shard][qi] += 1;
                    let report = reports[w.shard]
                        .as_ref()
                        .and_then(|per_query| per_query[qi].get(idx).copied())
                        .flatten();
                    ReportedResult {
                        result: w.result,
                        report,
                    }
                })
                .collect();
            Gather {
                results,
                merged: outcome.merged,
                shipped: outcome.shipped,
            }
        })
        .collect())
}

/// Close out a public request: slow-query logging and the trace splice,
/// both no-ops unless this request enabled tracing.
fn close(ctx: &Ctx, trace: &Trace, want_trace: bool, status: u16, body: Body) -> (u16, Body) {
    conn::finish_traced(
        &ctx.stats,
        ctx.slow_query,
        "sketch-coord",
        trace,
        want_trace,
        status,
        body,
    )
}

/// Replay the per-shard scatter round trips (measured inside the
/// scatter threads) into the trace as indexed `shard_rtt` spans,
/// nested under the still-open `scatter` span.
fn record_shard_rtts(trace: &mut Trace, fetches: &[ShardFetch]) {
    if !trace.is_enabled() {
        return;
    }
    for (i, fetch) in fetches.iter().enumerate() {
        trace.record("shard_rtt", i as u32, fetch.started, fetch.rtt);
    }
}

fn handle_query(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let raw = api::raw_fingerprint(body);
    let generation = api::generation_hash(&ctx.known_generations());
    let mut trace = Trace::new(ctx.slow_query.is_some());
    // A memo hit proves these exact bytes parsed to this canonical
    // fingerprint (and trace flag) before — skip the parse when the
    // answer is cached.
    if let Some((fp, want_trace)) = ctx.memo_query.get(raw) {
        if want_trace && !trace.is_enabled() {
            trace = Trace::enabled();
        }
        let guard = trace.begin("cache_probe");
        let cached = ctx.cache.get(&(fp, generation));
        trace.end(guard);
        if let Some(cached) = cached {
            ServerStats::bump(&ctx.stats.cache_hits);
            return close(ctx, &trace, want_trace, 200, Body::Shared(cached));
        }
    } else if !trace.is_enabled() && api::wants_trace_hint(body) {
        trace = Trace::enabled();
    }
    let guard = trace.begin("parse");
    let parsed = QueryRequest::parse(body, &ctx.defaults);
    trace.end(guard);
    let req = match parsed {
        Ok(req) => req,
        Err(msg) => {
            return close(
                ctx,
                &trace,
                false,
                400,
                Body::Owned(api::render_error(&msg)),
            )
        }
    };
    if req.trace && !trace.is_enabled() {
        trace = Trace::enabled();
    }
    let want_trace = req.trace;
    let fingerprint = req.fingerprint();
    ctx.memo_query.put(raw, (fingerprint, want_trace));
    let guard = trace.begin("cache_probe");
    let cached = ctx.cache.get(&(fingerprint, generation));
    trace.end(guard);
    if let Some(cached) = cached {
        ServerStats::bump(&ctx.stats.cache_hits);
        return close(ctx, &trace, want_trace, 200, Body::Shared(cached));
    }
    ServerStats::bump(&ctx.stats.cache_misses);

    let params = req.params;
    let wire = api::render_shard_query_request(&req.body, &params);
    let bodies = [req.body];
    for attempt in 0..MAX_ATTEMPTS {
        let guard = trace.begin_indexed("scatter", attempt as u32);
        let fetches = scatter(ctx, "/shard_query", &wire, 1);
        record_shard_rtts(&mut trace, &fetches);
        trace.end(guard);
        if fetches.iter().all(|f| f.degraded) {
            return close(
                ctx,
                &trace,
                want_trace,
                503,
                Body::Owned(api::render_error("every shard is unreachable")),
            );
        }
        let guard = trace.begin_indexed("gather", attempt as u32);
        let gathered = gather(ctx, &fetches, &bodies, &params);
        trace.end(guard);
        let Ok(mut gathers) = gathered else {
            continue;
        };
        let g = gathers.remove(0);
        trace.note("merged", g.merged as u64);
        trace.note("shipped", g.shipped as u64);
        trace.note(
            "degraded_shards",
            fetches.iter().filter(|f| f.degraded).count() as u64,
        );
        let shards: Vec<ShardState> = fetches.iter().map(ShardFetch::shard_state).collect();
        let guard = trace.begin("render");
        let rendered =
            api::render_coordinator_response(&shards, &params, g.merged, g.shipped, &g.results);
        trace.end(guard);
        let (status, answered) = finish(ctx, &fetches, fingerprint, rendered);
        return close(ctx, &trace, want_trace, status, answered);
    }
    close(
        ctx,
        &trace,
        want_trace,
        503,
        Body::Owned(api::render_error(
            "shard generations kept changing mid-query; retry",
        )),
    )
}

fn handle_batch(ctx: &Ctx, body: &[u8]) -> (u16, Body) {
    let raw = api::raw_fingerprint(body);
    let generation = api::generation_hash(&ctx.known_generations());
    let mut trace = Trace::new(ctx.slow_query.is_some());
    if let Some((fp, batched, want_trace)) = ctx.memo_batch.get(raw) {
        if want_trace && !trace.is_enabled() {
            trace = Trace::enabled();
        }
        let guard = trace.begin("cache_probe");
        let cached = ctx.cache.get(&(fp, generation));
        trace.end(guard);
        if let Some(cached) = cached {
            ServerStats::bump(&ctx.stats.cache_hits);
            ctx.stats
                .batched_queries
                .fetch_add(batched, Ordering::Relaxed);
            return close(ctx, &trace, want_trace, 200, Body::Shared(cached));
        }
    } else if !trace.is_enabled() && api::wants_trace_hint(body) {
        trace = Trace::enabled();
    }
    let guard = trace.begin("parse");
    let parsed = BatchRequest::parse(body, &ctx.defaults);
    trace.end(guard);
    let req = match parsed {
        Ok(req) => req,
        Err(msg) => {
            return close(
                ctx,
                &trace,
                false,
                400,
                Body::Owned(api::render_error(&msg)),
            )
        }
    };
    if req.trace && !trace.is_enabled() {
        trace = Trace::enabled();
    }
    let want_trace = req.trace;
    ctx.stats
        .batched_queries
        .fetch_add(req.queries.len() as u64, Ordering::Relaxed);
    let fingerprint = req.fingerprint();
    ctx.memo_batch
        .put(raw, (fingerprint, req.queries.len() as u64, want_trace));
    let guard = trace.begin("cache_probe");
    let cached = ctx.cache.get(&(fingerprint, generation));
    trace.end(guard);
    if let Some(cached) = cached {
        ServerStats::bump(&ctx.stats.cache_hits);
        return close(ctx, &trace, want_trace, 200, Body::Shared(cached));
    }
    ServerStats::bump(&ctx.stats.cache_misses);

    let wire = api::render_shard_batch_request(&req.queries, &req.params);
    for attempt in 0..MAX_ATTEMPTS {
        let guard = trace.begin_indexed("scatter", attempt as u32);
        let fetches = scatter(ctx, "/shard_query_batch", &wire, req.queries.len());
        record_shard_rtts(&mut trace, &fetches);
        trace.end(guard);
        if fetches.iter().all(|f| f.degraded) {
            return close(
                ctx,
                &trace,
                want_trace,
                503,
                Body::Owned(api::render_error("every shard is unreachable")),
            );
        }
        let guard = trace.begin_indexed("gather", attempt as u32);
        let gathered = gather(ctx, &fetches, &req.queries, &req.params);
        trace.end(guard);
        let Ok(gathers) = gathered else {
            continue;
        };
        trace.note("merged", gathers.iter().map(|g| g.merged as u64).sum());
        trace.note("shipped", gathers.iter().map(|g| g.shipped as u64).sum());
        trace.note(
            "degraded_shards",
            fetches.iter().filter(|f| f.degraded).count() as u64,
        );
        let shards: Vec<ShardState> = fetches.iter().map(ShardFetch::shard_state).collect();
        let merged: Vec<usize> = gathers.iter().map(|g| g.merged).collect();
        let shipped: Vec<usize> = gathers.iter().map(|g| g.shipped).collect();
        let answers: Vec<Vec<ReportedResult>> = gathers.into_iter().map(|g| g.results).collect();
        let guard = trace.begin("render");
        let rendered = api::render_coordinator_batch_response(
            &shards,
            &req.params,
            &merged,
            &shipped,
            &answers,
        );
        trace.end(guard);
        let (status, answered) = finish(ctx, &fetches, fingerprint, rendered);
        return close(ctx, &trace, want_trace, status, answered);
    }
    close(
        ctx,
        &trace,
        want_trace,
        503,
        Body::Owned(api::render_error(
            "shard generations kept changing mid-query; retry",
        )),
    )
}

/// Account for degradation and cache the rendered body — but only a
/// fully healthy answer, and only under the *actual* phase-1 generation
/// vector (which may be newer than the one the lookup used), so a
/// cached body can never be replayed against a different mixture.
fn finish(ctx: &Ctx, fetches: &[ShardFetch], fingerprint: u128, rendered: String) -> (u16, Body) {
    if fetches.iter().any(|f| f.degraded) {
        ServerStats::bump(&ctx.stats.degraded);
    } else {
        let actual: Vec<(u64, u64)> = fetches.iter().map(|f| (f.generation, f.sketches)).collect();
        ctx.cache.put(
            (fingerprint, api::generation_hash(&actual)),
            Arc::from(rendered.as_str()),
        );
    }
    (200, Body::Owned(rendered))
}
